"""Queueing-theory walkthrough of the §3.1 parallelism trade-off.

Computes the execution time D and measured intra-op speedup K for a
prefill instance, evaluates the paper's Eq. 1-3 across arrival rates,
finds the intra-op/inter-op crossover, and cross-checks the closed
forms against the discrete-event simulator.

Run:
    python examples/queueing_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware import A100_80GB
from repro.latency import (
    ParallelismConfig,
    coefficients_from_roofline,
    intra_op_speedup,
    prefill_times,
)
from repro.models import get_model
from repro.queueing import (
    avg_ttft_inter_op,
    avg_ttft_intra_op,
    avg_ttft_single,
    crossover_rate,
)
from repro.serving import PrefillOnlySystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation, SloMonitor
from repro.workload import SLO, fixed_length_dataset, generate_trace


def main() -> None:
    model = get_model("opt-66b")
    coeffs = coefficients_from_roofline(A100_80GB)
    input_len = 512

    d = prefill_times(model, ParallelismConfig(1, 1), coeffs, [input_len]).request_latency
    k = intra_op_speedup(model, coeffs, input_len, tp=2)
    print(f"{model.name}, {input_len}-token prefill: D = {d * 1e3:.0f} ms, "
          f"K(tp=2) = {k:.2f}")

    rc = crossover_rate(d, k, degree=2)
    print(f"intra-op beats inter-op below {rc:.2f} req/s, loses above\n")

    print(f"{'rate':>6} | {'single':>8} | {'inter-op':>8} | {'intra-op':>8} | winner")
    max_rate = min(k, 2.0) / d
    for frac in (0.2, 0.4, 0.6, 0.8, 0.95):
        rate = frac * max_rate
        single = avg_ttft_single(rate, d) if rate * d < 1 else float("inf")
        inter = avg_ttft_inter_op(rate, d, 2)
        intra = avg_ttft_intra_op(rate, d, k)
        winner = "intra" if intra < inter else "inter"
        print(f"{rate:6.2f} | {single:8.3f} | {inter:8.3f} | {intra:8.3f} | {winner}")

    # Cross-check one point against the simulator; a live SLO monitor
    # judges each completion against a TTFT budget of 4x the execution
    # time D, so the windowed report shows queueing-induced violations.
    rate = 0.5 * max_rate
    slo = SLO(ttft=4.0 * d, tpot=1.0)
    dataset = fixed_length_dataset(input_len, 1)
    for label, config in (("inter-op", ParallelismConfig(1, 2)),
                          ("intra-op", ParallelismConfig(2, 1))):
        spec = InstanceSpec(model=model, config=config)
        trace = generate_trace(dataset, rate, 400, np.random.default_rng(0))
        sim = Simulation()
        system = PrefillOnlySystem(sim, spec)
        monitor = SloMonitor(sim, slo, window=60.0)
        system.attach_monitor(monitor)
        res = simulate_trace(system, trace)
        measured = float(np.mean([r.ttft for r in res.records]))
        predicted = (avg_ttft_inter_op(rate, d, 2) if label == "inter-op"
                     else avg_ttft_intra_op(rate, d, k))
        print(f"\nDES check {label} @ {rate:.2f} req/s: "
              f"simulated {measured:.3f}s vs M/D/1 {predicted:.3f}s")
        print(f"  online SLO (ttft <= 4D): {monitor.describe()}")


if __name__ == "__main__":
    main()
