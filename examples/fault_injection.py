"""Fault-injection demo: decode failure propagates to the prefill pool.

§4.3: "in DistServe, the dependency between prefill and decoding
instances introduces the risk of fault propagation" — a decode instance
failure strands every KV cache it held, forcing full-context prefill
recomputation for its in-flight requests. This demo kills one decode
instance mid-run and shows the recompute burst and tail-latency spike,
then kills a prefill instance to show the milder prefill-side story.

Run:
    python examples/fault_injection.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import tpot_percentile, ttft_percentile
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import DisaggregatedSystem
from repro.simulator import Simulation, SloMonitor
from repro.workload import SLO, SHAREGPT, generate_trace


def run(kill: "str | None") -> None:
    model = get_model("opt-13b")
    from repro.simulator import InstanceSpec

    spec = InstanceSpec(model=model, config=ParallelismConfig(1, 1))
    sim = Simulation()
    system = DisaggregatedSystem(sim, spec, spec, num_prefill=2, num_decode=2)
    monitor = SloMonitor(sim, SLO(ttft=4.0, tpot=0.2), window=30.0)
    system.attach_monitor(monitor)
    trace = generate_trace(
        SHAREGPT, rate=8.0, num_requests=400, rng=np.random.default_rng(0)
    )
    for req in trace:
        sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
    if kill == "decode":
        sim.schedule(trace.duration / 2, lambda: system.fail_decode("decode-0"))
    elif kill == "prefill":
        sim.schedule(trace.duration / 2, lambda: system.fail_prefill("prefill-0"))
    sim.run()

    label = f"kill {kill}" if kill else "no failure"
    prefill_batches = sum(p.batches_executed for p in system.prefill_instances)
    print(f"{label:12s}: {len(system.records)}/{len(trace)} completed | "
          f"P90 TTFT {ttft_percentile(system.records):6.3f}s | "
          f"P90 TPOT {tpot_percentile(system.records):7.4f}s | "
          f"max TPOT {max(r.tpot for r in system.records):6.3f}s | "
          f"prefill batches {prefill_batches}")
    # Windowed SLO view: the trailing window covers the post-failure
    # tail, so attainment and the violation streak show the blast radius.
    print(f"{'':12s}  {monitor.describe()}")


def main() -> None:
    for kill in (None, "prefill", "decode"):
        run(kill)


if __name__ == "__main__":
    main()
