"""Quickstart: serve a synthetic chatbot workload on a disaggregated deployment.

Builds a small DistServe-style deployment (one prefill + one decode
instance of OPT-13B), drives it with a Poisson ShareGPT-like trace, and
prints latency statistics and SLO attainment.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import latency_breakdown, latency_summary, slo_attainment
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SHAREGPT, SLO, generate_trace


def main() -> None:
    model = get_model("opt-13b")
    # Prefill favors intra-op parallelism for low TTFT (§3.1); decode
    # runs on a single GPU and relies on batching (§3.2).
    prefill_spec = InstanceSpec(model=model, config=ParallelismConfig(tp=2, pp=1))
    decode_spec = InstanceSpec(model=model, config=ParallelismConfig(tp=1, pp=1))

    sim = Simulation()
    system = DisaggregatedSystem(
        sim, prefill_spec, decode_spec, num_prefill=1, num_decode=1
    )

    trace = generate_trace(
        SHAREGPT, rate=3.0, num_requests=300, rng=np.random.default_rng(0)
    )
    result = simulate_trace(system, trace)

    print(f"served {result.completed} requests on {result.num_gpus} GPUs "
          f"({sim.now:.1f}s simulated, {result.events_processed} events)")

    summary = latency_summary(result.records)
    print(f"TTFT  mean {summary['ttft_mean'] * 1e3:7.1f} ms   "
          f"p90 {summary['ttft_p90'] * 1e3:7.1f} ms")
    print(f"TPOT  mean {summary['tpot_mean'] * 1e3:7.1f} ms   "
          f"p90 {summary['tpot_p90'] * 1e3:7.1f} ms")

    slo = SLO(ttft=0.2, tpot=0.1)  # Table 1, chatbot OPT-13B
    report = slo_attainment(result.records, slo, num_expected=len(trace))
    print(f"SLO attainment @ (TTFT {slo.ttft}s, TPOT {slo.tpot}s): "
          f"{report.total:.1%} (TTFT-only {report.ttft_only:.1%}, "
          f"TPOT-only {report.tpot_only:.1%})")

    fractions = latency_breakdown(result.records).fractions()
    print("lifecycle breakdown: " + ", ".join(
        f"{stage} {frac:.1%}" for stage, frac in fractions.items()
    ))


if __name__ == "__main__":
    main()
