"""Compare colocated vs disaggregated serving on two contrasting workloads.

Summarization (LongBench-like: very long inputs, tight TPOT) is where
the paper reports its largest win — colocation's long prefills crush
decoding. Chatbot (ShareGPT-like) stresses TTFT instead. This example
serves both workloads on equal GPU budgets with a vLLM-style colocated
system and a DistServe-style disaggregated one (using the placement
structure the search finds) and prints the attainment gap.

Run:
    python examples/summarization_vs_chatbot.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import slo_attainment, tpot_percentile, ttft_percentile
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import generate_trace, get_dataset, get_workload

SCENARIOS = [
    # (application, model, per-GPU rate, colocated (tp, replicas),
    #  disaggregated (prefill tp/pp/n, decode tp/pp/n))
    ("chatbot", "opt-13b", 2.4, (1, 6), ((2, 1, 1), (4, 1, 1))),
    ("summarization", "opt-66b", 0.12, (4, 4), ((4, 2, 1), (4, 2, 1))),
]


def main() -> None:
    for application, model_name, per_gpu_rate, colo_cfg, disagg_cfg in SCENARIOS:
        workload = get_workload(application, model_name)
        model = get_model(model_name)
        dataset = get_dataset(workload.dataset_name)

        colo_tp, colo_replicas = colo_cfg
        (ptp, ppp, n_p), (dtp, dpp, n_d) = disagg_cfg
        colo_spec = InstanceSpec(model=model, config=ParallelismConfig(colo_tp, 1))
        pre_spec = InstanceSpec(model=model, config=ParallelismConfig(ptp, ppp))
        dec_spec = InstanceSpec(model=model, config=ParallelismConfig(dtp, dpp))

        colo_gpus = colo_spec.num_gpus * colo_replicas
        disagg_gpus = pre_spec.num_gpus * n_p + dec_spec.num_gpus * n_d
        print(f"\n=== {application} on {model_name} "
              f"(TTFT {workload.slo.ttft}s, TPOT {workload.slo.tpot}s) ===")

        for name, gpus, factory in (
            (f"colocated {colo_replicas}x tp{colo_tp}", colo_gpus,
             lambda sim: ColocatedSystem(sim, colo_spec, num_replicas=colo_replicas)),
            (f"disaggregated {n_p}P(tp{ptp}pp{ppp})+{n_d}D(tp{dtp}pp{dpp})",
             disagg_gpus,
             lambda sim: DisaggregatedSystem(
                 sim, pre_spec, dec_spec, num_prefill=n_p, num_decode=n_d)),
        ):
            rate = per_gpu_rate * gpus
            trace = generate_trace(
                dataset, rate=rate, num_requests=max(300, int(rate * 45)),
                rng=np.random.default_rng(1),
            )
            sim = Simulation()
            res = simulate_trace(factory(sim), trace, max_events=6_000_000)
            rep = slo_attainment(res.records, workload.slo, num_expected=len(trace))
            print(f"{name:38s} {gpus:2d} GPUs @ {rate:5.1f} req/s: "
                  f"attainment {rep.total:6.1%}  "
                  f"P90 TTFT {ttft_percentile(res.records):7.3f}s  "
                  f"P90 TPOT {tpot_percentile(res.records):7.4f}s")


if __name__ == "__main__":
    main()
