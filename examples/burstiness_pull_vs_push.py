"""Burstiness demo: pull-based vs push-based KV-cache migration (§4.3).

DistServe pulls KV caches "as needed", using prefill GPU memory as a
queuing buffer so traffic bursts cannot flood decode memory. This
example drives a disaggregated deployment with increasingly bursty
gamma arrivals and compares the two transfer policies on decode-side
queuing and tail TPOT.

Run:
    python examples/burstiness_pull_vs_push.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import tpot_percentile
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SHAREGPT, generate_trace


def main() -> None:
    model = get_model("opt-13b")
    spec = InstanceSpec(model=model, config=ParallelismConfig(1, 1))
    rate = 7.0

    print(f"{'burst cv':>8} | {'policy':>6} | {'mean decode queue':>18} | {'P90 TPOT':>9}")
    for cv in (1.0, 2.0, 4.0):
        trace = generate_trace(
            SHAREGPT, rate=rate, num_requests=500,
            rng=np.random.default_rng(11),
            arrival_process="gamma", burst_cv=cv,
        )
        for mode in ("pull", "push"):
            sim = Simulation()
            system = DisaggregatedSystem(
                sim, spec, spec, num_prefill=2, num_decode=1, transfer_mode=mode
            )
            res = simulate_trace(system, trace, max_events=5_000_000)
            queue = float(np.mean([r.decode_queue_time for r in res.records]))
            print(f"{cv:8.1f} | {mode:>6} | {queue:18.4f} | "
                  f"{tpot_percentile(res.records):9.4f}")


if __name__ == "__main__":
    main()
