"""OpenAI-style API usage: submit completions, read streamed timings.

The frontend facade of §5 — clients specify a prompt, ``max_tokens``
and ``temperature``; the orchestration layer serves them on a
disaggregated deployment and returns per-token timing.

Run:
    python examples/api_frontend.py
"""

from __future__ import annotations

from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.serving import APIFrontend, CompletionRequest, DisaggregatedSystem
from repro.simulator import InstanceSpec, Simulation


PROMPTS = [
    ("Summarize the OSDI 2024 DistServe paper in two sentences. " * 8, 64),
    ("What is the capital of France?", 16),
    ("Write a haiku about GPU memory bandwidth.", 32),
    ("Explain prefill-decoding interference to a new engineer. " * 4, 128),
]


def main() -> None:
    model = get_model("opt-13b")
    spec = InstanceSpec(model=model, config=ParallelismConfig(1, 1))
    sim = Simulation()
    system = DisaggregatedSystem(sim, spec, spec, num_prefill=1, num_decode=1)
    api = APIFrontend(sim, system, seed=0)

    for i, (prompt, max_tokens) in enumerate(PROMPTS):
        api.submit_at(0.25 * i, CompletionRequest(prompt=prompt, max_tokens=max_tokens))
    sim.run()

    print(f"{'id':>3} | {'prompt tok':>10} | {'out tok':>7} | "
          f"{'TTFT (ms)':>9} | {'TPOT (ms)':>9} | {'total (s)':>9}")
    for resp in api.responses():
        print(f"{resp.request_id:3d} | {resp.prompt_tokens:10d} | "
              f"{resp.completion_tokens:7d} | {resp.ttft * 1e3:9.1f} | "
              f"{resp.tpot * 1e3:9.1f} | "
              f"{resp.finish_time - resp.created:9.3f}")


if __name__ == "__main__":
    main()
