"""Placement planning: run Algorithm 2 for a workload and validate it.

Searches the goodput-optimal disaggregated placement for a chatbot
workload on the paper's 4x8xA100 testbed (25 Gbps cross-node fabric, so
the low-node-affinity algorithm applies), deploys the result, and
verifies the deployment actually attains the SLOs at its claimed rate.

Run:
    python examples/placement_planner.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import slo_attainment
from repro.core import PlacementSearchStats, build_system, place_low_affinity
from repro.hardware import paper_testbed
from repro.models import get_model
from repro.serving import simulate_trace
from repro.simulator import Simulation
from repro.workload import generate_trace, get_dataset, get_workload


def main() -> None:
    workload = get_workload("chatbot", "opt-13b")
    model = get_model(workload.model_name)
    dataset = get_dataset(workload.dataset_name)
    cluster = paper_testbed()

    print(f"searching placement for {model.name} / {workload.application} "
          f"(TTFT {workload.slo.ttft}s, TPOT {workload.slo.tpot}s)...")
    stats = PlacementSearchStats()
    start = time.perf_counter()
    placement = place_low_affinity(
        model, cluster, dataset, workload.slo,
        traffic_rate=None,        # size a single deployment unit
        num_requests=150,
        joint_sim_candidates=3,
        stats=stats,
    )
    elapsed = time.perf_counter() - start
    print(f"search done in {elapsed:.1f}s "
          f"({stats.configs_evaluated} configs, {stats.simulation_trials} trials)")
    print(f"chosen placement: {placement.describe()}")

    # Validate: deploy and drive at 90% of the claimed system goodput.
    rate = 0.9 * placement.system_goodput
    trace = generate_trace(
        dataset, rate=rate, num_requests=max(300, int(rate * 45)),
        rng=np.random.default_rng(7),
    )
    sim = Simulation()
    system = build_system(sim, model, placement, cluster)
    result = simulate_trace(system, trace)
    report = slo_attainment(result.records, workload.slo, num_expected=len(trace))
    print(f"validation at {rate:.2f} req/s "
          f"({rate / placement.num_gpus:.2f} per GPU): "
          f"attainment {report.total:.1%} (target 90%)")


if __name__ == "__main__":
    main()
