"""Cost per query: the paper's bottom-line metric.

"Higher per-GPU goodput directly translates into lower cost per query"
(§1). This example converts measured per-GPU goodputs into dollars per
thousand requests under a simple GPU-hour price model, and shows how
the savings factor tracks the goodput ratio.

Run:
    python examples/cost_analysis.py
"""

from __future__ import annotations

from repro.core import (
    CostModel,
    PhasePlan,
    Placement,
    compare_cost,
    cost_per_request,
)
from repro.latency import ParallelismConfig


def main() -> None:
    model = CostModel(gpu_hourly_usd=2.0, utilization_target=0.7)

    # Measured per-GPU goodputs from the Figure 8 bench (chatbot/OPT-13B).
    vllm_goodput = 2.10
    distserve = Placement(
        prefill=PhasePlan(ParallelismConfig(2, 1), 1, 17.2),
        decode=PhasePlan(ParallelismConfig(4, 1), 1, 17.2),
    )

    print(f"pricing: ${model.gpu_hourly_usd:.2f}/GPU-hour at "
          f"{model.utilization_target:.0%} utilization\n")
    print(f"{'system':>22} | {'goodput/GPU':>11} | {'$/1k requests':>13}")
    for name, goodput in (
        ("vLLM (colocated)", vllm_goodput),
        ("DistServe", distserve.per_gpu_goodput),
    ):
        cost = cost_per_request(goodput, model)
        print(f"{name:>22} | {goodput:11.2f} | {cost * 1000:13.3f}")

    out = compare_cost(distserve, vllm_goodput, model)
    print(f"\nsavings factor: {out['savings_factor']:.2f}x lower cost per query "
          f"(the paper reports up to 4.48x on its hardest workload)")

    # Sensitivity: tighter utilization headroom raises cost linearly.
    print("\nutilization sensitivity ($/1k requests, DistServe):")
    for util in (1.0, 0.7, 0.5, 0.3):
        m = CostModel(gpu_hourly_usd=2.0, utilization_target=util)
        cost = cost_per_request(distserve.per_gpu_goodput, m)
        print(f"  {util:.0%} utilized: {cost * 1000:.3f}")


if __name__ == "__main__":
    main()
