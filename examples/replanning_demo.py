"""Replanning demo: detect a workload shift and re-run the placement search.

§4.3: a workload profiler watches average input/output length and
arrival rate; when the pattern drifts, DistServe re-runs the placement
algorithm on recent history. Here the traffic starts as short-prompt
chatbot and morphs into long-prompt summarization; the controller
notices and produces a new placement with a beefier prefill phase.

Run:
    python examples/replanning_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ReplanController, WorkloadProfiler, place_low_affinity
from repro.hardware import paper_testbed
from repro.models import get_model
from repro.workload import SLO, generate_trace, get_dataset


def main() -> None:
    model = get_model("opt-13b")
    cluster = paper_testbed()
    slo = SLO(ttft=0.4, tpot=0.1)

    def planner(dataset, rate):
        return place_low_affinity(
            model, cluster, dataset, slo,
            traffic_rate=None, num_requests=100, joint_sim_candidates=2,
        )

    profiler = WorkloadProfiler(window_size=400)
    controller = ReplanController(profiler, planner=planner, min_window=200)

    # Phase 1: chatbot traffic; plan for it.
    rng = np.random.default_rng(0)
    chat = generate_trace(get_dataset("sharegpt"), rate=2.0, num_requests=400, rng=rng)
    for request in chat:
        profiler.observe(request)
    initial = planner(get_dataset("sharegpt"), 2.0)
    controller.initialize(initial, profiler.stats())
    print(f"initial placement (chatbot):      {initial.describe()}")
    print(f"drift detected? {controller.drift_detected()}  (expected: False)")

    # Phase 2: the traffic morphs into long-document summarization.
    summ = generate_trace(get_dataset("longbench"), rate=2.0, num_requests=400, rng=rng)
    for request in summ:
        profiler.observe(request)
    print(f"after shift: mean input length "
          f"{profiler.stats().mean_input_len:.0f} tokens")
    print(f"drift detected? {controller.drift_detected()}  (expected: True)")

    new_placement = controller.maybe_replan()
    assert new_placement is not None
    print(f"replanned placement (long docs):  {new_placement.describe()}")
    print(f"replans performed: {controller.replans}")


if __name__ == "__main__":
    main()
