"""Phase-level goodput estimation: ``simu_prefill`` and ``simu_decode``.

Algorithm 1 evaluates each candidate parallel configuration by
simulating the prefill phase and decoding phase *independently*
(``simu_prefill`` / ``simu_decode`` in the paper's pseudocode). A phase
passes its SLO alone — TTFT for prefill, TPOT for decoding — with an
effectively unconstrained partner metric.
"""

from __future__ import annotations

from functools import partial

from .goodput import GoodputResult, max_goodput
from ..latency.parallel import ParallelismConfig
from ..serving.phase_only import DecodeOnlySystem, PrefillOnlySystem
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec
from ..workload.datasets import SyntheticDataset
from ..workload.slos import SLO

__all__ = ["simu_prefill", "simu_decode"]

#: A bound so loose it never binds — used to isolate one phase's SLO.
_UNBOUNDED = 1e9


def _prefill_factory(spec: InstanceSpec, sim: Simulation) -> PrefillOnlySystem:
    return PrefillOnlySystem(sim, spec)


def _decode_factory(spec: InstanceSpec, sim: Simulation) -> DecodeOnlySystem:
    return DecodeOnlySystem(sim, spec)


def simu_prefill(
    spec: InstanceSpec,
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
) -> GoodputResult:
    """Max rate one prefill instance sustains under the TTFT SLO alone."""
    phase_slo = SLO(ttft=slo.ttft, tpot=_UNBOUNDED)
    return max_goodput(
        partial(_prefill_factory, spec),
        dataset,
        phase_slo,
        attainment_target=attainment_target,
        num_requests=num_requests,
        seed=seed,
        min_duration=45.0,
    )


def simu_decode(
    spec: InstanceSpec,
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
) -> GoodputResult:
    """Max rate one decode instance sustains under the TPOT SLO alone."""
    phase_slo = SLO(ttft=_UNBOUNDED, tpot=slo.tpot)
    return max_goodput(
        partial(_decode_factory, spec),
        dataset,
        phase_slo,
        attainment_target=attainment_target,
        num_requests=num_requests,
        seed=seed,
        min_duration=45.0,
    )


def candidate_configs(
    model_heads: int,
    model_layers: int,
    max_tp: int,
    max_gpus: int,
) -> "list[ParallelismConfig]":
    """All (tp, pp) pairs valid for the model within the GPU budget.

    TP degrees must divide the head count; PP degrees cannot exceed the
    layer count. This is the enumeration loop of Algorithms 1 and 2.
    """
    configs = []
    for tp in range(1, max_tp + 1):
        if model_heads % tp != 0:
            continue
        max_pp = max_gpus // tp
        for pp in range(1, max_pp + 1):
            if pp > model_layers:
                break
            configs.append(ParallelismConfig(tp=tp, pp=pp))
    return configs
