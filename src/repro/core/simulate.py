"""Phase-level goodput estimation: ``simu_prefill`` and ``simu_decode``.

Algorithm 1 evaluates each candidate parallel configuration by
simulating the prefill phase and decoding phase *independently*
(``simu_prefill`` / ``simu_decode`` in the paper's pseudocode). A phase
passes its SLO alone — TTFT for prefill, TPOT for decoding — with an
effectively unconstrained partner metric.

:func:`phase_trial_setup` is the single source of truth for how a phase
simulation is posed (system factory, masked SLO, trial duration); the
search-acceleration layer (:mod:`repro.core.search`) uses it to build
cache keys and worker tasks that are guaranteed to agree with what
``simu_prefill``/``simu_decode`` would simulate in process.
"""

from __future__ import annotations

from functools import partial

from .goodput import GoodputResult, TrialRunner, max_goodput
from ..latency.parallel import ParallelismConfig
from ..scheduling.config import SchedulingConfig
from ..serving.phase_only import DecodeOnlySystem, PrefillOnlySystem
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec
from ..workload.datasets import SyntheticDataset
from ..workload.slos import SLO

__all__ = ["simu_prefill", "simu_decode", "phase_trial_setup", "PHASE_TRIAL_MIN_DURATION"]

#: A bound so loose it never binds — used to isolate one phase's SLO.
_UNBOUNDED = 1e9

#: Arrival span of each phase-level trial; longer than the joint default
#: so steady-state queueing is visible even for a lone fast phase.
PHASE_TRIAL_MIN_DURATION = 45.0


def _prefill_factory(
    spec: InstanceSpec,
    sim: Simulation,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> PrefillOnlySystem:
    return PrefillOnlySystem(sim, spec, fast_kernel=fast_kernel, scheduling=scheduling)


def _decode_factory(
    spec: InstanceSpec,
    sim: Simulation,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> DecodeOnlySystem:
    return DecodeOnlySystem(sim, spec, fast_kernel=fast_kernel, scheduling=scheduling)


def phase_trial_setup(
    kind: str,
    spec: InstanceSpec,
    slo: SLO,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
):
    """The (system factory, masked SLO) pair of one phase-level trial.

    The factory is a picklable ``functools.partial`` over module-level
    functions, so it can cross a process boundary and be fingerprinted
    deterministically. The default (fast kernel on, default scheduling)
    binds no extra keyword, so fingerprints — and therefore on-disk
    caches — are unchanged from before the kernel and the scheduling
    layer existed; a *non-default* :class:`SchedulingConfig` is bound
    into the partial and thus enters the fingerprint, so the
    ``TrialCache`` never conflates trials run under different policies.

    Args:
        kind: ``"prefill"`` or ``"decode"``.
        spec: The candidate instance.
        slo: The full application SLO; the partner phase's bound is
            replaced by an unbounded value.
        fast_kernel: Disable to force the per-step reference path (the
            ``--no-fast-kernel`` escape hatch).
        scheduling: Policy configuration; ``None`` or the default triple
            keeps the historic factory shape.
    """
    kwargs = {}
    if not fast_kernel:
        kwargs["fast_kernel"] = False
    if scheduling is not None and not scheduling.is_default():
        kwargs["scheduling"] = scheduling
    if kind == "prefill":
        return (
            partial(_prefill_factory, spec, **kwargs),
            SLO(ttft=slo.ttft, tpot=_UNBOUNDED),
        )
    if kind == "decode":
        return (
            partial(_decode_factory, spec, **kwargs),
            SLO(ttft=_UNBOUNDED, tpot=slo.tpot),
        )
    raise ValueError(f"unknown phase kind {kind!r}; expected 'prefill' or 'decode'")


def simu_prefill(
    spec: InstanceSpec,
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    trial_runner: "TrialRunner | None" = None,
    early_abort: bool = True,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> GoodputResult:
    """Max rate one prefill instance sustains under the TTFT SLO alone."""
    factory, phase_slo = phase_trial_setup(
        "prefill", spec, slo, fast_kernel=fast_kernel, scheduling=scheduling
    )
    return max_goodput(
        factory,
        dataset,
        phase_slo,
        attainment_target=attainment_target,
        num_requests=num_requests,
        seed=seed,
        min_duration=PHASE_TRIAL_MIN_DURATION,
        trial_runner=trial_runner,
        early_abort=early_abort,
    )


def simu_decode(
    spec: InstanceSpec,
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    trial_runner: "TrialRunner | None" = None,
    early_abort: bool = True,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> GoodputResult:
    """Max rate one decode instance sustains under the TPOT SLO alone."""
    factory, phase_slo = phase_trial_setup(
        "decode", spec, slo, fast_kernel=fast_kernel, scheduling=scheduling
    )
    return max_goodput(
        factory,
        dataset,
        phase_slo,
        attainment_target=attainment_target,
        num_requests=num_requests,
        seed=seed,
        min_duration=PHASE_TRIAL_MIN_DURATION,
        trial_runner=trial_runner,
        early_abort=early_abort,
    )


def candidate_configs(
    model_heads: int,
    model_layers: int,
    max_tp: int,
    max_gpus: int,
) -> "list[ParallelismConfig]":
    """All (tp, pp) pairs valid for the model within the GPU budget.

    TP degrees must divide the head count; PP degrees cannot exceed the
    layer count. This is the enumeration loop of Algorithms 1 and 2.
    """
    configs = []
    for tp in range(1, max_tp + 1):
        if model_heads % tp != 0:
            continue
        max_pp = max_gpus // tp
        for pp in range(1, max_pp + 1):
            if pp > model_layers:
                break
            configs.append(ParallelismConfig(tp=tp, pp=pp))
    return configs
