"""Search-acceleration layer: parallel, memoized, pruned placement search.

The paper parallelizes its simulator-driven placement search on a
96-core machine (§6.5, Figure 12); this module is our equivalent engine.
It provides three cooperating pieces the placement algorithms
(:mod:`repro.core.placement_high`, :mod:`repro.core.placement_low`)
are built on:

1. **Parallel evaluator** — :class:`ParallelEvaluator` fans independent
   goodput searches (one per candidate configuration and phase, plus the
   joint simulations of Algorithm 2) across a
   ``concurrent.futures.ProcessPoolExecutor``. With ``workers <= 1``
   everything runs in-process; because each task is deterministic,
   results and statistics are *identical* in both modes.
2. **Deterministic trial cache** — :class:`TrialCache` memoizes
   :func:`repro.core.goodput.run_attainment_trial` outcomes keyed by a
   process-stable :func:`fingerprint` of everything that determines a
   trial (instance spec / system factory, dataset parameters, SLO, rate,
   trace length, seed, duration). The doubling+bisection phases of the
   goodput search re-probe the same rates constantly across searches;
   cache snapshots ride along to worker processes and fresh entries are
   merged back, so warm searches replay from memory.
3. **Pruning** — sound rules that skip simulations whose outcome is
   already decided: an *SLO-infeasibility* bound derived from the
   latency model's own floor (a configuration whose unloaded latency
   already violates the SLO scores zero goodput at every rate), and a
   *dominance* bound (a configuration whose per-GPU goodput upper bound
   cannot beat the best already measured is skipped). Pruning decisions
   are taken wave-by-wave in enumeration order using only results from
   completed waves, which makes them independent of worker count — the
   serial and parallel searches prune identically.

Fingerprints use SHA-256 over a canonical encoding of nested frozen
dataclasses, so they are stable across processes, interpreters, and
``PYTHONHASHSEED`` values — unlike built-in ``hash()``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from .goodput import (
    GoodputResult,
    RATE_HI_CAP_DEFAULT,
    TrialOutcome,
    max_goodput,
    run_attainment_trial,
)
from .simulate import PHASE_TRIAL_MIN_DURATION, phase_trial_setup
from ..latency.parallel import decode_times, prefill_times
from ..scheduling.config import SchedulingConfig
from ..simulator.instance import InstanceSpec
from ..workload.datasets import SyntheticDataset
from ..workload.slos import SLO

__all__ = [
    "fingerprint",
    "trial_context_fingerprint",
    "TrialEntry",
    "TrialCache",
    "GLOBAL_TRIAL_CACHE",
    "resolve_trial_cache",
    "PlacementSearchStats",
    "GoodputTask",
    "GoodputTaskResult",
    "make_phase_task",
    "make_joint_task",
    "ParallelEvaluator",
    "phase_floor_latency",
    "phase_slo_infeasible",
    "PRUNE_WAVE",
    "JOINT_PRUNE_WAVE",
]

#: Configs per dominance-pruning wave in Algorithm 1. Fixed (never derived
#: from ``workers``) so pruning decisions — which only use results from
#: completed waves — are identical for every worker count.
PRUNE_WAVE = 8

#: Joint simulations per wave in Algorithm 2's top-K refinement.
JOINT_PRUNE_WAVE = 2

_FINGERPRINT_VERSION = "repro-search-v1"


# ----------------------------------------------------------------------
# Stable fingerprints
# ----------------------------------------------------------------------

def _canonical(obj: Any, out: "list[str]") -> None:
    """Append a canonical, process-stable token stream for ``obj``."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(repr(obj))
    elif isinstance(obj, float):
        # repr() is the shortest round-trip representation — identical on
        # every CPython build for the same bit pattern.
        out.append(repr(obj))
    elif isinstance(obj, enum.Enum):
        out.append(f"E{type(obj).__qualname__}.{obj.name}")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(f"D{cls.__module__}.{cls.__qualname__}(")
        for f in dataclasses.fields(obj):
            out.append(f"{f.name}=")
            _canonical(getattr(obj, f.name), out)
            out.append(",")
        out.append(")")
    elif isinstance(obj, (tuple, list)):
        out.append("[")
        for item in obj:
            _canonical(item, out)
            out.append(",")
        out.append("]")
    elif isinstance(obj, dict):
        out.append("{")
        for key in sorted(obj, key=repr):
            _canonical(key, out)
            out.append(":")
            _canonical(obj[key], out)
            out.append(",")
        out.append("}")
    elif isinstance(obj, partial):
        out.append("P(")
        _canonical(obj.func, out)
        _canonical(list(obj.args), out)
        _canonical(dict(obj.keywords), out)
        out.append(")")
    elif callable(obj) and hasattr(obj, "__qualname__") and not (
        "<lambda>" in obj.__qualname__ or "<locals>" in obj.__qualname__
    ):
        # Only module-level callables: lambdas and closures have no
        # stable cross-process identity (and would not pickle anyway).
        out.append(f"F{getattr(obj, '__module__', '?')}.{obj.__qualname__}")
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r}: only dataclasses, "
            "primitives, containers, enums, and named callables are supported"
        )


def fingerprint(obj: Any) -> str:
    """A deterministic hex digest of ``obj``, stable across processes.

    Equal values (e.g. two separately constructed but equal
    :class:`InstanceSpec`, :class:`SLO`, or :class:`SyntheticDataset`
    instances) produce equal fingerprints in every interpreter; unlike
    ``hash()`` the digest does not depend on ``PYTHONHASHSEED``.

    Raises:
        TypeError: for objects without a canonical encoding (arbitrary
            class instances, lambdas, open files, ...).
    """
    out: "list[str]" = [_FINGERPRINT_VERSION, "|"]
    _canonical(obj, out)
    return hashlib.sha256("".join(out).encode()).hexdigest()[:24]


def trial_context_fingerprint(
    system_factory: Any,
    dataset: SyntheticDataset,
    slo: SLO,
    num_requests: int,
    seed: int,
    min_duration: float,
) -> str:
    """Cache-context key: everything that determines a trial except rate."""
    return fingerprint(
        ("goodput-trial", system_factory, dataset, slo, num_requests, seed, min_duration)
    )


# ----------------------------------------------------------------------
# Trial cache
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrialEntry:
    """One memoized trial outcome.

    ``exact`` entries hold the full-simulation attainment and may serve
    any request. Inexact entries come from early-aborted trials: their
    ``attainment`` is an upper bound strictly below ``abort_target``, so
    they may only serve probes that (a) permit aborting and (b) target
    at least ``abort_target`` — any such probe would reach the same
    below-target verdict.
    """

    attainment: float
    exact: bool
    abort_target: "float | None"
    truncated: bool

    def usable_for(self, abort_target: "float | None") -> bool:
        if self.exact:
            return True
        return (
            abort_target is not None
            and self.abort_target is not None
            and abort_target >= self.abort_target
        )


class TrialCache:
    """Deterministic memo of trial outcomes, grouped by trial context.

    Rates are used as exact float keys: the goodput search derives every
    probe rate from the same literals with the same arithmetic, so equal
    probes are bit-identical. Entries are plain picklable values — the
    parallel evaluator ships per-context snapshots to worker processes
    and merges fresh entries back.
    """

    def __init__(self) -> None:
        self._contexts: "dict[str, dict[float, TrialEntry]]" = {}

    def snapshot(self, context_fp: str) -> "dict[float, TrialEntry]":
        """A copy of the entries for one context (safe to ship to a worker)."""
        return dict(self._contexts.get(context_fp, ()))

    def merge(self, context_fp: str, entries: "dict[float, TrialEntry]") -> None:
        """Fold a worker's fresh entries back in (exact entries win)."""
        if not entries:
            return
        bucket = self._contexts.setdefault(context_fp, {})
        for rate, entry in entries.items():
            prev = bucket.get(rate)
            if prev is None or not prev.exact:
                bucket[rate] = entry

    def clear(self) -> None:
        self._contexts.clear()

    @property
    def num_contexts(self) -> int:
        return len(self._contexts)

    @property
    def num_entries(self) -> int:
        return sum(len(b) for b in self._contexts.values())


#: Process-wide cache shared by all placement searches by default, so a
#: sweep over cluster sizes or repeated replanning replays overlapping
#: configurations from memory.
GLOBAL_TRIAL_CACHE = TrialCache()


def resolve_trial_cache(trial_cache: "TrialCache | None | bool") -> TrialCache:
    """Map the placement APIs' ``trial_cache`` argument to a cache.

    ``None`` (default) selects :data:`GLOBAL_TRIAL_CACHE`; ``False``
    disables cross-search memoization by handing out a throwaway cache;
    a :class:`TrialCache` instance is used as-is.
    """
    if trial_cache is None:
        return GLOBAL_TRIAL_CACHE
    if trial_cache is False:
        return TrialCache()
    return trial_cache


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------

@dataclass
class PlacementSearchStats:
    """Instrumentation of one placement search (Figure 12).

    Attributes:
        configs_evaluated: Candidate configurations considered (memory-
            feasible enumeration size, matching the paper's search space).
        simulation_trials: Rate probes taken by all goodput searches
            (cached probes included — they are replayed, not skipped).
        configs_pruned: Simulations skipped by infeasibility/dominance
            pruning before any trial ran.
        cache_hits: Trials answered from the :class:`TrialCache`.
        cache_misses: Trials actually simulated.
        trials_aborted: Simulated trials stopped early by the SLO
            violation-budget monitor.
        trials_truncated: Trials that hit the event ceiling.
        workers: Worker processes used (1 = in-process serial).
        wall_time_s: Wall-clock seconds spent in the search.
    """

    configs_evaluated: int = 0
    simulation_trials: int = 0
    configs_pruned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    trials_aborted: int = 0
    trials_truncated: int = 0
    workers: int = 1
    wall_time_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    def absorb(self, task_result: "GoodputTaskResult") -> None:
        """Fold one evaluated task's counters in."""
        self.simulation_trials += task_result.result.trials
        self.trials_truncated += task_result.result.truncated_trials
        self.cache_hits += task_result.hits
        self.cache_misses += task_result.misses
        self.trials_aborted += task_result.aborted

    def comparable(self) -> "dict[str, int]":
        """All deterministic counters — everything except wall time.

        Two searches over the same inputs must agree on this dict for
        every ``workers`` setting; the serial/parallel parity tests
        assert exactly that.
        """
        return {
            "configs_evaluated": self.configs_evaluated,
            "simulation_trials": self.simulation_trials,
            "configs_pruned": self.configs_pruned,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "trials_aborted": self.trials_aborted,
            "trials_truncated": self.trials_truncated,
        }


# ----------------------------------------------------------------------
# Tasks and the memoizing trial runner
# ----------------------------------------------------------------------

@dataclass
class GoodputTask:
    """One independent goodput search, picklable for worker processes.

    ``payload`` is an :class:`InstanceSpec` for phase tasks (the masked
    SLO and system factory are re-derived via
    :func:`repro.core.simulate.phase_trial_setup` inside the worker) or
    a picklable system-factory callable for joint tasks.
    """

    kind: str  # "prefill" | "decode" | "joint"
    payload: Any
    dataset: SyntheticDataset
    slo: SLO
    attainment_target: float
    num_requests: int
    seed: int
    min_duration: float
    context_fp: str
    seed_entries: "dict[float, TrialEntry]" = field(default_factory=dict)
    early_abort: bool = True
    #: Fast-forward simulation kernel (bit-identical results; off routes
    #: every trial through the per-step reference path).
    fast_kernel: bool = True
    #: Scheduling policy triple for phase tasks (joint tasks carry it
    #: inside the factory partial). Non-default configs are bound into
    #: the re-derived factory and hence the fingerprint.
    scheduling: "SchedulingConfig | None" = None


@dataclass
class GoodputTaskResult:
    """A task's :class:`GoodputResult` plus cache/pruning bookkeeping."""

    result: GoodputResult
    context_fp: str
    new_entries: "dict[float, TrialEntry]"
    hits: int
    misses: int
    aborted: int


class _TrialRunner:
    """``(rate, abort_target) -> TrialOutcome`` with memoization.

    Seeded with a cache snapshot; fresh outcomes accumulate in
    ``new_entries`` for the parent process to merge back. Because every
    trial is deterministic, replaying an entry is indistinguishable from
    re-simulating it — which is what makes serial and parallel searches
    byte-identical.
    """

    def __init__(
        self,
        system_factory: Callable,
        dataset: SyntheticDataset,
        slo: SLO,
        num_requests: int,
        seed: int,
        min_duration: float,
        seed_entries: "dict[float, TrialEntry]",
    ) -> None:
        self._factory = system_factory
        self._dataset = dataset
        self._slo = slo
        self._num_requests = num_requests
        self._seed = seed
        self._min_duration = min_duration
        self._entries = dict(seed_entries)
        self.new_entries: "dict[float, TrialEntry]" = {}
        self.hits = 0
        self.misses = 0
        self.aborted = 0

    def __call__(self, rate: float, abort_target: "float | None") -> TrialOutcome:
        entry = self._entries.get(rate)
        if entry is not None and entry.usable_for(abort_target):
            self.hits += 1
            return TrialOutcome(
                attainment=entry.attainment,
                aborted=not entry.exact,
                truncated=entry.truncated,
            )
        self.misses += 1
        outcome = run_attainment_trial(
            self._factory, self._dataset, rate, self._slo,
            num_requests=self._num_requests, seed=self._seed,
            min_duration=self._min_duration, abort_target=abort_target,
        )
        if outcome.aborted:
            self.aborted += 1
        new = TrialEntry(
            attainment=outcome.attainment,
            exact=not outcome.aborted,
            abort_target=abort_target if outcome.aborted else None,
            truncated=outcome.truncated,
        )
        prev = self._entries.get(rate)
        if prev is None or not prev.exact:
            self._entries[rate] = new
            self.new_entries[rate] = new
        return outcome


def make_phase_task(
    kind: str,
    spec: InstanceSpec,
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float,
    num_requests: int,
    seed: int,
    cache: TrialCache,
    early_abort: bool = True,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> GoodputTask:
    """A phase-level goodput search task (``simu_prefill``/``simu_decode``)."""
    factory, trial_slo = phase_trial_setup(
        kind, spec, slo, fast_kernel=fast_kernel, scheduling=scheduling
    )
    fp = trial_context_fingerprint(
        factory, dataset, trial_slo, num_requests, seed, PHASE_TRIAL_MIN_DURATION
    )
    return GoodputTask(
        kind=kind, payload=spec, dataset=dataset, slo=slo,
        attainment_target=attainment_target, num_requests=num_requests,
        seed=seed, min_duration=PHASE_TRIAL_MIN_DURATION,
        context_fp=fp, seed_entries=cache.snapshot(fp), early_abort=early_abort,
        fast_kernel=fast_kernel, scheduling=scheduling,
    )


def make_joint_task(
    system_factory: Callable,
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float,
    num_requests: int,
    seed: int,
    min_duration: float,
    cache: TrialCache,
    early_abort: bool = True,
    fast_kernel: bool = True,
) -> GoodputTask:
    """A full-system goodput search task (Algorithm 2's joint simulation).

    ``system_factory`` must be picklable and fingerprintable — in
    practice a ``functools.partial`` over a module-level function with
    dataclass arguments.
    """
    fp = trial_context_fingerprint(
        system_factory, dataset, slo, num_requests, seed, min_duration
    )
    return GoodputTask(
        kind="joint", payload=system_factory, dataset=dataset, slo=slo,
        attainment_target=attainment_target, num_requests=num_requests,
        seed=seed, min_duration=min_duration,
        context_fp=fp, seed_entries=cache.snapshot(fp), early_abort=early_abort,
        fast_kernel=fast_kernel,
    )


def _execute_task(task: GoodputTask) -> GoodputTaskResult:
    """Run one goodput search (in-process or inside a pool worker)."""
    if task.kind in ("prefill", "decode"):
        factory, trial_slo = phase_trial_setup(
            task.kind, task.payload, task.slo,
            fast_kernel=task.fast_kernel, scheduling=task.scheduling,
        )
    elif task.kind == "joint":
        factory, trial_slo = task.payload, task.slo
    else:
        raise ValueError(f"unknown task kind {task.kind!r}")
    runner = _TrialRunner(
        factory, task.dataset, trial_slo,
        task.num_requests, task.seed, task.min_duration, task.seed_entries,
    )
    result = max_goodput(
        factory, task.dataset, trial_slo,
        attainment_target=task.attainment_target,
        num_requests=task.num_requests, seed=task.seed,
        min_duration=task.min_duration,
        trial_runner=runner, early_abort=task.early_abort,
    )
    return GoodputTaskResult(
        result=result, context_fp=task.context_fp,
        new_entries=runner.new_entries,
        hits=runner.hits, misses=runner.misses, aborted=runner.aborted,
    )


# ----------------------------------------------------------------------
# Parallel evaluator
# ----------------------------------------------------------------------

class ParallelEvaluator:
    """Fans goodput-search tasks across a process pool.

    With ``workers <= 1`` (or a single task) everything runs in-process
    — no pool is ever created — and because tasks are deterministic and
    mutually independent, the parallel path returns exactly the results
    the serial path would, in the same (submission) order.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers or 1))
        self._pool = None

    def run(self, tasks: "list[GoodputTask]") -> "list[GoodputTaskResult]":
        """Evaluate ``tasks``, returning results in submission order."""
        if not tasks:
            return []
        if self.workers <= 1 or len(tasks) == 1:
            return [_execute_task(task) for task in tasks]
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return list(self._pool.map(_execute_task, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Pruning bounds
# ----------------------------------------------------------------------

def phase_floor_latency(
    kind: str, spec: InstanceSpec, dataset: SyntheticDataset
) -> "float | None":
    """A hard lower bound on the phase metric any request can achieve.

    For prefill: the unloaded execution latency of the shortest possible
    prompt — every request's TTFT is at least its own batch's execution
    time, batches are at least as slow as their cheapest member alone,
    and all latency terms are monotone in batch content. For decode: the
    single-request step latency at the smallest possible context — each
    inter-token gap spans at least one decode step. Returns ``None``
    when the dataset cannot bound its lengths.
    """
    input_min = dataset.input_dist.min_length()
    if input_min is None:
        return None
    coeffs = spec.latency_coeffs
    if kind == "prefill":
        return prefill_times(
            spec.model, spec.config, coeffs, [input_min],
            tp_link=spec.tp_link, pp_link=spec.pp_link,
        ).request_latency
    out_min = dataset.output_dist.min_length()
    if out_min is None or out_min < 2:
        # Requests with a single output token have TPOT == 0 by
        # definition and always meet the TPOT SLO — no sound bound.
        return None
    return decode_times(
        spec.model, spec.config, coeffs, [input_min + 1],
        tp_link=spec.tp_link, pp_link=spec.pp_link,
    ).request_latency


def phase_slo_infeasible(
    kind: str, spec: InstanceSpec, dataset: SyntheticDataset, slo: SLO
) -> bool:
    """True only when the latency model *proves* zero attainment.

    When this holds, every request violates the phase SLO at any arrival
    rate, so the goodput search would return exactly 0.0 — skipping the
    simulation cannot change the placement. Jittered specs are never
    pruned (multiplicative noise below 1.0 could beat the floor).
    """
    if spec.jitter_sigma > 0:
        return False
    floor = phase_floor_latency(kind, spec, dataset)
    if floor is None:
        return False
    bound = slo.ttft if kind == "prefill" else slo.tpot
    return floor > bound


def rate_cap_per_gpu(num_gpus: int, rate_hi_cap: float = RATE_HI_CAP_DEFAULT) -> float:
    """Trivially sound per-GPU goodput upper bound: the search's rate cap."""
    return rate_hi_cap / num_gpus
