"""Goodput search: the maximum rate a system sustains at an SLO target.

"DistServe simply enumerates the placements via binary search and finds
the maximum rate that meets the SLO attainment target with simulation
trials" (§4.1). :func:`max_goodput` implements that search for any
system factory: double the rate until attainment drops below target,
then bisect to the requested resolution.

Two acceleration hooks keep the search cheap without changing its
answers (the search-acceleration layer in :mod:`repro.core.search`
builds on both):

* **Early abort** — a trial stops as soon as enough requests have
  violated the SLO that the attainment target is mathematically
  unreachable. The aborted trial reports an *upper bound* on its true
  attainment, which is below the target whenever the abort fires, so
  every pass/fail verdict the bisection takes is identical to the
  full simulation's. :func:`max_goodput` only allows aborts on probes
  whose attainment value is compared against the target and discarded;
  the probes whose value surfaces in :class:`GoodputResult` always run
  to completion, so results are bit-identical with pruning on or off.
* **Pluggable trial runner** — :func:`max_goodput` routes every trial
  through a ``(rate, abort_target) -> TrialOutcome`` callable, letting
  callers interpose a memoizing cache (see
  :class:`repro.core.search.TrialCache`) without touching the search
  control flow.

A third accelerator lives below this layer entirely: trials built by
:func:`repro.core.simulate.phase_trial_setup` (and the joint factories
of Algorithm 2) default to the fast-forward simulation kernel (DESIGN
§4h) — macro-stepped decode runs and memoized batch latency inside the
simulator. It is bit-identical to the per-step reference path, so this
module never needs to know which one ran; ``fast_kernel=False`` threads
through the same factories as an escape hatch.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.slo import slo_attainment
from ..serving.base import ServingSystem, simulate_trace
from ..simulator.events import Simulation
from ..simulator.request import RequestRecord
from ..workload.datasets import SyntheticDataset, generate_trace
from ..workload.slos import SLO
from ..workload.trace import Request

__all__ = [
    "GoodputResult",
    "TrialOutcome",
    "max_goodput",
    "run_attainment_trial",
    "attainment_at_rate",
    "min_slo_scale",
]

#: Hard ceiling on event count per trial, guarding unstable configurations.
MAX_EVENTS_PER_TRIAL = 5_000_000

#: Default cap on the doubling phase of :func:`max_goodput` — also the
#: basis of the search layer's trivially sound per-GPU goodput upper bound.
RATE_HI_CAP_DEFAULT = 512.0

#: Type of the injectable per-trial executor: ``(rate, abort_target)``
#: where ``abort_target`` is the attainment target when early abort is
#: permitted for this probe, or ``None`` when the exact value is needed.
TrialRunner = Callable[[float, "float | None"], "TrialOutcome"]


@dataclass(frozen=True)
class GoodputResult:
    """Outcome of a goodput search.

    Attributes:
        goodput: Max sustainable rate, req/s (0.0 if even the lowest
            probed rate misses the target).
        attainment_at_goodput: Measured attainment at that rate.
        trials: Simulation trials executed (rate probes; cached probes
            still count — see ``repro.core.search`` for hit statistics).
        truncated_trials: Trials that hit the per-trial event ceiling
            and were scored with their remaining requests counted as
            violations; a nonzero value flags an unstable configuration
            whose attainment figures are pessimistic bounds, not exact.
    """

    goodput: float
    attainment_at_goodput: float
    trials: int
    truncated_trials: int = 0


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one simulation trial at a fixed rate.

    Attributes:
        attainment: Total SLO attainment — exact when the trial ran to
            completion, an upper bound strictly below the abort target
            when ``aborted`` is set.
        aborted: The early-abort monitor stopped the simulation because
            the attainment target had become unreachable.
        truncated: The trial hit :data:`MAX_EVENTS_PER_TRIAL` (or the
            caller's ``max_events``) with events still pending; the
            unfinished requests were scored as violations.
    """

    attainment: float
    aborted: bool = False
    truncated: bool = False


class _EarlyAbortMonitor:
    """Counts SLO violations online and stops the simulation when the
    attainment target is mathematically out of reach.

    Quacks like :class:`repro.simulator.metrics.SloMonitor` (the two
    observe hooks) so :meth:`ServingSystem.attach_monitor` accepts it.
    Soundness: only *completed* requests are counted, and a completed
    request's TTFT/TPOT are final, so ``violations`` never overcounts;
    the trip condition ``violations > allowed`` therefore implies the
    full trial's attainment would be below the target too.
    """

    __slots__ = ("_sim", "_slo", "_allowed", "violations", "tripped")

    def __init__(self, sim: Simulation, slo: SLO, allowed_violations: int) -> None:
        self._sim = sim
        self._slo = slo
        self._allowed = allowed_violations
        self.violations = 0
        self.tripped = False

    def observe_arrival(self, request: Request) -> None:  # SloMonitor protocol
        pass

    def observe_completion(self, record: RequestRecord) -> None:
        if record.ttft > self._slo.ttft or record.tpot > self._slo.tpot:
            self.violations += 1
            if self.violations > self._allowed and not self.tripped:
                self.tripped = True
                self._sim.stop()


def run_attainment_trial(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    rate: float,
    slo: SLO,
    num_requests: int = 300,
    seed: int = 0,
    min_duration: float = 20.0,
    abort_target: "float | None" = None,
    max_events: int = MAX_EVENTS_PER_TRIAL,
) -> TrialOutcome:
    """Simulate one trial and return its attainment with abort/ceiling flags.

    Requests that never finish count as violations, so an overloaded
    system scores low rather than hanging the search. The trace is
    lengthened so it spans at least ``min_duration`` seconds of arrivals:
    a short burst at a high rate drains from an empty system without ever
    exposing steady-state queuing, which would make capacity look
    unbounded.

    Args:
        abort_target: When set, the trial stops as soon as completed-
            request violations alone prove attainment must fall below
            this target; the returned attainment is then the best value
            still achievable at the stop point (an upper bound < target).
        max_events: Event ceiling; hitting it with work pending marks the
            outcome ``truncated`` and emits a :class:`RuntimeWarning`.
    """
    rng = np.random.default_rng(seed)
    n = max(num_requests, int(rate * min_duration))
    trace = generate_trace(dataset, rate=rate, num_requests=n, rng=rng)
    sim = Simulation()
    system = system_factory(sim)
    abort: "_EarlyAbortMonitor | None" = None
    if abort_target is not None:
        # attainment >= target needs at least ceil(target * N) requests in
        # SLO, i.e. tolerates at most N - ceil(target * N) violations.
        allowed = len(trace) - math.ceil(abort_target * len(trace))
        abort = _EarlyAbortMonitor(sim, slo, allowed)
        system.attach_monitor(abort)
    result = simulate_trace(system, trace, max_events=max_events)
    if abort is not None and abort.tripped:
        upper_bound = (len(trace) - abort.violations) / len(trace)
        return TrialOutcome(attainment=upper_bound, aborted=True)
    truncated = len(sim) > 0 and sim.events_processed >= max_events
    if truncated:
        warnings.warn(
            f"goodput trial at rate {rate:.3g} hit the event ceiling "
            f"({max_events} events) with {sim.events_processed} executed and "
            f"{result.unfinished} requests unfinished; scoring the remainder "
            "as SLO violations",
            RuntimeWarning,
            stacklevel=2,
        )
    report = slo_attainment(result.records, slo, num_expected=len(trace))
    return TrialOutcome(attainment=report.total, truncated=truncated)


def attainment_at_rate(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    rate: float,
    slo: SLO,
    num_requests: int = 300,
    seed: int = 0,
    min_duration: float = 20.0,
) -> float:
    """Simulate one full trial and return total SLO attainment.

    Thin wrapper over :func:`run_attainment_trial` with aborting disabled,
    kept for callers that only need the exact scalar.
    """
    return run_attainment_trial(
        system_factory, dataset, rate, slo,
        num_requests=num_requests, seed=seed, min_duration=min_duration,
    ).attainment


def max_goodput(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    rate_lo: float = 0.05,
    rate_hi_cap: float = RATE_HI_CAP_DEFAULT,
    resolution: float = 0.02,
    min_duration: float = 20.0,
    trial_runner: "TrialRunner | None" = None,
    early_abort: bool = True,
) -> GoodputResult:
    """Binary-search the maximum rate meeting the attainment target.

    Args:
        system_factory: Builds a fresh system for each trial (systems hold
            per-simulation state and cannot be reused). Any scheduling
            policy choice (:mod:`repro.scheduling`) is bound inside the
            factory — this search never inspects it, so memoizing
            runners must fingerprint the factory itself (see
            :func:`repro.core.search.fingerprint`).
        dataset: Workload length distributions.
        slo: TTFT/TPOT objectives.
        attainment_target: Required fraction of requests meeting both SLOs.
        num_requests: Trace length per trial.
        seed: Trace RNG seed — fixed across trials so rate is the only
            variable.
        rate_lo: Lowest rate probed.
        rate_hi_cap: Upper bound on the doubling phase.
        resolution: Relative bisection resolution.
        trial_runner: Optional per-trial executor override, e.g. the
            memoizing runner of :mod:`repro.core.search`; defaults to
            :func:`run_attainment_trial` on ``system_factory``.
        early_abort: Permit trials to stop once the target is provably
            missed. Only probes whose attainment value is discarded after
            a pass/fail comparison may abort, so the returned
            :class:`GoodputResult` is identical either way (only
            ``truncated_trials`` may differ, since an aborted trial can
            stop before reaching the event ceiling).
    """
    if not 0.0 < attainment_target <= 1.0:
        raise ValueError(f"attainment_target must be in (0, 1], got {attainment_target}")
    if rate_lo <= 0:
        raise ValueError(f"rate_lo must be positive, got {rate_lo}")

    if trial_runner is None:
        def trial_runner(rate: float, abort_target: "float | None") -> TrialOutcome:
            return run_attainment_trial(
                system_factory, dataset, rate, slo,
                num_requests=num_requests, seed=seed, min_duration=min_duration,
                abort_target=abort_target,
            )

    trials = 0
    truncated = 0

    def attain(rate: float, allow_abort: bool = True) -> float:
        nonlocal trials, truncated
        trials += 1
        abort_target = attainment_target if (allow_abort and early_abort) else None
        outcome = trial_runner(rate, abort_target)
        truncated += outcome.truncated
        return outcome.attainment

    # The first probe's attainment surfaces in the result when it fails,
    # so it must be exact — no abort permitted.
    lo_att = attain(rate_lo, allow_abort=False)
    if lo_att < attainment_target:
        return GoodputResult(
            goodput=0.0, attainment_at_goodput=lo_att,
            trials=trials, truncated_trials=truncated,
        )

    # Exponential expansion: find the first failing rate.
    lo, hi = rate_lo, rate_lo
    lo_att_best = lo_att
    while hi < rate_hi_cap:
        hi = min(lo * 2.0, rate_hi_cap)
        att = attain(hi)
        if att < attainment_target:
            break
        lo, lo_att_best = hi, att
        if hi >= rate_hi_cap:
            return GoodputResult(
                goodput=rate_hi_cap, attainment_at_goodput=att,
                trials=trials, truncated_trials=truncated,
            )

    # Bisection between the last passing and first failing rates.
    while hi - lo > resolution * max(lo, 1.0):
        mid = (lo + hi) / 2.0
        att = attain(mid)
        if att >= attainment_target:
            lo, lo_att_best = mid, att
        else:
            hi = mid
    return GoodputResult(
        goodput=lo, attainment_at_goodput=lo_att_best,
        trials=trials, truncated_trials=truncated,
    )


def min_slo_scale(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    base_slo: SLO,
    rate: float,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    scale_lo: float = 0.05,
    scale_hi: float = 4.0,
    resolution: float = 0.02,
    min_duration: float = 20.0,
    early_abort: bool = True,
) -> "tuple[float, int]":
    """The most stringent SLO scale a system withstands at a fixed rate.

    Figure 8's second row: both of ``base_slo``'s bounds are multiplied
    by a scale factor and the system must keep ``attainment_target``.
    Smaller is better ("DistServe can achieve 1.4x-1.8x more stringent
    SLO than vLLM", §6.2). Every probe is consumed as a pass/fail
    verdict, so early abort is always sound here.

    Returns:
        ``(scale, trials)`` — the minimal passing scale (``inf`` if even
        ``scale_hi`` fails; ``scale_lo`` if everything passes).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0 < scale_lo < scale_hi:
        raise ValueError(f"need 0 < scale_lo < scale_hi, got {scale_lo}, {scale_hi}")

    trials = 0

    def passes(scale: float) -> bool:
        nonlocal trials
        trials += 1
        outcome = run_attainment_trial(
            system_factory, dataset, rate, base_slo.scaled(scale),
            num_requests=num_requests, seed=seed, min_duration=min_duration,
            abort_target=attainment_target if early_abort else None,
        )
        return outcome.attainment >= attainment_target

    if not passes(scale_hi):
        return float("inf"), trials
    if passes(scale_lo):
        return scale_lo, trials
    lo, hi = scale_lo, scale_hi  # lo fails, hi passes
    while hi - lo > resolution * hi:
        mid = (lo + hi) / 2.0
        if passes(mid):
            hi = mid
        else:
            lo = mid
    return hi, trials
