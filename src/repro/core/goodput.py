"""Goodput search: the maximum rate a system sustains at an SLO target.

"DistServe simply enumerates the placements via binary search and finds
the maximum rate that meets the SLO attainment target with simulation
trials" (§4.1). :func:`max_goodput` implements that search for any
system factory: double the rate until attainment drops below target,
then bisect to the requested resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.slo import slo_attainment
from ..serving.base import ServingSystem, simulate_trace
from ..simulator.events import Simulation
from ..workload.datasets import SyntheticDataset, generate_trace
from ..workload.slos import SLO

__all__ = ["GoodputResult", "max_goodput", "attainment_at_rate", "min_slo_scale"]

#: Hard ceiling on event count per trial, guarding unstable configurations.
MAX_EVENTS_PER_TRIAL = 5_000_000


@dataclass(frozen=True)
class GoodputResult:
    """Outcome of a goodput search.

    Attributes:
        goodput: Max sustainable rate, req/s (0.0 if even the lowest
            probed rate misses the target).
        attainment_at_goodput: Measured attainment at that rate.
        trials: Simulation trials executed.
    """

    goodput: float
    attainment_at_goodput: float
    trials: int


def attainment_at_rate(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    rate: float,
    slo: SLO,
    num_requests: int = 300,
    seed: int = 0,
    min_duration: float = 20.0,
) -> float:
    """Simulate one trial and return total SLO attainment.

    Requests that never finish count as violations, so an overloaded
    system scores low rather than hanging the search. The trace is
    lengthened so it spans at least ``min_duration`` seconds of arrivals:
    a short burst at a high rate drains from an empty system without ever
    exposing steady-state queuing, which would make capacity look
    unbounded.
    """
    rng = np.random.default_rng(seed)
    n = max(num_requests, int(rate * min_duration))
    trace = generate_trace(dataset, rate=rate, num_requests=n, rng=rng)
    sim = Simulation()
    system = system_factory(sim)
    result = simulate_trace(system, trace, max_events=MAX_EVENTS_PER_TRIAL)
    report = slo_attainment(result.records, slo, num_expected=len(trace))
    return report.total


def max_goodput(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    slo: SLO,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    rate_lo: float = 0.05,
    rate_hi_cap: float = 512.0,
    resolution: float = 0.02,
    min_duration: float = 20.0,
) -> GoodputResult:
    """Binary-search the maximum rate meeting the attainment target.

    Args:
        system_factory: Builds a fresh system for each trial (systems hold
            per-simulation state and cannot be reused).
        dataset: Workload length distributions.
        slo: TTFT/TPOT objectives.
        attainment_target: Required fraction of requests meeting both SLOs.
        num_requests: Trace length per trial.
        seed: Trace RNG seed — fixed across trials so rate is the only
            variable.
        rate_lo: Lowest rate probed.
        rate_hi_cap: Upper bound on the doubling phase.
        resolution: Relative bisection resolution.
    """
    if not 0.0 < attainment_target <= 1.0:
        raise ValueError(f"attainment_target must be in (0, 1], got {attainment_target}")
    if rate_lo <= 0:
        raise ValueError(f"rate_lo must be positive, got {rate_lo}")

    trials = 0

    def attain(rate: float) -> float:
        nonlocal trials
        trials += 1
        return attainment_at_rate(
            system_factory, dataset, rate, slo,
            num_requests=num_requests, seed=seed, min_duration=min_duration,
        )

    lo_att = attain(rate_lo)
    if lo_att < attainment_target:
        return GoodputResult(goodput=0.0, attainment_at_goodput=lo_att, trials=trials)

    # Exponential expansion: find the first failing rate.
    lo, hi = rate_lo, rate_lo
    lo_att_best = lo_att
    while hi < rate_hi_cap:
        hi = min(lo * 2.0, rate_hi_cap)
        att = attain(hi)
        if att < attainment_target:
            break
        lo, lo_att_best = hi, att
        if hi >= rate_hi_cap:
            return GoodputResult(
                goodput=rate_hi_cap, attainment_at_goodput=att, trials=trials
            )

    # Bisection between the last passing and first failing rates.
    while hi - lo > resolution * max(lo, 1.0):
        mid = (lo + hi) / 2.0
        att = attain(mid)
        if att >= attainment_target:
            lo, lo_att_best = mid, att
        else:
            hi = mid
    return GoodputResult(goodput=lo, attainment_at_goodput=lo_att_best, trials=trials)


def min_slo_scale(
    system_factory: "Callable[[Simulation], ServingSystem]",
    dataset: SyntheticDataset,
    base_slo: SLO,
    rate: float,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    scale_lo: float = 0.05,
    scale_hi: float = 4.0,
    resolution: float = 0.02,
    min_duration: float = 20.0,
) -> "tuple[float, int]":
    """The most stringent SLO scale a system withstands at a fixed rate.

    Figure 8's second row: both of ``base_slo``'s bounds are multiplied
    by a scale factor and the system must keep ``attainment_target``.
    Smaller is better ("DistServe can achieve 1.4x-1.8x more stringent
    SLO than vLLM", §6.2).

    Returns:
        ``(scale, trials)`` — the minimal passing scale (``inf`` if even
        ``scale_hi`` fails; ``scale_lo`` if everything passes).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0 < scale_lo < scale_hi:
        raise ValueError(f"need 0 < scale_lo < scale_hi, got {scale_lo}, {scale_hi}")

    trials = 0

    def passes(scale: float) -> bool:
        nonlocal trials
        trials += 1
        att = attainment_at_rate(
            system_factory, dataset, rate, base_slo.scaled(scale),
            num_requests=num_requests, seed=seed, min_duration=min_duration,
        )
        return att >= attainment_target

    if not passes(scale_hi):
        return float("inf"), trials
    if passes(scale_lo):
        return scale_lo, trials
    lo, hi = scale_lo, scale_hi  # lo fails, hi passes
    while hi - lo > resolution * hi:
        mid = (lo + hi) / 2.0
        if passes(mid):
            hi = mid
        else:
            lo = mid
    return hi, trials
