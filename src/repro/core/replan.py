"""Workload profiling and periodic replanning (§4.3 "Replaning").

A :class:`WorkloadProfiler` summarizes a sliding window of recent
requests — "key parameters such as the average input and output length
of the requests, the average arrival rate". When the recent pattern
drifts beyond tolerance from the pattern the current placement was
planned for, :meth:`ReplanController.maybe_replan` re-runs the
placement algorithm on a workload fitted to the recent history — cheap
(seconds, §6.5) compared to the hourly timescale of real drift.

The profiler has two modes:

* **standalone** — callers feed it requests via :meth:`observe` into a
  private count-bounded deque (the original behaviour), or
* **monitor-backed** (:meth:`WorkloadProfiler.from_monitor`) — it reads
  the arrival window that a
  :class:`~repro.simulator.metrics.SloMonitor` already maintains, so
  replanning and live SLO monitoring share one source of truth instead
  of each keeping a private copy of recent traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque

from .config import Placement
from ..workload.fitting import fit_trace
from ..workload.trace import Request, Trace, TraceStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..simulator.metrics import SloMonitor

__all__ = ["WorkloadProfiler", "DriftThresholds", "ReplanController"]


class WorkloadProfiler:
    """Sliding-window summary of recent traffic.

    Args:
        window_size: Maximum requests summarized. In monitor-backed mode
            this caps how much of the monitor's (time-bounded) arrival
            window is read — the most recent ``window_size`` requests.
        monitor: Optional :class:`~repro.simulator.metrics.SloMonitor`
            to read arrivals from. When set, :meth:`observe` is disabled
            — arrivals flow in through the serving system's attached
            monitor automatically.
    """

    def __init__(
        self, window_size: int = 1000, monitor: "SloMonitor | None" = None
    ) -> None:
        if window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {window_size}")
        self._window_size = window_size
        self._window: "Deque[Request]" = deque(maxlen=window_size)
        self._monitor = monitor

    @classmethod
    def from_monitor(
        cls, monitor: "SloMonitor", window_size: int = 1000
    ) -> "WorkloadProfiler":
        """A profiler reading the monitor's shared arrival window."""
        return cls(window_size=window_size, monitor=monitor)

    def observe(self, request: Request) -> None:
        """Record one served request (standalone mode only)."""
        if self._monitor is not None:
            raise RuntimeError(
                "profiler is monitor-backed; arrivals are observed by the "
                "attached SloMonitor, not via observe()"
            )
        self._window.append(request)

    def _requests(self) -> "list[Request]":
        if self._monitor is not None:
            recent = self._monitor.arrival_window()
            return recent[-self._window_size:]
        return list(self._window)

    def __len__(self) -> int:
        return len(self._requests())

    def snapshot(self) -> Trace:
        """The current window as a trace (arrival-ordered)."""
        return Trace(requests=self._requests())

    def stats(self) -> TraceStats:
        return self.snapshot().stats()


@dataclass(frozen=True)
class DriftThresholds:
    """Relative changes that count as a "significant pattern shift".

    A ratio of 1.3 means a 30% increase (or the reciprocal decrease)
    triggers replanning.
    """

    rate_ratio: float = 1.3
    input_len_ratio: float = 1.3
    output_len_ratio: float = 1.3

    def __post_init__(self) -> None:
        for name in ("rate_ratio", "input_len_ratio", "output_len_ratio"):
            if getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be > 1, got {getattr(self, name)}")


def _drifted(current: float, planned: float, ratio: float) -> bool:
    if planned <= 0:
        return current > 0
    r = current / planned
    return r > ratio or r < 1.0 / ratio


class ReplanController:
    """Detects drift and re-runs the placement algorithm.

    Args:
        profiler: Source of the recent-traffic window.
        planner: Callable mapping (fitted dataset, rate) to a new
            placement — typically a partial of
            :func:`~repro.core.placement_low.place_low_affinity`.
        thresholds: Drift sensitivities.
        min_window: Do nothing until this many requests are observed.
    """

    def __init__(
        self,
        profiler: WorkloadProfiler,
        planner: "Callable[..., Placement]",
        thresholds: "DriftThresholds | None" = None,
        min_window: int = 100,
    ) -> None:
        self._profiler = profiler
        self._planner = planner
        self._thresholds = thresholds or DriftThresholds()
        self._min_window = min_window
        self._planned_stats: "TraceStats | None" = None
        self.current_placement: "Placement | None" = None
        self.replans = 0

    def initialize(self, placement: Placement, planned_stats: TraceStats) -> None:
        """Record the initial plan and the workload it was planned for."""
        self.current_placement = placement
        self._planned_stats = planned_stats

    def drift_detected(self) -> bool:
        """Whether the recent window deviates beyond the thresholds."""
        if self._planned_stats is None or len(self._profiler) < self._min_window:
            return False
        now = self._profiler.stats()
        ref = self._planned_stats
        th = self._thresholds
        return (
            _drifted(now.arrival_rate, ref.arrival_rate, th.rate_ratio)
            or _drifted(now.mean_input_len, ref.mean_input_len, th.input_len_ratio)
            or _drifted(now.mean_output_len, ref.mean_output_len, th.output_len_ratio)
        )

    def maybe_replan(self) -> "Placement | None":
        """Replan if drifted; returns the new placement (or None).

        The new plan is fitted to the recent window — DistServe "will
        trigger a rerun of the placement algorithm based on recent
        historical data".
        """
        if not self.drift_detected():
            return None
        window = self._profiler.snapshot()
        fitted = fit_trace(window, method="empirical")
        placement = self._planner(fitted.dataset, fitted.arrival_rate)
        self.current_placement = placement
        self._planned_stats = window.stats()
        self.replans += 1
        return placement
