"""Algorithm 2: placement for low node-affinity clusters.

When cross-node bandwidth is scarce (the paper's 25 Gbps testbed), KV
caches must ride intra-node NVLink. The key insight (§4.2): transfers
occur only between *corresponding pipeline stages*, so by giving both
phases the same inter-op degree and colocating matching prefill/decode
segments on one node, all KV traffic stays inside nodes.

The search enumerates the shared inter-op degree and, per node, the
intra-node split — ``n_p`` prefill segments of ``tp_p`` GPUs plus
``n_d`` decode segments of ``tp_d`` GPUs with
``n_p*tp_p + n_d*tp_d <= M``. Each candidate *deployment unit*
(``n_p`` prefill + ``n_d`` decode instances spanning ``inter_op`` nodes)
is scored by simulating the full disaggregated system.

Joint simulation is expensive, so candidates are first ranked by the
cheap phase-level estimate ``min(n_p*goodput_p, n_d*goodput_d)`` and
only the top ``joint_sim_candidates`` are jointly simulated — the same
pruning spirit as the paper's parallelized search (§6.5). On top of
that, the search-acceleration layer (:mod:`repro.core.search`) runs the
unique phase simulations and the joint waves through a
:class:`~repro.core.search.ParallelEvaluator` with trial memoization,
and stops refining once the next candidate's estimate cannot beat the
best joint per-GPU goodput already measured (the phase-level estimate
upper-bounds the joint goodput: the full system adds queueing and
KV-transfer delay on top of each phase in isolation).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from .config import PhasePlan, Placement
from .search import (
    JOINT_PRUNE_WAVE,
    ParallelEvaluator,
    PlacementSearchStats,
    TrialCache,
    make_joint_task,
    make_phase_task,
    phase_slo_infeasible,
    resolve_trial_cache,
)
from ..hardware.cluster import Cluster
from ..latency.parallel import ParallelismConfig
from ..models.architecture import ModelArchitecture
from ..models.memory import fits_in_memory
from ..scheduling.config import SchedulingConfig
from ..serving.disaggregated import DisaggregatedSystem
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec
from ..workload.datasets import SyntheticDataset
from ..workload.slos import SLO

__all__ = ["IntraNodeConfig", "get_intra_node_configs", "place_low_affinity"]

#: Arrival span of each joint deployment-unit trial.
JOINT_TRIAL_MIN_DURATION = 45.0


@dataclass(frozen=True)
class IntraNodeConfig:
    """One way to pack prefill/decode segments into a node (Algorithm 2).

    Attributes:
        inter_op: Pipeline degree shared by both phases.
        num_prefill: Prefill instances in the deployment unit.
        prefill_tp: Tensor degree of each prefill segment.
        num_decode: Decode instances in the unit.
        decode_tp: Tensor degree of each decode segment.
    """

    inter_op: int
    num_prefill: int
    prefill_tp: int
    num_decode: int
    decode_tp: int

    @property
    def gpus_per_node(self) -> int:
        return self.num_prefill * self.prefill_tp + self.num_decode * self.decode_tp

    @property
    def num_gpus(self) -> int:
        """Total GPUs of the unit across its ``inter_op`` nodes."""
        return self.gpus_per_node * self.inter_op


def get_intra_node_configs(
    model: ModelArchitecture,
    inter_op: int,
    gpus_per_node: int,
    gpu_memory_bytes: int,
    max_prefill_instances: int = 4,
    max_decode_instances: int = 2,
) -> "list[IntraNodeConfig]":
    """Enumerate feasible intra-node segment packings for one inter-op degree."""
    configs: "list[IntraNodeConfig]" = []
    tp_options = [
        tp for tp in range(1, gpus_per_node + 1) if model.num_heads % tp == 0
    ]
    for tp_p in tp_options:
        if not fits_in_memory(model, gpu_memory_bytes, tp_p, inter_op):
            continue
        for tp_d in tp_options:
            if not fits_in_memory(model, gpu_memory_bytes, tp_d, inter_op):
                continue
            for n_p in range(1, max_prefill_instances + 1):
                for n_d in range(1, max_decode_instances + 1):
                    used = n_p * tp_p + n_d * tp_d
                    if used <= gpus_per_node:
                        configs.append(
                            IntraNodeConfig(
                                inter_op=inter_op,
                                num_prefill=n_p,
                                prefill_tp=tp_p,
                                num_decode=n_d,
                                decode_tp=tp_d,
                            )
                        )
    return configs


def _unit_factory(
    model: ModelArchitecture,
    cluster: Cluster,
    cand: IntraNodeConfig,
    sim: Simulation,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> DisaggregatedSystem:
    gpu = cluster.gpu
    # Stage k of both phases shares node k, so pipeline activations cross
    # nodes (tiny traffic) while KV migrations stay on NVLink (§4.2).
    pp_link = cluster.cross_node_link if cand.inter_op > 1 else cluster.intra_node_link
    prefill_spec = InstanceSpec(
        model=model,
        config=ParallelismConfig(tp=cand.prefill_tp, pp=cand.inter_op),
        gpu=gpu,
        tp_link=cluster.intra_node_link,
        pp_link=pp_link,
    )
    decode_spec = InstanceSpec(
        model=model,
        config=ParallelismConfig(tp=cand.decode_tp, pp=cand.inter_op),
        gpu=gpu,
        tp_link=cluster.intra_node_link,
        pp_link=pp_link,
    )
    # Randomized dispatch gets a fixed-seed generator built *inside* the
    # factory: trials stay deterministic and reproducible from the task
    # fingerprint alone (a Generator object could not be fingerprinted).
    rng = None
    if scheduling is not None and scheduling.dispatch_policy in (
        "random", "power_of_two"
    ):
        rng = np.random.default_rng(0)
    return DisaggregatedSystem(
        sim,
        prefill_spec,
        decode_spec,
        num_prefill=cand.num_prefill,
        num_decode=cand.num_decode,
        # Stage colocation pins KV migration to NVLink, one channel per
        # stage pair (§4.2).
        transfer_link=cluster.intra_node_link,
        transfer_channels=cand.inter_op,
        fast_kernel=fast_kernel,
        scheduling=scheduling,
        rng=rng,
    )


def place_low_affinity(
    model: ModelArchitecture,
    cluster: Cluster,
    dataset: SyntheticDataset,
    slo: SLO,
    traffic_rate: "float | None" = None,
    node_limit_per_instance: "int | None" = None,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    joint_sim_candidates: int = 5,
    stats: "PlacementSearchStats | None" = None,
    workers: int = 1,
    trial_cache: "TrialCache | None | bool" = None,
    prune: bool = True,
    early_abort: bool = True,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> Placement:
    """Algorithm 2 of the paper.

    Returns a placement whose deployment unit keeps every KV transfer on
    intra-node NVLink; the unit is replicated to carry ``traffic_rate``
    (pass ``None`` for a single, un-replicated deployment unit).

    ``workers``, ``trial_cache``, ``prune`` and ``early_abort`` behave
    as in :func:`repro.core.placement_high.place_high_affinity`; the
    returned placement is identical for every combination.

    Raises:
        RuntimeError: if no feasible unit exists or SLOs are unattainable.
    """
    if traffic_rate is not None and traffic_rate <= 0:
        raise ValueError(f"traffic_rate must be positive, got {traffic_rate}")
    n_limit = node_limit_per_instance or cluster.num_nodes
    gpu = cluster.gpu
    cache = resolve_trial_cache(trial_cache)
    st = stats if stats is not None else PlacementSearchStats()
    st.workers = max(1, int(workers or 1))
    # Wall-clock here measures *search* cost for PlacementSearchStats
    # reporting; it never feeds simulation state, placements, or
    # cache fingerprints.
    # reprolint: disable=DET001 -- search-cost stat, not sim state
    t0 = time.perf_counter()
    try:
        # Enumerate candidate packings and the unique (kind, tp, pp)
        # phase simulations they share, in discovery order.
        cand_list: "list[IntraNodeConfig]" = []
        phase_keys: "list[tuple[str, int, int]]" = []
        seen: "set[tuple[str, int, int]]" = set()
        for inter_op in range(1, n_limit + 1):
            if inter_op > model.num_layers:
                break
            for cand in get_intra_node_configs(
                model, inter_op, cluster.gpus_per_node, gpu.memory_bytes
            ):
                cand_list.append(cand)
                for kind, tp in (
                    ("prefill", cand.prefill_tp),
                    ("decode", cand.decode_tp),
                ):
                    key = (kind, tp, inter_op)
                    if key not in seen:
                        seen.add(key)
                        phase_keys.append(key)
        st.configs_evaluated += len(cand_list)
        if not cand_list:
            raise RuntimeError(f"no feasible configuration for {model.name}")

        def phase_spec(tp: int, pp: int) -> InstanceSpec:
            return InstanceSpec(
                model=model,
                config=ParallelismConfig(tp=tp, pp=pp),
                gpu=gpu,
                tp_link=cluster.intra_node_link,
                pp_link=(
                    cluster.cross_node_link if pp > 1 else cluster.intra_node_link
                ),
            )

        best: "tuple[float, IntraNodeConfig, float] | None" = None
        with ParallelEvaluator(workers) as evaluator:
            # Phase-level goodput per unique (kind, tp, pp) — one batch
            # of mutually independent simulations, ideal for fan-out.
            phase_goodput: "dict[tuple[str, int, int], float]" = {}
            tasks, slots = [], []
            for key in phase_keys:
                kind, tp, pp = key
                if prune and phase_slo_infeasible(kind, phase_spec(tp, pp), dataset, slo):
                    phase_goodput[key] = 0.0
                    st.configs_pruned += 1
                    continue
                tasks.append(
                    make_phase_task(
                        kind, phase_spec(tp, pp), dataset, slo, attainment_target,
                        num_requests, seed, cache, early_abort, fast_kernel,
                        scheduling,
                    )
                )
                slots.append(key)
            for key, tr in zip(slots, evaluator.run(tasks)):
                cache.merge(tr.context_fp, tr.new_entries)
                st.absorb(tr)
                phase_goodput[key] = tr.result.goodput

            candidates: "list[tuple[float, IntraNodeConfig]]" = []
            for cand in cand_list:
                estimate = min(
                    cand.num_prefill
                    * phase_goodput[("prefill", cand.prefill_tp, cand.inter_op)],
                    cand.num_decode
                    * phase_goodput[("decode", cand.decode_tp, cand.inter_op)],
                )
                candidates.append((estimate / cand.num_gpus, cand))
            candidates.sort(key=lambda item: item[0], reverse=True)
            # A zero phase-level estimate means one phase cannot meet its
            # SLO at any rate under that packing; such candidates cannot
            # joint-simulate any better, so only probe them if nothing
            # positive exists.
            positive = [c for c in candidates if c[0] > 0]
            if positive:
                candidates = positive

            top = candidates[:joint_sim_candidates]
            for start in range(0, len(top), JOINT_PRUNE_WAVE):
                wave = top[start : start + JOINT_PRUNE_WAVE]
                tasks, slots = [], []
                for estimate, cand in wave:
                    # Estimates are sorted descending, so once one falls
                    # at or below the best measured joint per-GPU goodput
                    # every remaining candidate is dominated too.
                    if prune and best is not None and estimate <= best[0]:
                        st.configs_pruned += 1
                        continue
                    # Defaults bind no extra keyword so the trial
                    # fingerprint (and any warm cache) is unchanged; a
                    # non-default SchedulingConfig is bound in and thus
                    # keys the cache by policy triple.
                    fkwargs = {}
                    if not fast_kernel:
                        fkwargs["fast_kernel"] = False
                    if scheduling is not None and not scheduling.is_default():
                        fkwargs["scheduling"] = scheduling
                    factory = partial(_unit_factory, model, cluster, cand, **fkwargs)
                    tasks.append(
                        make_joint_task(
                            factory,
                            dataset, slo, attainment_target,
                            num_requests, seed, JOINT_TRIAL_MIN_DURATION,
                            cache, early_abort,
                        )
                    )
                    slots.append(cand)
                for cand, tr in zip(slots, evaluator.run(tasks)):
                    cache.merge(tr.context_fp, tr.new_entries)
                    st.absorb(tr)
                    per_gpu = tr.result.goodput / cand.num_gpus
                    if best is None or per_gpu > best[0]:
                        best = (per_gpu, cand, tr.result.goodput)

        if best is None or best[2] <= 0:
            raise RuntimeError(f"SLO {slo} unattainable for {model.name}")

        per_gpu, cand, unit_goodput = best
        if traffic_rate is None:
            num_units = 1
        else:
            num_units = max(1, math.ceil(traffic_rate / unit_goodput))
        return Placement(
            prefill=PhasePlan(
                config=ParallelismConfig(tp=cand.prefill_tp, pp=cand.inter_op),
                num_instances=cand.num_prefill * num_units,
                goodput_per_instance=unit_goodput / cand.num_prefill,
            ),
            decode=PhasePlan(
                config=ParallelismConfig(tp=cand.decode_tp, pp=cand.inter_op),
                num_instances=cand.num_decode * num_units,
                goodput_per_instance=unit_goodput / cand.num_decode,
            ),
            kv_transfer_intra_node=True,
            scheduling=scheduling,
        )
    finally:
        # reprolint: disable=DET001 -- search-cost stat only (see above).
        st.wall_time_s += time.perf_counter() - t0
