"""Placement data types: per-phase configurations and the final placement.

A *placement* (§4) is (a) the parallelism strategy for prefill and
decoding instances, (b) how many of each to deploy, and (c) how they map
onto the cluster — here summarized by which link KV transfers cross.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..latency.parallel import ParallelismConfig
from ..scheduling.config import SchedulingConfig

__all__ = ["PhasePlan", "Placement"]


@dataclass(frozen=True)
class PhasePlan:
    """Parallelism and replication chosen for one phase.

    Attributes:
        config: Tensor/pipeline degrees of each instance.
        num_instances: Replicas deployed.
        goodput_per_instance: Simulated max rate (req/s) one instance
            sustains at the SLO attainment target.
    """

    config: ParallelismConfig
    num_instances: int
    goodput_per_instance: float

    def __post_init__(self) -> None:
        if self.num_instances <= 0:
            raise ValueError(f"num_instances must be positive, got {self.num_instances}")
        if self.goodput_per_instance < 0:
            raise ValueError("goodput_per_instance must be >= 0")

    @property
    def num_gpus(self) -> int:
        return self.config.num_gpus * self.num_instances

    @property
    def total_goodput(self) -> float:
        return self.goodput_per_instance * self.num_instances


@dataclass(frozen=True)
class Placement:
    """A full deployment plan for one model (Algorithm 1/2 output).

    Attributes:
        prefill: Prefill-phase plan.
        decode: Decode-phase plan.
        kv_transfer_intra_node: Whether KV migrations stay on NVLink
            (True under Algorithm 2's stage-colocated layout).
        scheduling: The policy triple the placement was searched under
            (``None`` = paper defaults). Deployments must run the same
            policies the search simulated, so the plan carries them.
    """

    prefill: PhasePlan
    decode: PhasePlan
    kv_transfer_intra_node: bool = True
    scheduling: "SchedulingConfig | None" = None

    @property
    def num_gpus(self) -> int:
        return self.prefill.num_gpus + self.decode.num_gpus

    @property
    def system_goodput(self) -> float:
        """Rate the whole deployment sustains: the slower phase binds."""
        return min(self.prefill.total_goodput, self.decode.total_goodput)

    @property
    def per_gpu_goodput(self) -> float:
        """The objective DistServe maximizes (§2)."""
        if self.num_gpus == 0:
            return 0.0
        return self.system_goodput / self.num_gpus

    def describe(self) -> str:
        """One-line human-readable summary (Appendix B style)."""
        return (
            f"prefill {self.prefill.num_instances}x(tp={self.prefill.config.tp},"
            f"pp={self.prefill.config.pp}) | decode {self.decode.num_instances}x"
            f"(tp={self.decode.config.tp},pp={self.decode.config.pp}) | "
            f"{self.num_gpus} GPUs | {self.per_gpu_goodput:.2f} req/s/GPU"
        )
