"""Algorithm 1: placement for high node-affinity clusters.

With fast cross-node fabric (InfiniBand), prefill and decoding instances
may land on any nodes, so the two phases are optimized *independently*:
enumerate every feasible (intra_op, inter_op) pair, simulate each phase's
goodput, keep the per-GPU-goodput argmax for each phase, then replicate
each phase to carry the target traffic ``R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import PhasePlan, Placement
from .simulate import candidate_configs, simu_decode, simu_prefill
from ..hardware.cluster import Cluster
from ..latency.parallel import ParallelismConfig
from ..models.architecture import ModelArchitecture
from ..models.memory import fits_in_memory
from ..simulator.instance import InstanceSpec
from ..workload.datasets import SyntheticDataset
from ..workload.slos import SLO

__all__ = ["PlacementSearchStats", "place_high_affinity"]


@dataclass
class PlacementSearchStats:
    """Instrumentation of one placement search (Figure 12)."""

    configs_evaluated: int = 0
    simulation_trials: int = 0


def place_high_affinity(
    model: ModelArchitecture,
    cluster: Cluster,
    dataset: SyntheticDataset,
    slo: SLO,
    traffic_rate: "float | None" = None,
    node_limit_per_instance: "int | None" = None,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    stats: "PlacementSearchStats | None" = None,
) -> Placement:
    """Algorithm 1 of the paper.

    Args:
        model: The LLM ``G``.
        cluster: Provides ``M`` (GPUs/node), memory capacity ``C``, links.
        dataset: Workload ``W`` (length distributions).
        slo: TTFT/TPOT objectives.
        traffic_rate: Target rate ``R`` the replicated deployment carries;
            ``None`` sizes the smallest balanced deployment (replicating
            the cheaper phase until it keeps up with one unit of the
            more capable phase).
        node_limit_per_instance: ``N`` — nodes one instance may span
            (defaults to the whole cluster).
        attainment_target: SLO attainment goal for the goodput search.
        num_requests: Trace length per simulation trial.
        seed: Workload resampling seed.
        stats: Optional instrumentation sink.

    Returns:
        The per-GPU-goodput-optimal placement.

    Raises:
        RuntimeError: if no feasible configuration exists (model too big).
    """
    if traffic_rate is not None and traffic_rate <= 0:
        raise ValueError(f"traffic_rate must be positive, got {traffic_rate}")
    n_limit = node_limit_per_instance or cluster.num_nodes
    max_gpus = n_limit * cluster.gpus_per_node
    gpu = cluster.gpu

    best_prefill: "tuple[float, ParallelismConfig, float] | None" = None
    best_decode: "tuple[float, ParallelismConfig, float] | None" = None

    for config in candidate_configs(
        model.num_heads, model.num_layers, cluster.gpus_per_node, max_gpus
    ):
        if not fits_in_memory(model, gpu.memory_bytes, config.tp, config.pp):
            continue
        if stats is not None:
            stats.configs_evaluated += 1
        spec = InstanceSpec(
            model=model,
            config=config,
            gpu=gpu,
            tp_link=cluster.intra_node_link,
            pp_link=(
                cluster.intra_node_link
                if config.num_gpus <= cluster.gpus_per_node
                else cluster.cross_node_link
            ),
        )
        pre = simu_prefill(
            spec, dataset, slo,
            attainment_target=attainment_target,
            num_requests=num_requests, seed=seed,
        )
        dec = simu_decode(
            spec, dataset, slo,
            attainment_target=attainment_target,
            num_requests=num_requests, seed=seed,
        )
        if stats is not None:
            stats.simulation_trials += pre.trials + dec.trials
        pre_per_gpu = pre.goodput / config.num_gpus
        dec_per_gpu = dec.goodput / config.num_gpus
        if best_prefill is None or pre_per_gpu > best_prefill[0]:
            best_prefill = (pre_per_gpu, config, pre.goodput)
        if best_decode is None or dec_per_gpu > best_decode[0]:
            best_decode = (dec_per_gpu, config, dec.goodput)

    if best_prefill is None or best_decode is None:
        raise RuntimeError(
            f"no feasible configuration for {model.name} on this cluster"
        )
    if best_prefill[2] <= 0 or best_decode[2] <= 0:
        raise RuntimeError(
            f"SLO {slo} unattainable for {model.name} at any enumerated config"
        )

    if traffic_rate is None:
        # Smallest balanced deployment: pick the replica counts (within a
        # small bound) that maximize per-GPU goodput — one copy of each
        # phase can leave the faster phase mostly idle when the phase
        # goodputs are far apart.
        best_ratio, num_prefill, num_decode = -1.0, 1, 1
        for n in range(1, 9):
            for m in range(1, 9):
                served = min(n * best_prefill[2], m * best_decode[2])
                gpus = (
                    n * best_prefill[1].num_gpus + m * best_decode[1].num_gpus
                )
                if served / gpus > best_ratio:
                    best_ratio, num_prefill, num_decode = served / gpus, n, m
    else:
        num_prefill = max(1, math.ceil(traffic_rate / best_prefill[2]))
        num_decode = max(1, math.ceil(traffic_rate / best_decode[2]))
    return Placement(
        prefill=PhasePlan(
            config=best_prefill[1],
            num_instances=num_prefill,
            goodput_per_instance=best_prefill[2],
        ),
        decode=PhasePlan(
            config=best_decode[1],
            num_instances=num_decode,
            goodput_per_instance=best_decode[2],
        ),
        kv_transfer_intra_node=False,
    )
