"""Algorithm 1: placement for high node-affinity clusters.

With fast cross-node fabric (InfiniBand), prefill and decoding instances
may land on any nodes, so the two phases are optimized *independently*:
enumerate every feasible (intra_op, inter_op) pair, simulate each phase's
goodput, keep the per-GPU-goodput argmax for each phase, then replicate
each phase to carry the target traffic ``R``.

The simulations ride on the search-acceleration layer
(:mod:`repro.core.search`): candidate phases are evaluated in fixed-size
waves through a :class:`~repro.core.search.ParallelEvaluator`, trial
outcomes are memoized in a :class:`~repro.core.search.TrialCache`, and
provably hopeless candidates (SLO-infeasible by the latency model's own
floor, or dominated by an already-measured per-GPU goodput) are pruned
before simulating. All of this is result-preserving: for fixed inputs
the returned :class:`Placement` is identical for every ``workers``
setting and with pruning on or off.
"""

from __future__ import annotations

import math
import time

from .config import PhasePlan, Placement
from .goodput import GoodputResult
from .search import (
    PRUNE_WAVE,
    ParallelEvaluator,
    PlacementSearchStats,
    TrialCache,
    make_phase_task,
    phase_slo_infeasible,
    rate_cap_per_gpu,
    resolve_trial_cache,
)
from .simulate import candidate_configs
from ..scheduling.config import SchedulingConfig
from ..hardware.cluster import Cluster
from ..latency.parallel import ParallelismConfig
from ..models.architecture import ModelArchitecture
from ..models.memory import fits_in_memory
from ..simulator.instance import InstanceSpec
from ..workload.datasets import SyntheticDataset
from ..workload.slos import SLO

__all__ = ["PlacementSearchStats", "place_high_affinity"]

_PHASES = ("prefill", "decode")


def place_high_affinity(
    model: ModelArchitecture,
    cluster: Cluster,
    dataset: SyntheticDataset,
    slo: SLO,
    traffic_rate: "float | None" = None,
    node_limit_per_instance: "int | None" = None,
    attainment_target: float = 0.9,
    num_requests: int = 300,
    seed: int = 0,
    stats: "PlacementSearchStats | None" = None,
    workers: int = 1,
    trial_cache: "TrialCache | None | bool" = None,
    prune: bool = True,
    early_abort: bool = True,
    fast_kernel: bool = True,
    scheduling: "SchedulingConfig | None" = None,
) -> Placement:
    """Algorithm 1 of the paper.

    Args:
        model: The LLM ``G``.
        cluster: Provides ``M`` (GPUs/node), memory capacity ``C``, links.
        dataset: Workload ``W`` (length distributions).
        slo: TTFT/TPOT objectives.
        traffic_rate: Target rate ``R`` the replicated deployment carries;
            ``None`` sizes the smallest balanced deployment (replicating
            the cheaper phase until it keeps up with one unit of the
            more capable phase).
        node_limit_per_instance: ``N`` — nodes one instance may span
            (defaults to the whole cluster).
        attainment_target: SLO attainment goal for the goodput search.
        num_requests: Trace length per simulation trial.
        seed: Workload resampling seed.
        stats: Optional instrumentation sink.
        workers: Simulation worker processes; ``<= 1`` runs in-process.
            The placement returned is identical either way.
        trial_cache: ``None`` uses the process-wide shared cache,
            ``False`` an isolated throwaway one, or pass a
            :class:`TrialCache` explicitly.
        prune: Skip simulations whose outcome is already decided
            (result-preserving; see :mod:`repro.core.search`).
        early_abort: Stop individual trials once the attainment target
            is mathematically unreachable.
        fast_kernel: Use the fast-forward simulation kernel for trials
            (default on; results are bit-identical either way).
        scheduling: Queue/batch/dispatch policy triple the simulated
            instances run (``None`` = paper defaults). Enters trial
            fingerprints when non-default, so the trial cache never
            conflates policies; the returned placement carries it.

    Returns:
        The per-GPU-goodput-optimal placement.

    Raises:
        RuntimeError: if no feasible configuration exists (model too big).
    """
    if traffic_rate is not None and traffic_rate <= 0:
        raise ValueError(f"traffic_rate must be positive, got {traffic_rate}")
    n_limit = node_limit_per_instance or cluster.num_nodes
    max_gpus = n_limit * cluster.gpus_per_node
    gpu = cluster.gpu
    cache = resolve_trial_cache(trial_cache)
    st = stats if stats is not None else PlacementSearchStats()
    st.workers = max(1, int(workers or 1))
    # Wall-clock here measures *search* cost for PlacementSearchStats
    # reporting; it never feeds simulation state, placements, or
    # cache fingerprints.
    # reprolint: disable=DET001 -- search-cost stat, not sim state
    t0 = time.perf_counter()
    try:
        entries: "list[tuple[ParallelismConfig, InstanceSpec]]" = []
        for config in candidate_configs(
            model.num_heads, model.num_layers, cluster.gpus_per_node, max_gpus
        ):
            if not fits_in_memory(model, gpu.memory_bytes, config.tp, config.pp):
                continue
            spec = InstanceSpec(
                model=model,
                config=config,
                gpu=gpu,
                tp_link=cluster.intra_node_link,
                pp_link=(
                    cluster.intra_node_link
                    if config.num_gpus <= cluster.gpus_per_node
                    else cluster.cross_node_link
                ),
            )
            entries.append((config, spec))
        st.configs_evaluated += len(entries)

        # Goodput of each (config, phase); None marks a dominance-pruned
        # entry — provably unable to beat the incumbent, excluded from
        # the argmax below without affecting it.
        results: "list[dict[str, GoodputResult | None]]" = [{} for _ in entries]
        # Best per-GPU goodput measured in *completed* waves. Pruning
        # only ever consults this, so decisions are independent of
        # worker count and intra-wave completion order.
        best_seen: "dict[str, float | None]" = {"prefill": None, "decode": None}

        with ParallelEvaluator(workers) as evaluator:
            for start in range(0, len(entries), PRUNE_WAVE):
                wave = range(start, min(start + PRUNE_WAVE, len(entries)))
                tasks, slots = [], []
                for i in wave:
                    config, spec = entries[i]
                    for kind in _PHASES:
                        if prune and phase_slo_infeasible(kind, spec, dataset, slo):
                            # The latency floor alone violates the SLO:
                            # the goodput search would return exactly 0.
                            results[i][kind] = GoodputResult(0.0, 0.0, 0)
                            st.configs_pruned += 1
                            continue
                        incumbent = best_seen[kind]
                        if (
                            prune
                            and incumbent is not None
                            and rate_cap_per_gpu(config.num_gpus) <= incumbent
                        ):
                            results[i][kind] = None
                            st.configs_pruned += 1
                            continue
                        tasks.append(
                            make_phase_task(
                                kind, spec, dataset, slo, attainment_target,
                                num_requests, seed, cache, early_abort,
                                fast_kernel, scheduling,
                            )
                        )
                        slots.append((i, kind))
                for (i, kind), tr in zip(slots, evaluator.run(tasks)):
                    cache.merge(tr.context_fp, tr.new_entries)
                    st.absorb(tr)
                    results[i][kind] = tr.result
                for i in wave:
                    config, _spec = entries[i]
                    for kind in _PHASES:
                        res = results[i][kind]
                        if res is None:
                            continue
                        per_gpu = res.goodput / config.num_gpus
                        incumbent = best_seen[kind]
                        if incumbent is None or per_gpu > incumbent:
                            best_seen[kind] = per_gpu

        best_prefill: "tuple[float, ParallelismConfig, float] | None" = None
        best_decode: "tuple[float, ParallelismConfig, float] | None" = None
        for (config, _spec), res in zip(entries, results):
            pre = res["prefill"]
            if pre is not None:
                per_gpu = pre.goodput / config.num_gpus
                if best_prefill is None or per_gpu > best_prefill[0]:
                    best_prefill = (per_gpu, config, pre.goodput)
            dec = res["decode"]
            if dec is not None:
                per_gpu = dec.goodput / config.num_gpus
                if best_decode is None or per_gpu > best_decode[0]:
                    best_decode = (per_gpu, config, dec.goodput)

        if best_prefill is None or best_decode is None:
            raise RuntimeError(
                f"no feasible configuration for {model.name} on this cluster"
            )
        if best_prefill[2] <= 0 or best_decode[2] <= 0:
            raise RuntimeError(
                f"SLO {slo} unattainable for {model.name} at any enumerated config"
            )

        if traffic_rate is None:
            # Smallest balanced deployment: pick the replica counts (within a
            # small bound) that maximize per-GPU goodput — one copy of each
            # phase can leave the faster phase mostly idle when the phase
            # goodputs are far apart.
            best_ratio, num_prefill, num_decode = -1.0, 1, 1
            for n in range(1, 9):
                for m in range(1, 9):
                    served = min(n * best_prefill[2], m * best_decode[2])
                    gpus = (
                        n * best_prefill[1].num_gpus + m * best_decode[1].num_gpus
                    )
                    if served / gpus > best_ratio:
                        best_ratio, num_prefill, num_decode = served / gpus, n, m
        else:
            num_prefill = max(1, math.ceil(traffic_rate / best_prefill[2]))
            num_decode = max(1, math.ceil(traffic_rate / best_decode[2]))
        return Placement(
            prefill=PhasePlan(
                config=best_prefill[1],
                num_instances=num_prefill,
                goodput_per_instance=best_prefill[2],
            ),
            decode=PhasePlan(
                config=best_decode[1],
                num_instances=num_decode,
                goodput_per_instance=best_decode[2],
            ),
            kv_transfer_intra_node=False,
            scheduling=scheduling,
        )
    finally:
        # reprolint: disable=DET001 -- search-cost stat only (see above).
        st.wall_time_s += time.perf_counter() - t0
