"""Placement validation: does a plan actually fit the target cluster?

The placement algorithms size deployments against per-instance
constraints; before deploying (or replicating for traffic), operators
need the cluster-level checks: total GPU budget, per-node packing for
stage-colocated placements, and weight-memory feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import Placement
from ..hardware.cluster import Cluster
from ..models.architecture import ModelArchitecture
from ..models.memory import fits_in_memory

__all__ = ["ValidationReport", "validate_placement"]


@dataclass
class ValidationReport:
    """Outcome of validating a placement against a cluster.

    Attributes:
        ok: True when no errors were found.
        errors: Hard violations (deployment impossible).
        warnings: Soft issues (deployment possible but suspicious).
    """

    errors: "list[str]" = field(default_factory=list)
    warnings: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        lines = ["OK" if self.ok else "INVALID"]
        lines += [f"error: {e}" for e in self.errors]
        lines += [f"warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_placement(
    placement: Placement,
    model: ModelArchitecture,
    cluster: Cluster,
) -> ValidationReport:
    """Check a placement against a cluster's physical constraints."""
    report = ValidationReport()

    # 1. Total GPU budget.
    if placement.num_gpus > cluster.num_gpus:
        report.errors.append(
            f"placement needs {placement.num_gpus} GPUs, cluster has "
            f"{cluster.num_gpus}"
        )

    # 2. Per-phase memory feasibility.
    for label, plan in (("prefill", placement.prefill), ("decode", placement.decode)):
        if not plan.config.is_valid_for(model):
            report.errors.append(
                f"{label} config {plan.config} cannot partition {model.name}"
            )
            continue
        if not fits_in_memory(
            model, cluster.gpu.memory_bytes, plan.config.tp, plan.config.pp
        ):
            report.errors.append(
                f"{label} weights do not fit: {model.name} needs "
                f"{model.weight_bytes / plan.config.num_gpus / 1e9:.1f} GB/GPU "
                f"under {plan.config}, capacity is "
                f"{cluster.gpu.memory_bytes / 1e9:.1f} GB"
            )

    # 3. TP groups must not straddle nodes (all-reduce needs NVLink).
    for label, plan in (("prefill", placement.prefill), ("decode", placement.decode)):
        if plan.config.tp > cluster.gpus_per_node:
            report.errors.append(
                f"{label} tp={plan.config.tp} exceeds the {cluster.gpus_per_node}"
                f"-GPU node (tensor parallelism cannot straddle nodes)"
            )

    # 4. Stage-colocated placements must pack a prefill and a decode
    # segment of the same stage into one node (§4.2).
    if placement.kv_transfer_intra_node:
        per_node = placement.prefill.config.tp + placement.decode.config.tp
        if per_node > cluster.gpus_per_node:
            report.errors.append(
                f"stage colocation needs {per_node} GPUs/node "
                f"(prefill tp {placement.prefill.config.tp} + decode tp "
                f"{placement.decode.config.tp}), node has {cluster.gpus_per_node}"
            )
        if placement.prefill.config.pp != placement.decode.config.pp:
            report.warnings.append(
                "stage-colocated placement with mismatched inter-op degrees "
                f"(prefill pp={placement.prefill.config.pp}, decode "
                f"pp={placement.decode.config.pp}): corresponding-stage "
                "transfers cannot be fully aligned"
            )
    elif not cluster.has_fast_cross_node:
        report.warnings.append(
            "placement routes KV transfers cross-node but the cluster fabric "
            f"is {cluster.cross_node_link.name}; expect transfer queuing "
            "(consider place_low_affinity)"
        )

    # 5. Phase imbalance is legal but worth surfacing.
    if placement.decode.total_goodput > 0 and placement.prefill.total_goodput > 0:
        ratio = placement.prefill.total_goodput / placement.decode.total_goodput
        if ratio > 2.0 or ratio < 0.5:
            report.warnings.append(
                f"phase goodputs differ {ratio:.1f}x; the slower phase caps "
                "the system and the faster one idles"
            )

    return report
