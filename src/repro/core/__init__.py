"""DistServe's core contribution: goodput-optimal placement search."""

from .config import PhasePlan, Placement
from .cost import CostModel, compare_cost, cost_per_request
from .deploy import build_system
from .goodput import (
    GoodputResult,
    TrialOutcome,
    attainment_at_rate,
    max_goodput,
    min_slo_scale,
    run_attainment_trial,
)
from .placement_high import place_high_affinity
from .placement_low import IntraNodeConfig, get_intra_node_configs, place_low_affinity
from .replan import DriftThresholds, ReplanController, WorkloadProfiler
from .search import (
    GLOBAL_TRIAL_CACHE,
    ParallelEvaluator,
    PlacementSearchStats,
    TrialCache,
    fingerprint,
    trial_context_fingerprint,
)
from .simulate import candidate_configs, phase_trial_setup, simu_decode, simu_prefill
from .validate import ValidationReport, validate_placement

__all__ = [
    "PhasePlan",
    "CostModel",
    "compare_cost",
    "cost_per_request",
    "Placement",
    "build_system",
    "GoodputResult",
    "TrialOutcome",
    "attainment_at_rate",
    "max_goodput",
    "min_slo_scale",
    "run_attainment_trial",
    "PlacementSearchStats",
    "place_high_affinity",
    "IntraNodeConfig",
    "get_intra_node_configs",
    "place_low_affinity",
    "DriftThresholds",
    "ReplanController",
    "WorkloadProfiler",
    "GLOBAL_TRIAL_CACHE",
    "ParallelEvaluator",
    "TrialCache",
    "fingerprint",
    "trial_context_fingerprint",
    "candidate_configs",
    "phase_trial_setup",
    "simu_decode",
    "simu_prefill",
    "ValidationReport",
    "validate_placement",
]
