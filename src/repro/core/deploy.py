"""Turn a :class:`Placement` into a runnable serving system."""

from __future__ import annotations

from .config import Placement
from ..hardware.cluster import Cluster
from ..models.architecture import ModelArchitecture
from ..serving.disaggregated import DisaggregatedSystem
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec

__all__ = ["build_system"]


def build_system(
    sim: Simulation,
    model: ModelArchitecture,
    placement: Placement,
    cluster: Cluster,
    transfer_mode: str = "pull",
) -> DisaggregatedSystem:
    """Instantiate the disaggregated system a placement describes.

    KV transfers ride NVLink when the placement is stage-colocated
    (Algorithm 2 output), the cross-node fabric otherwise (Algorithm 1).
    """
    if placement.kv_transfer_intra_node:
        link = cluster.intra_node_link
        channels = min(placement.prefill.config.pp, placement.decode.config.pp)
    else:
        link = cluster.cross_node_link
        channels = 1
    pp_pre = placement.prefill.config.pp
    pp_dec = placement.decode.config.pp
    prefill_spec = InstanceSpec(
        model=model,
        config=placement.prefill.config,
        gpu=cluster.gpu,
        tp_link=cluster.intra_node_link,
        pp_link=cluster.cross_node_link if pp_pre > 1 and placement.kv_transfer_intra_node
        else cluster.intra_node_link,
    )
    decode_spec = InstanceSpec(
        model=model,
        config=placement.decode.config,
        gpu=cluster.gpu,
        tp_link=cluster.intra_node_link,
        pp_link=cluster.cross_node_link if pp_dec > 1 and placement.kv_transfer_intra_node
        else cluster.intra_node_link,
    )
    return DisaggregatedSystem(
        sim,
        prefill_spec,
        decode_spec,
        num_prefill=placement.prefill.num_instances,
        num_decode=placement.decode.num_instances,
        transfer_link=link,
        transfer_channels=channels,
        transfer_mode=transfer_mode,
    )
