"""Cost modeling: from per-GPU goodput to cost per request.

The paper's bottom line is economic: "higher per-GPU goodput directly
translates into lower cost per query" (§1), and the abstract claims
"up to 4.48x lower cost per LLM query with guaranteed satisfaction of
SLOs". This module makes the conversion explicit so placements can be
compared in dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import Placement

__all__ = ["CostModel", "cost_per_request", "compare_cost"]

#: On-demand A100-80GB price in the paper's era, $/GPU-hour (order of
#: magnitude; override per deployment).
DEFAULT_GPU_HOURLY_USD = 2.0


@dataclass(frozen=True)
class CostModel:
    """Pricing assumptions.

    Attributes:
        gpu_hourly_usd: Price of one GPU for one hour.
        utilization_target: Fraction of provisioned capacity actually
            carrying traffic (provisioning for peaks leaves headroom).
    """

    gpu_hourly_usd: float = DEFAULT_GPU_HOURLY_USD
    utilization_target: float = 1.0

    def __post_init__(self) -> None:
        if self.gpu_hourly_usd <= 0:
            raise ValueError(f"gpu_hourly_usd must be positive, got {self.gpu_hourly_usd}")
        if not 0 < self.utilization_target <= 1:
            raise ValueError(
                f"utilization_target must be in (0, 1], got {self.utilization_target}"
            )


def cost_per_request(
    per_gpu_goodput: float, model: "CostModel | None" = None
) -> float:
    """Dollars per served request at a given per-GPU goodput.

    ``$/req = $/GPU-hour / (goodput * utilization * 3600 s)``.

    Raises:
        ValueError: if goodput is not positive (an unattainable SLO has
        infinite cost; surface that explicitly instead of dividing).
    """
    if per_gpu_goodput <= 0:
        raise ValueError(
            f"per_gpu_goodput must be positive, got {per_gpu_goodput}"
        )
    m = model or CostModel()
    requests_per_gpu_hour = per_gpu_goodput * m.utilization_target * 3600.0
    return m.gpu_hourly_usd / requests_per_gpu_hour


def compare_cost(
    placement: Placement,
    baseline_per_gpu_goodput: float,
    model: "CostModel | None" = None,
) -> "dict[str, float]":
    """Cost comparison of a placement against a baseline goodput.

    Returns a dict with ``placement_cost``, ``baseline_cost`` (both
    $/request) and ``savings_factor`` (baseline / placement — the
    paper's "X-times lower cost per query").
    """
    placement_cost = cost_per_request(placement.per_gpu_goodput, model)
    baseline_cost = cost_per_request(baseline_per_gpu_goodput, model)
    return {
        "placement_cost": placement_cost,
        "baseline_cost": baseline_cost,
        "savings_factor": baseline_cost / placement_cost,
    }
