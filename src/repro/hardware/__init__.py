"""Hardware model: GPUs, interconnects, cluster topology."""

from .cluster import Cluster, GPUId, Node, high_affinity_cluster, paper_testbed
from .gpu import A100_40GB, A100_80GB, GPU_REGISTRY, H100_80GB, GPUSpec, get_gpu
from .network import (
    ETHERNET_25G,
    INFINIBAND_200G,
    INFINIBAND_800G,
    LOOPBACK,
    NVLINK,
    LinkType,
    NetworkLink,
    transfer_time,
)

__all__ = [
    "Cluster",
    "GPUId",
    "Node",
    "high_affinity_cluster",
    "paper_testbed",
    "A100_40GB",
    "A100_80GB",
    "H100_80GB",
    "GPU_REGISTRY",
    "GPUSpec",
    "get_gpu",
    "ETHERNET_25G",
    "INFINIBAND_200G",
    "INFINIBAND_800G",
    "LOOPBACK",
    "NVLINK",
    "LinkType",
    "NetworkLink",
    "transfer_time",
]
