"""GPU device specifications.

The latency model needs two roofline quantities per device: peak dense
FP16 throughput (FLOP/s) and HBM bandwidth (bytes/s). The compute-bound /
memory-bound crossover of Appendix A ("on A100-80GB it is compute-bound
when arithmetic intensity exceeds 156") falls directly out of their ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "A100_80GB", "A100_40GB", "H100_80GB", "GPU_REGISTRY", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU device.

    Attributes:
        name: Device identifier, e.g. ``"a100-80gb"``.
        memory_bytes: HBM capacity.
        peak_flops: Peak dense FP16 tensor throughput, FLOP/s.
        memory_bandwidth: HBM bandwidth, bytes/s.
        nvlink_bandwidth: Per-direction NVLink bandwidth to peers in the
            same node, bytes/s.
        mfu: Attainable fraction of peak FLOPs for large GEMMs (model
            FLOPs utilization); real kernels never reach 100%. Defaults
            are calibrated to the serving-engine efficiency of the
            paper's testbed (2023-era vLLM kernels), which Table 2 /
            Figure 1 absolute latencies reflect.
        mbu: Attainable fraction of peak memory bandwidth.
    """

    name: str
    memory_bytes: int
    peak_flops: float
    memory_bandwidth: float
    nvlink_bandwidth: float
    mfu: float = 0.50
    mbu: float = 0.40

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("GPU capacities must be positive")
        if not 0 < self.mfu <= 1 or not 0 < self.mbu <= 1:
            raise ValueError("mfu and mbu must be in (0, 1]")

    @property
    def effective_flops(self) -> float:
        """Attainable FLOP/s for large compute-bound GEMMs."""
        return self.peak_flops * self.mfu

    @property
    def effective_bandwidth(self) -> float:
        """Attainable bytes/s for streaming memory-bound kernels."""
        return self.memory_bandwidth * self.mbu

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point in FLOPs/byte (~156 for A100 FP16)."""
        return self.peak_flops / self.memory_bandwidth


A100_80GB = GPUSpec(
    name="a100-80gb",
    memory_bytes=80 * 1024**3,
    peak_flops=312e12,            # FP16 tensor core peak
    memory_bandwidth=2039e9,      # HBM2e
    nvlink_bandwidth=300e9,       # 600 GB/s bidirectional => 300 GB/s per dir
)

A100_40GB = GPUSpec(
    name="a100-40gb",
    memory_bytes=40 * 1024**3,
    peak_flops=312e12,
    memory_bandwidth=1555e9,
    nvlink_bandwidth=300e9,
)

H100_80GB = GPUSpec(
    name="h100-80gb",
    memory_bytes=80 * 1024**3,
    peak_flops=989e12,
    memory_bandwidth=3350e9,
    nvlink_bandwidth=450e9,
)

GPU_REGISTRY: "dict[str, GPUSpec]" = {
    g.name: g for g in [A100_80GB, A100_40GB, H100_80GB]
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by case-insensitive name."""
    key = name.lower()
    if key not in GPU_REGISTRY:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known GPUs: {known}")
    return GPU_REGISTRY[key]
