"""Interconnect model for KV-cache and activation transfers.

Disaggregation moves KV caches from prefill to decoding instances (§3.3).
Whether that overhead is "insubstantial" depends entirely on the link it
crosses: intra-node NVLink (600 GB/s bidirectional on A100), InfiniBand
(up to 800 Gbps), or commodity Ethernet (the paper's testbed has 25 Gbps
cross-node). We model each link with a latency + bandwidth pair and give a
simple serialization-time formula; contention is handled by the simulator's
transfer engine, which serializes transfers sharing a link.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "LinkType",
    "NetworkLink",
    "NVLINK",
    "INFINIBAND_800G",
    "INFINIBAND_200G",
    "ETHERNET_25G",
    "LOOPBACK",
    "transfer_time",
]


class LinkType(Enum):
    """Classes of interconnect between two GPUs."""

    SAME_GPU = "same_gpu"
    NVLINK = "nvlink"
    CROSS_NODE = "cross_node"


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link characterized by latency and bandwidth.

    Attributes:
        name: Identifier for reporting.
        bandwidth: Sustained bandwidth in bytes/s.
        latency: Per-transfer fixed cost in seconds (software + wire setup).
    """

    name: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def time_for(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link, seconds."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


#: Same-GPU handoff: effectively a pointer swap, tiny fixed cost.
LOOPBACK = NetworkLink(name="loopback", bandwidth=1e15, latency=1e-6)

#: A100 NVLink, per-direction sustained.
NVLINK = NetworkLink(name="nvlink", bandwidth=300e9, latency=5e-6)

#: 800 Gbps InfiniBand (high node-affinity clusters, §4.1).
INFINIBAND_800G = NetworkLink(name="ib-800g", bandwidth=100e9, latency=3e-6)

#: 200 Gbps InfiniBand.
INFINIBAND_200G = NetworkLink(name="ib-200g", bandwidth=25e9, latency=3e-6)

#: 25 Gbps Ethernet — the paper's testbed cross-node fabric (§6.1).
ETHERNET_25G = NetworkLink(name="eth-25g", bandwidth=3.125e9, latency=20e-6)


def transfer_time(num_bytes: float, link: NetworkLink) -> float:
    """Serialization time of a single transfer over ``link``, seconds."""
    return link.time_for(num_bytes)
