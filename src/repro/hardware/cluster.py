"""Cluster topology: GPUs grouped into nodes, nodes joined by a fabric.

Placement algorithms need to know (a) how many GPUs fit in one node
(``M`` in Algorithms 1/2), (b) which pairs of GPUs share NVLink, and
(c) the cross-node bandwidth that decides whether the high- or
low-node-affinity algorithm applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .gpu import A100_80GB, GPUSpec
from .network import ETHERNET_25G, INFINIBAND_800G, LOOPBACK, NVLINK, LinkType, NetworkLink

__all__ = ["GPUId", "Node", "Cluster", "paper_testbed", "high_affinity_cluster"]


@dataclass(frozen=True, order=True)
class GPUId:
    """Globally unique GPU address: (node index, local GPU index)."""

    node: int
    local: int

    def __post_init__(self) -> None:
        if self.node < 0 or self.local < 0:
            raise ValueError("GPU indices must be non-negative")


@dataclass(frozen=True)
class Node:
    """A server hosting ``num_gpus`` identical GPUs joined by NVLink."""

    index: int
    num_gpus: int
    gpu: GPUSpec = A100_80GB

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {self.num_gpus}")

    def gpu_ids(self) -> "list[GPUId]":
        """All GPU addresses on this node."""
        return [GPUId(self.index, i) for i in range(self.num_gpus)]


@dataclass
class Cluster:
    """A homogeneous GPU cluster.

    Attributes:
        nodes: Member nodes (identical GPU counts assumed by the placement
            algorithms, matching the paper's testbed).
        intra_node_link: NVLink-class link within a node.
        cross_node_link: Fabric between nodes.
    """

    nodes: "list[Node]"
    intra_node_link: NetworkLink = NVLINK
    cross_node_link: NetworkLink = ETHERNET_25G

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster must contain at least one node")
        sizes = {n.num_gpus for n in self.nodes}
        if len(sizes) != 1:
            raise ValueError("heterogeneous node sizes are not supported")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def gpus_per_node(self) -> int:
        """``M`` in Algorithms 1 and 2."""
        return self.nodes[0].num_gpus

    @property
    def num_gpus(self) -> int:
        return sum(n.num_gpus for n in self.nodes)

    @property
    def gpu(self) -> GPUSpec:
        """The (homogeneous) GPU spec."""
        return self.nodes[0].gpu

    def all_gpu_ids(self) -> "list[GPUId]":
        return [g for n in self.nodes for g in n.gpu_ids()]

    def link_type(self, a: GPUId, b: GPUId) -> LinkType:
        """Classify the interconnect between two GPUs."""
        if a == b:
            return LinkType.SAME_GPU
        if a.node == b.node:
            return LinkType.NVLINK
        return LinkType.CROSS_NODE

    def link_between(self, a: GPUId, b: GPUId) -> NetworkLink:
        """The link a transfer between ``a`` and ``b`` traverses."""
        kind = self.link_type(a, b)
        if kind is LinkType.SAME_GPU:
            return LOOPBACK
        if kind is LinkType.NVLINK:
            return self.intra_node_link
        return self.cross_node_link

    @property
    def has_fast_cross_node(self) -> bool:
        """True when cross-node bandwidth makes KV transfer negligible.

        §3.3 estimates ~90 Gbps (11.3 GB/s) suffices at 10 req/s for
        OPT-66B; we use that as the threshold separating the high- from the
        low-node-affinity placement regime.
        """
        return self.cross_node_link.bandwidth >= 11.3e9


def paper_testbed() -> Cluster:
    """The paper's evaluation cluster: 4 nodes x 8 A100-80GB, 25 Gbps fabric."""
    return Cluster(
        nodes=[Node(index=i, num_gpus=8) for i in range(4)],
        intra_node_link=NVLINK,
        cross_node_link=ETHERNET_25G,
    )


def high_affinity_cluster(num_nodes: int = 4, gpus_per_node: int = 8) -> Cluster:
    """An InfiniBand cluster where Algorithm 1 applies (§4.1)."""
    return Cluster(
        nodes=[Node(index=i, num_gpus=gpus_per_node) for i in range(num_nodes)],
        intra_node_link=NVLINK,
        cross_node_link=INFINIBAND_800G,
    )
