"""Cluster-wide metrics registry and online SLO-attainment monitoring.

DistServe's central quantity is *goodput* — the rate of requests served
within both latency SLOs (§2, §3) — yet attainment is usually computed
offline after a run. This module provides the live counterpart:

* a typed metrics registry (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram` with fixed exponential buckets, grouped into
  labelled families by :class:`MetricsRegistry`) that the whole stack
  instruments itself against, and
* :class:`SloMonitor`, which maintains sliding-window TTFT/TPOT
  attainment, per-objective goodput, and violation streaks in *virtual*
  time as requests complete.

Everything is deterministic under a fixed seed: metric families and
children export in sorted order, histogram buckets are fixed at
registration, and no wall-clock time is ever read — so two runs of the
same seeded workload serialize to byte-identical Prometheus text (the
exporters live in :mod:`repro.analysis.metrics_export`).

Metrics are pull-oriented: most instruments are *callback-backed*,
reading an existing counter attribute (``busy_time``, ``preemptions``)
or live structure (queue depth, KV blocks) only when a value is
requested, so instrumentation adds no hot-path cost to the simulator.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Iterable

from .events import Simulation
from .request import RequestRecord
from ..workload.slos import SLO
from ..workload.trace import Request

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "exponential_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "AttainmentSnapshot",
    "SloMonitor",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float, count: int) -> "tuple[float, ...]":
    """``count`` bucket upper bounds: start, start*factor, ... (Prometheus style).

    Fixed at registration time so histogram output is seed-deterministic
    regardless of the values observed.
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


#: 1 ms .. ~131 s in powers of two — covers TTFT and TPOT across every
#: model/SLO pair of Table 1.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(0.001, 2.0, 18)


class Counter:
    """Monotonically non-decreasing value.

    Either incremented via :meth:`inc` or *callback-backed* (``fn``), in
    which case the value is read from the callback at collection time —
    the idiom for exporting an instrumentation attribute a component
    already maintains (e.g. ``busy_time``).
    """

    kind = "counter"

    def __init__(self, fn: "Callable[[], float] | None" = None) -> None:
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError("cannot inc() a callback-backed counter")
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge:
    """Value that can go up and down; optionally callback-backed."""

    kind = "gauge"

    def __init__(self, fn: "Callable[[], float] | None" = None) -> None:
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError("cannot set() a callback-backed gauge")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError("cannot inc() a callback-backed gauge")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Cumulative-bucket histogram with *fixed* upper bounds.

    Bucket bounds are frozen at construction (default
    :data:`DEFAULT_LATENCY_BUCKETS`) so the exported text depends only on
    the observations, never on insertion order or dynamic resizing —
    the determinism guarantee the golden-export CI job relies on.
    """

    kind = "histogram"

    def __init__(self, buckets: "Iterable[float] | None" = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        # Prometheus `le` semantics: a value landing exactly on a bound
        # belongs to that bucket. bisect_left finds the first bound not
        # < value; the explicit `<=` re-check keeps NaN out of every
        # finite bucket (it still counts toward +Inf via self.count).
        i = bisect_left(self.bounds, value)
        if i < len(self.bounds) and value <= self.bounds[i]:
            self.bucket_counts[i] += 1

    def cumulative_counts(self) -> "list[int]":
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


@dataclass
class MetricFamily:
    """All children of one metric name, keyed by label values."""

    name: str
    kind: str
    help: str
    labelnames: "tuple[str, ...]"
    children: "dict[tuple[str, ...], Counter | Gauge | Histogram]"


class MetricsRegistry:
    """Typed registry of metric families shared across the whole stack.

    Registration is idempotent: asking for an existing ``(name, labels)``
    pair returns the same metric object, so components may instrument
    themselves unconditionally. Conflicting re-registration (different
    kind or label names for one family) raises.
    """

    def __init__(self) -> None:
        self._families: "dict[str, MetricFamily]" = {}

    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
        fn: "Callable[[], float] | None" = None,
    ) -> Counter:
        return self._register(name, "counter", help, labels, lambda: Counter(fn=fn))

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
        fn: "Callable[[], float] | None" = None,
    ) -> Gauge:
        return self._register(name, "gauge", help, labels, lambda: Gauge(fn=fn))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
        buckets: "Iterable[float] | None" = None,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else None
        return self._register(
            name, "histogram", help, labels, lambda: Histogram(buckets=bounds)
        )

    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: "dict[str, str] | None",
        make: "Callable[[], Counter | Gauge | Histogram]",
    ) -> "Any":
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = labels or {}
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        labelnames = tuple(sorted(labels))
        labelvalues = tuple(str(labels[k]) for k in labelnames)
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labelnames, {})
            self._families[name] = family
        else:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            if family.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} has label names {family.labelnames}, "
                    f"got {labelnames}"
                )
        child = family.children.get(labelvalues)
        if child is None:
            child = make()
            family.children[labelvalues] = child
        return child

    # ------------------------------------------------------------------
    def families(self) -> "list[MetricFamily]":
        """All families, sorted by name (the export order)."""
        return [self._families[n] for n in sorted(self._families)]

    def get(
        self, name: str, labels: "dict[str, str] | None" = None
    ) -> "Counter | Gauge | Histogram":
        """Look up an existing metric; raises ``KeyError`` if absent."""
        family = self._families[name]
        labels = labels or {}
        key = tuple(str(labels[k]) for k in family.labelnames)
        return family.children[key]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttainmentSnapshot:
    """Attainment fractions over some set of completed requests.

    Field-compatible with :class:`repro.analysis.slo.AttainmentReport`
    (the offline computation) so the two can be compared directly; the
    monitor's cumulative snapshot matches it exactly for the same
    records.
    """

    total: float
    ttft_only: float
    tpot_only: float
    num_requests: int


class SloMonitor:
    """Online, windowed SLO-attainment and goodput monitor.

    Observes arrivals and completions as they happen in virtual time and
    maintains:

    * **cumulative attainment** — identical to the offline
      :func:`repro.analysis.slo.slo_attainment` over the same records;
    * **windowed attainment** over the trailing ``window`` seconds of
      completions (the operator's "is the system healthy *now*" view);
    * **per-objective goodput** — completions/second in the window
      meeting both SLOs (total), the TTFT SLO (prefill-phase health) or
      the TPOT SLO (decode-phase health);
    * **violation streaks** — current and longest runs of consecutive
      completions missing at least one SLO;
    * a trailing **arrival window** of :class:`Request` objects, shared
      with the §4.3 replanning profiler
      (:class:`repro.core.replan.WorkloadProfiler`) so replanning and
      monitoring read one source of truth.

    When given a ``registry``, the monitor registers callback-backed
    gauges/counters plus TTFT/TPOT histograms under the ``repro_slo_*``
    and ``repro_goodput_*`` names, so exports carry the attainment view
    without extra wiring.

    Args:
        sim: The simulation supplying virtual time.
        slo: TTFT/TPOT objectives to judge completions against.
        window: Sliding-window span, virtual seconds.
        registry: Optional registry to self-register metrics in.
    """

    def __init__(
        self,
        sim: Simulation,
        slo: SLO,
        window: float = 60.0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._sim = sim
        self.slo = slo
        self.window = window
        # (observation time, request) / (time, ttft_ok, tpot_ok).
        self._arrivals: "Deque[tuple[float, Request]]" = deque()
        self._completions: "Deque[tuple[float, bool, bool]]" = deque()
        # Cumulative tallies (never evicted).
        self.arrived = 0
        self.completed = 0
        self._ok_both = 0
        self._ok_ttft = 0
        self._ok_tpot = 0
        # Violation streaks (a violation = missing either SLO).
        self.violation_streak = 0
        self.longest_violation_streak = 0
        self._ttft_hist: "Histogram | None" = None
        self._tpot_hist: "Histogram | None" = None
        if registry is not None:
            self._register_metrics(registry)

    # ------------------------------------------------------------------
    def _register_metrics(self, registry: MetricsRegistry) -> None:
        registry.counter(
            "repro_slo_arrivals_total",
            "Requests observed arriving by the SLO monitor",
            fn=lambda: self.arrived,
        )
        registry.counter(
            "repro_slo_completions_total",
            "Completions judged by the SLO monitor",
            fn=lambda: self.completed,
        )
        for objective, fn in (
            ("total", lambda: self.completed - self._ok_both),
            ("ttft", lambda: self.completed - self._ok_ttft),
            ("tpot", lambda: self.completed - self._ok_tpot),
        ):
            registry.counter(
                "repro_slo_violations_total",
                "Completions missing the objective (total = either)",
                labels={"objective": objective},
                fn=fn,
            )
        for objective in ("total", "ttft", "tpot"):
            registry.gauge(
                "repro_slo_attainment_window",
                "Attainment over the trailing window",
                labels={"objective": objective},
                fn=lambda o=objective: getattr(
                    self.windowed_attainment(),
                    {"total": "total", "ttft": "ttft_only", "tpot": "tpot_only"}[o],
                ),
            )
            registry.gauge(
                "repro_slo_attainment_cumulative",
                "Attainment since the start of the run",
                labels={"objective": objective},
                fn=lambda o=objective: getattr(
                    self.cumulative_attainment(),
                    {"total": "total", "ttft": "ttft_only", "tpot": "tpot_only"}[o],
                ),
            )
            registry.gauge(
                "repro_goodput_window_rps",
                "SLO-attaining completions per second over the window",
                labels={"objective": objective},
                fn=lambda o=objective: self.windowed_goodput()[o],
            )
        registry.gauge(
            "repro_slo_violation_streak",
            "Consecutive completions missing at least one SLO",
            fn=lambda: self.violation_streak,
        )
        registry.gauge(
            "repro_slo_violation_streak_max",
            "Longest violation streak seen",
            fn=lambda: self.longest_violation_streak,
        )
        self._ttft_hist = registry.histogram(
            "repro_ttft_seconds", "Time to first token of completed requests"
        )
        self._tpot_hist = registry.histogram(
            "repro_tpot_seconds", "Time per output token of completed requests"
        )

    # ------------------------------------------------------------------
    def observe_arrival(self, request: Request) -> None:
        """Record one arriving request (feeds the profiler window)."""
        self.arrived += 1
        self._arrivals.append((self._sim.now, request))
        self._evict()

    def observe_completion(self, record: RequestRecord) -> None:
        """Judge one completed request against the SLOs."""
        ttft_ok = record.ttft <= self.slo.ttft
        tpot_ok = record.tpot <= self.slo.tpot
        self.completed += 1
        self._ok_ttft += ttft_ok
        self._ok_tpot += tpot_ok
        self._ok_both += ttft_ok and tpot_ok
        if ttft_ok and tpot_ok:
            self.violation_streak = 0
        else:
            self.violation_streak += 1
            self.longest_violation_streak = max(
                self.longest_violation_streak, self.violation_streak
            )
        if self._ttft_hist is not None:
            self._ttft_hist.observe(record.ttft)
            self._tpot_hist.observe(record.tpot)
        self._completions.append((self._sim.now, ttft_ok, tpot_ok))
        self._evict()

    def _evict(self) -> None:
        cutoff = self._sim.now - self.window
        while self._arrivals and self._arrivals[0][0] <= cutoff:
            self._arrivals.popleft()
        while self._completions and self._completions[0][0] <= cutoff:
            self._completions.popleft()

    # ------------------------------------------------------------------
    def windowed_attainment(self) -> AttainmentSnapshot:
        """Attainment over completions in the trailing window.

        An empty window reports perfect attainment (there is nothing to
        violate), mirroring the offline convention for zero records.
        """
        self._evict()
        n = len(self._completions)
        if n == 0:
            return AttainmentSnapshot(1.0, 1.0, 1.0, 0)
        ttft = sum(1 for _, t, _p in self._completions if t)
        tpot = sum(1 for _, _t, p in self._completions if p)
        both = sum(1 for _, t, p in self._completions if t and p)
        return AttainmentSnapshot(both / n, ttft / n, tpot / n, n)

    def cumulative_attainment(self) -> AttainmentSnapshot:
        """Attainment over every completion observed so far.

        Matches :func:`repro.analysis.slo.slo_attainment` exactly when
        fed the same records (same ``<=`` comparisons, same counts).
        """
        if self.completed == 0:
            return AttainmentSnapshot(1.0, 1.0, 1.0, 0)
        n = self.completed
        return AttainmentSnapshot(
            self._ok_both / n, self._ok_ttft / n, self._ok_tpot / n, n
        )

    def windowed_goodput(self) -> "dict[str, float]":
        """SLO-attaining completions/second over the trailing window.

        Keys: ``total`` (both SLOs — the paper's goodput), ``ttft``
        (prefill-phase health), ``tpot`` (decode-phase health). The
        divisor is the elapsed span, capped at the window length, so
        early in a run goodput is not diluted by time that has not
        passed yet.
        """
        self._evict()
        span = min(self.window, self._sim.now)
        if span <= 0:
            return {"total": 0.0, "ttft": 0.0, "tpot": 0.0}
        ttft = sum(1 for _, t, _p in self._completions if t)
        tpot = sum(1 for _, _t, p in self._completions if p)
        both = sum(1 for _, t, p in self._completions if t and p)
        return {"total": both / span, "ttft": ttft / span, "tpot": tpot / span}

    def windowed_arrival_rate(self) -> float:
        """Arrivals/second over the trailing window."""
        self._evict()
        span = min(self.window, self._sim.now)
        return len(self._arrivals) / span if span > 0 else 0.0

    def arrival_window(self) -> "list[Request]":
        """Requests that arrived within the trailing window.

        This is the shared traffic window the replanning profiler reads
        (instead of keeping its own private deque).
        """
        self._evict()
        return [request for _, request in self._arrivals]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line operator summary of the current window."""
        att = self.windowed_attainment()
        gp = self.windowed_goodput()
        return (
            f"window[{self.window:g}s] attainment "
            f"total={att.total:.1%} ttft={att.ttft_only:.1%} "
            f"tpot={att.tpot_only:.1%} (n={att.num_requests}) | "
            f"goodput {gp['total']:.2f} req/s | "
            f"violation streak {self.violation_streak} "
            f"(max {self.longest_violation_streak})"
        )
