"""SimSanitizer: runtime checking of the simulator's core invariants.

reprolint (:mod:`repro.lint`) proves what it can statically; this module
checks the rest at runtime, in the spirit of ASan/TSan for the event
loop. A :class:`SimSanitizer` owns a :class:`SanitizedSimulation` — a
drop-in :class:`~repro.simulator.events.Simulation` whose event loop
asserts *virtual-time monotonicity* on every dispatch and reports
past-scheduling attempts with full context — and wraps the mutable
resources of a serving system to detect:

* **request conservation** — every arrival is accounted for at quiesce:
  ``arrivals == completed + rejected + in-flight`` and, once the event
  queue drains, ``in-flight == 0``; duplicate completions and
  completions of never-submitted requests are caught immediately;
* **KV-block leaks** — any :class:`~repro.simulator.kvcache.KVBlockManager`
  still holding allocations when the simulation quiesces, reported with
  the leaking request ids (the "span ids" of PR 1's traces);
* **transfer double-free** — the same request double-submitted onto the
  transfer engine while its migration is still in flight, a completion
  callback firing twice, or transfers still outstanding at quiesce.

Checks are pure observers: a sanitized run executes the *same* events
in the *same* order and produces byte-identical traces and metrics
(``tests/test_sanitizer.py`` locks this against the golden fixture).

Usage::

    san = SimSanitizer()
    sim = san.simulation()
    system = DisaggregatedSystem(sim, ...)
    san.watch_system(system)
    simulate_trace(system, trace)
    san.check_quiesce()          # raises SanitizerError in strict mode
    print(san.report())

or from the CLI: ``repro.cli trace --sanitize`` / ``repro.cli metrics
--sanitize``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from .events import Simulation
from .kvcache import KVBlockManager
from .transfer import TransferEngine

__all__ = [
    "SanitizedSimulation",
    "SanitizerError",
    "SimSanitizer",
    "Violation",
]


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation.

    Attributes:
        kind: Machine-readable category (``time-regression``,
            ``past-schedule``, ``conservation``, ``duplicate-completion``,
            ``unknown-completion``, ``kv-leak``, ``transfer-double-submit``,
            ``transfer-double-complete``, ``transfer-outstanding``).
        message: Human-readable description with offending ids.
        time: Virtual time at detection.
        request_id: Offending request/span id, when attributable.
    """

    kind: str
    message: str
    time: float
    request_id: Optional[int] = None

    def format(self) -> str:
        where = f" [request {self.request_id}]" if self.request_id is not None else ""
        return f"[t={self.time:.6f}] {self.kind}{where}: {self.message}"


class SanitizerError(AssertionError):
    """Raised in strict mode the moment a violation is detected."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.format())
        self.violation = violation


class SanitizedSimulation(Simulation):
    """A :class:`Simulation` whose loop re-verifies its own invariants.

    The base class already *enforces* non-past scheduling by raising
    ``ValueError``; the sanitized loop additionally reports the attempt
    as a violation (so a full audit survives non-strict runs) and
    asserts that dispatch time never regresses — which would only
    happen if user code tampered with the clock or heap, exactly the
    tampering the sanitizer exists to surface.
    """

    __slots__ = ("_sanitizer",)

    def __init__(self, sanitizer: "SimSanitizer") -> None:
        super().__init__()
        self._sanitizer = sanitizer

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            self._sanitizer.violate(
                "past-schedule",
                f"schedule(delay={delay!r}) would fire in the virtual past",
                self.now,
            )
            # Lenient mode: clamp so the audit can continue past the
            # violation (strict mode raised above).
            delay = 0.0
        super().schedule(delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            self._sanitizer.violate(
                "past-schedule",
                f"schedule_at({time!r}) is before now={self.now!r}",
                self.now,
            )
            time = self.now
        super().schedule_at(time, callback)

    def run(
        self, until: "float | None" = None, max_events: "int | None" = None
    ) -> None:
        # Mirrors Simulation.run exactly, adding the monotonicity check
        # before each dispatch. Keeping the loop shapes identical is
        # what makes sanitized runs event-for-event identical.
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        while heap and not self._stopped:
            time = heap[0][0]
            if time < self._now:
                self._sanitizer.violate(
                    "time-regression",
                    f"next event at t={time!r} precedes now={self._now!r}; "
                    "the clock or heap was tampered with",
                    self._now,
                )
                # Recover deterministically: dispatch at current time so
                # the clock never moves backwards even in lenient mode.
                time = self._now
            if until is not None and time > until:
                self._now = until
                return
            _, _seq, callback = heappop(heap)
            self._now = max(self._now, time)
            callback()
            self._events_processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                return
        if until is not None and until > self._now:
            self._now = until


class _SystemWatch:
    """Conservation bookkeeping for one serving system."""

    def __init__(self, sanitizer: "SimSanitizer", system: Any) -> None:
        self.sanitizer = sanitizer
        self.system = system
        self.arrivals = 0
        self.completed_ids: "set[int]" = set()
        inner_submit = system.submit
        inner_complete = system._complete

        def submit(request: Any) -> None:
            self.arrivals += 1
            inner_submit(request)

        def complete(state: Any) -> None:
            request_id = getattr(state, "request_id", None)
            if request_id is not None:
                if request_id in self.completed_ids:
                    sanitizer.violate(
                        "duplicate-completion",
                        f"request {request_id} completed twice",
                        sanitizer.now(),
                        request_id=request_id,
                    )
                self.completed_ids.add(request_id)
            inner_complete(state)

        system.submit = submit
        system._complete = complete

    def check_quiesce(self) -> None:
        system = self.system
        completed = len(system.records)
        rejected = getattr(system, "rejections", 0)
        in_flight = system.unfinished
        if self.arrivals != completed + rejected + in_flight:
            self.sanitizer.violate(
                "conservation",
                f"arrivals ({self.arrivals}) != completed ({completed}) + "
                f"rejected ({rejected}) + in-flight ({in_flight})",
                self.sanitizer.now(),
            )
        if in_flight > 0:
            self.sanitizer.violate(
                "conservation",
                f"{in_flight} request(s) still in flight after the event "
                "queue drained — they can never complete",
                self.sanitizer.now(),
            )


class _KvWatch:
    """Leak detection for one KV block manager."""

    def __init__(self, sanitizer: "SimSanitizer", manager: KVBlockManager,
                 owner: str) -> None:
        self.sanitizer = sanitizer
        self.manager = manager
        self.owner = owner

    def check_quiesce(self) -> None:
        if self.manager.used_blocks > 0:
            holders = self.manager.holders()
            shown = ", ".join(str(h) for h in holders[:8])
            extra = f" (+{len(holders) - 8} more)" if len(holders) > 8 else ""
            self.sanitizer.violate(
                "kv-leak",
                f"{self.owner}: {self.manager.used_blocks} block(s) still "
                f"allocated at quiesce by request(s) {shown}{extra}",
                self.sanitizer.now(),
                request_id=holders[0] if holders else None,
            )


class _TransferWatch:
    """Double-submit / double-complete / outstanding-transfer detection."""

    def __init__(self, sanitizer: "SimSanitizer", engine: TransferEngine) -> None:
        self.sanitizer = sanitizer
        self.engine = engine
        self.in_flight: "dict[int, int]" = {}
        inner_submit = engine.submit

        def submit(request_id: int, num_bytes: float, link: Any,
                   on_done: Callable[[], None], num_parallel_channels: int = 1,
                   ) -> None:
            if self.in_flight.get(request_id, 0) > 0:
                sanitizer.violate(
                    "transfer-double-submit",
                    f"request {request_id} re-submitted to the transfer "
                    "engine while its migration is still in flight",
                    sanitizer.now(),
                    request_id=request_id,
                )
            self.in_flight[request_id] = self.in_flight.get(request_id, 0) + 1
            fired = [False]

            def done_once() -> None:
                if fired[0]:
                    sanitizer.violate(
                        "transfer-double-complete",
                        f"completion callback for request {request_id} "
                        "invoked twice",
                        sanitizer.now(),
                        request_id=request_id,
                    )
                else:
                    fired[0] = True
                    remaining = self.in_flight.get(request_id, 0) - 1
                    if remaining <= 0:
                        self.in_flight.pop(request_id, None)
                    else:
                        self.in_flight[request_id] = remaining
                on_done()

            inner_submit(request_id, num_bytes, link, done_once,
                         num_parallel_channels)

        engine.submit = submit  # type: ignore[method-assign]

    def check_quiesce(self) -> None:
        for request_id in sorted(self.in_flight):
            self.sanitizer.violate(
                "transfer-outstanding",
                f"request {request_id} has a transfer still in flight at "
                "quiesce",
                self.sanitizer.now(),
                request_id=request_id,
            )


class SimSanitizer:
    """Collects (or raises on) simulator invariant violations.

    Args:
        strict: When True (default), the first violation raises
            :class:`SanitizerError`. When False, violations accumulate
            in :attr:`violations` for a full post-run audit.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: "List[Violation]" = []
        self._sim: "SanitizedSimulation | None" = None
        self._system_watches: "list[_SystemWatch]" = []
        self._kv_watches: "list[_KvWatch]" = []
        self._transfer_watches: "list[_TransferWatch]" = []

    # ------------------------------------------------------------------
    def simulation(self) -> SanitizedSimulation:
        """Create the sanitized simulation this sanitizer observes."""
        if self._sim is None:
            self._sim = SanitizedSimulation(self)
        return self._sim

    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # ------------------------------------------------------------------
    def watch_system(self, system: Any) -> None:
        """Watch a serving system: conservation plus its components.

        Wraps ``submit``/``_complete`` for request accounting and
        auto-discovers the system's KV block managers and transfer
        engine (prefill/decode/colocated instances expose their managers
        via the ``_kv`` attribute; disaggregated systems their engine
        via ``_transfers``).
        """
        self._system_watches.append(_SystemWatch(self, system))
        instances: "list[Any]" = []
        for attr in ("prefill_instances", "decode_instances", "instances"):
            instances.extend(getattr(system, attr, ()))
        for instance in instances:
            manager = getattr(instance, "_kv", None)
            if isinstance(manager, KVBlockManager):
                self.watch_kv(manager, owner=getattr(instance, "name",
                                                     type(instance).__name__))
        engine = getattr(system, "_transfers", None)
        if isinstance(engine, TransferEngine):
            self.watch_transfer_engine(engine)

    def watch_kv(self, manager: KVBlockManager, owner: str = "kv") -> None:
        """Check ``manager`` for leaked blocks at quiesce."""
        self._kv_watches.append(_KvWatch(self, manager, owner))

    def watch_transfer_engine(self, engine: TransferEngine) -> None:
        """Check ``engine`` for double-submit/double-complete."""
        self._transfer_watches.append(_TransferWatch(self, engine))

    # ------------------------------------------------------------------
    def violate(
        self,
        kind: str,
        message: str,
        time: float,
        request_id: "int | None" = None,
    ) -> None:
        """Record a violation; raise immediately in strict mode."""
        violation = Violation(kind=kind, message=message, time=time,
                              request_id=request_id)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation)

    def check_quiesce(self) -> None:
        """Run end-of-simulation checks (call after the queue drains)."""
        for system_watch in self._system_watches:
            system_watch.check_quiesce()
        for kv_watch in self._kv_watches:
            kv_watch.check_quiesce()
        for transfer_watch in self._transfer_watches:
            transfer_watch.check_quiesce()

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable audit summary."""
        if not self.violations:
            return "SimSanitizer: 0 violations"
        lines = [f"SimSanitizer: {len(self.violations)} violation(s)"]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)
