"""Critical-path profiler hooks: cluster-level execution telemetry.

The tracer (:mod:`repro.simulator.tracing`) answers *where one request's
time went*; this module collects what spans cannot carry — the
instance-level execution timeline needed to answer *why*: which replica
was busy or idle, how full its batches ran, and when a decode instance
sat blocked on KV transfers it could not yet pull. §3.1's interference
argument and Figure 10's stage accounting both need this cluster view.

A :class:`Profiler` is a passive event sink shared by every instance and
the transfer engine, mirroring the tracer's injection pattern: components
hold the :data:`NULL_PROFILER` singleton unless a real profiler is
passed, and every hot-path call is guarded by ``profiler.enabled``. The
record methods are deliberately allocation-light — they append plain
tuples, no comprehensions, no dict churn (reprolint rule OBS001 enforces
this for all profiler/metric hot paths).

Collected streams (virtual-time seconds throughout):

* **exec events** ``(instance, phase, start, end, batch_size, tokens)``
  — one per executed prefill batch, decode step, or colocated iteration;
* **transfer events** ``(request_id, submitted, start, end)`` — the
  submit→wire-start gap is link queueing, start→end is wire time, which
  lets the analysis layer split the KV span into *wait* vs *transmit*;
* **pending intervals** ``(instance, start, end)`` — periods a decode
  instance had KV caches parked or in flight toward it (the §4.3 pull
  policy's "blocked on transfer" signal).

The analysis side (:mod:`repro.analysis.critpath`) turns these into
utilization timelines, batch-occupancy histograms, and interference
attribution; nothing here aggregates, so profiling cost stays O(1) per
event.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ExecEvent", "NullProfiler", "Profiler", "NULL_PROFILER"]

#: Field order of one exec-event tuple (documentation; events are plain
#: tuples to keep the per-event hot path allocation-light).
ExecEvent = "tuple[str, str, float, float, int, int]"


class Profiler:
    """Collects instance-level execution events in emission order.

    All three event streams are append-only lists of plain tuples, so a
    fixed-seed run produces an identical event sequence — the profile
    reports built from them are byte-deterministic.
    """

    enabled = True

    def __init__(self) -> None:
        #: (instance, phase, start, end, batch_size, tokens) per batch/step.
        self.exec_events: "list[tuple[str, str, float, float, int, int]]" = []
        #: (request_id, submitted, wire_start, wire_end) per KV migration.
        self.transfer_events: "list[tuple[int, float, float, float]]" = []
        #: (instance, start, end) blocked-on-transfer intervals.
        self.pending_events: "list[tuple[str, float, float]]" = []
        self._open_pending: "dict[str, float]" = {}
        self._finished = False

    def __len__(self) -> int:
        return len(self.exec_events)

    # ------------------------------------------------------------------
    def record_exec(
        self,
        instance: str,
        phase: str,
        start: float,
        end: float,
        batch_size: int,
        tokens: int,
    ) -> None:
        """Record one executed batch/step/iteration on ``instance``."""
        self.exec_events.append((instance, phase, start, end, batch_size, tokens))

    def record_transfer(
        self, request_id: int, submitted: float, start: float, end: float
    ) -> None:
        """Record one KV migration (submit time, wire start, wire end)."""
        self.transfer_events.append((request_id, submitted, start, end))

    def begin_pending(self, instance: str, time: float) -> None:
        """Open a blocked-on-transfer interval (idempotent while open)."""
        if instance not in self._open_pending:
            self._open_pending[instance] = time

    def end_pending(self, instance: str, time: float) -> None:
        """Close the open blocked-on-transfer interval, if any."""
        start = self._open_pending.pop(instance, None)
        if start is not None and time > start:
            self.pending_events.append((instance, start, time))

    def note_pending(self, instance: str, blocked: bool, time: float) -> None:
        """Reconcile the pending state after a queue/in-flight mutation."""
        if blocked:
            self.begin_pending(instance, time)
        else:
            self.end_pending(instance, time)

    # ------------------------------------------------------------------
    def finish(self, now: float) -> None:
        """Close any still-open pending intervals at simulation end.

        Idempotent; :func:`repro.serving.base.simulate_trace` calls this
        once the event queue drains so reports never see dangling
        intervals.
        """
        if self._finished:
            return
        self._finished = True
        for instance in sorted(self._open_pending):
            start = self._open_pending[instance]
            if now > start:
                self.pending_events.append((instance, start, now))
        self._open_pending.clear()

    def instances(self) -> "list[str]":
        """Instance names seen in any stream, sorted."""
        names: "set[str]" = set()
        for event in self.exec_events:
            names.add(event[0])
        for pending in self.pending_events:
            names.add(pending[0])
        return sorted(names)


class NullProfiler(Profiler):
    """The disabled profiler: every record method is a no-op.

    Components default to the shared :data:`NULL_PROFILER`, and hot
    paths additionally guard on ``enabled`` so a disabled profiler costs
    one attribute load per event at most.
    """

    enabled = False

    def record_exec(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def record_transfer(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def begin_pending(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def end_pending(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def note_pending(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def finish(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass


#: Shared no-op profiler used when profiling is disabled.
NULL_PROFILER = NullProfiler()
