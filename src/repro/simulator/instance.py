"""Instance specification shared by prefill, decode, and colocated engines.

"We use the term instance to denote a unit of resources that manages
exactly one complete copy of model weights" (§2.3). An
:class:`InstanceSpec` bundles the model, its parallelism configuration,
the device, and the calibrated latency coefficients, and derives the
KV-cache capacity the instance's block manager is sized with.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .kvcache import KVBlockManager
from ..hardware.gpu import A100_80GB, GPUSpec
from ..hardware.network import NVLINK, NetworkLink
from ..latency.coefficients import LatencyCoefficients, coefficients_from_roofline
from ..latency.parallel import ParallelismConfig
from ..models.architecture import ModelArchitecture
from ..models.memory import compute_memory_budget

__all__ = ["InstanceSpec", "DEFAULT_BLOCK_SIZE"]

#: vLLM's default PagedAttention block size, tokens per block.
DEFAULT_BLOCK_SIZE = 16


@dataclass(frozen=True)
class InstanceSpec:
    """Everything needed to instantiate one model replica in the simulator.

    Attributes:
        model: Full model architecture.
        config: Tensor/pipeline parallel degrees.
        gpu: Device type of every GPU in the instance.
        coeffs: Latency-model coefficients (defaults to the GPU roofline).
        tp_link: Interconnect for tensor-parallel all-reduces.
        pp_link: Interconnect for pipeline activations.
        max_batch_size: Upper bound on concurrent decoding requests.
        block_size: KV paging granularity, tokens.
        jitter_sigma: Log-normal sigma of per-batch execution-time noise.
            Zero (default) gives the deterministic simulator of §4.1; a
            positive value emulates a *real system* with kernel timing
            variance and scheduler jitter — used to reproduce Table 2's
            simulator-vs-testbed comparison.
    """

    model: ModelArchitecture
    config: ParallelismConfig = field(default_factory=ParallelismConfig)
    gpu: GPUSpec = A100_80GB
    coeffs: "LatencyCoefficients | None" = None
    tp_link: NetworkLink = NVLINK
    pp_link: NetworkLink = NVLINK
    max_batch_size: int = 256
    block_size: int = DEFAULT_BLOCK_SIZE
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        if not self.config.is_valid_for(self.model):
            raise ValueError(
                f"config {self.config} invalid for model {self.model.name}"
            )
        if self.max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.jitter_sigma < 0:
            raise ValueError(f"jitter_sigma must be >= 0, got {self.jitter_sigma}")

    def make_jitter(self, instance_name: str) -> "Callable[[], float]":
        """A deterministic per-instance noise source for batch durations.

        Returns a zero-argument callable yielding multiplicative factors;
        the constant 1.0 when ``jitter_sigma`` is zero.
        """
        if self.jitter_sigma == 0.0:
            return lambda: 1.0
        seed = zlib.crc32(instance_name.encode()) & 0x7FFFFFFF
        rng = np.random.default_rng(seed)
        sigma = self.jitter_sigma
        return lambda: float(rng.lognormal(mean=0.0, sigma=sigma))

    @property
    def latency_coeffs(self) -> LatencyCoefficients:
        """The configured coefficients, or the GPU-roofline defaults."""
        if self.coeffs is not None:
            return self.coeffs
        return coefficients_from_roofline(self.gpu)

    @property
    def num_gpus(self) -> int:
        return self.config.num_gpus

    def kv_token_capacity(self) -> int:
        """Token slots of KV cache the instance can hold.

        Raises:
            ValueError: if the weights do not fit in the instance's GPUs.
        """
        budget = compute_memory_budget(
            self.model,
            self.gpu.memory_bytes,
            tp_degree=self.config.tp,
            pp_degree=self.config.pp,
        )
        return budget.max_kv_tokens

    def make_kv_manager(self) -> KVBlockManager:
        """A block manager sized to this instance's KV capacity."""
        total_blocks = self.kv_token_capacity() // self.block_size
        return KVBlockManager(total_blocks=total_blocks, block_size=self.block_size)
