"""Paged KV-cache block manager (PagedAttention-style, vLLM [27]).

GPU memory left after weights is carved into fixed-size blocks of
``block_size`` token slots. Requests allocate whole blocks; the manager
tracks ownership so preemption and the disaggregated "prefill memory as
queuing buffer" policy (§4.3) can free precisely. Fragmentation is
internal-only (the unused tail of each request's last block), mirroring
PagedAttention's guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..quantities import Blocks, Tokens

__all__ = ["KVBlockManager", "OutOfBlocksError"]


class OutOfBlocksError(RuntimeError):
    """Raised when an allocation exceeds the remaining block budget."""


def blocks_needed(num_tokens: Tokens, block_size: int) -> Blocks:
    """Blocks required to hold ``num_tokens`` token slots."""
    return -(-num_tokens // block_size)


@dataclass
class _Allocation:
    num_tokens: int
    num_blocks: int


class KVBlockManager:
    """Fixed-pool paged allocator keyed by request id.

    Attributes:
        total_blocks: Pool capacity in blocks.
        block_size: Token slots per block (16 in vLLM's default).
    """

    def __init__(self, total_blocks: int, block_size: int = 16) -> None:
        if total_blocks < 0:
            raise ValueError(f"total_blocks must be >= 0, got {total_blocks}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.total_blocks = total_blocks
        self.block_size = block_size
        self._allocs: "dict[int, _Allocation]" = {}
        self._used_blocks = 0

    # ------------------------------------------------------------------
    @property
    def used_blocks(self) -> Blocks:
        return self._used_blocks

    @property
    def free_blocks(self) -> Blocks:
        return self.total_blocks - self._used_blocks

    @property
    def utilization(self) -> float:
        """Fraction of the pool currently allocated."""
        if self.total_blocks == 0:
            return 1.0
        return self._used_blocks / self.total_blocks

    def tokens_of(self, request_id: int) -> Tokens:
        """Token slots currently held by a request (0 if none)."""
        alloc = self._allocs.get(request_id)
        return alloc.num_tokens if alloc else 0

    # ------------------------------------------------------------------
    def can_allocate(self, num_tokens: Tokens) -> bool:
        """Whether a fresh allocation of ``num_tokens`` would succeed."""
        return blocks_needed(num_tokens, self.block_size) <= self.free_blocks

    def allocate(self, request_id: int, num_tokens: Tokens) -> None:
        """Allocate the initial blocks for a request's ``num_tokens``.

        Raises:
            OutOfBlocksError: if the pool lacks space.
            ValueError: if the request already holds an allocation.
        """
        if request_id in self._allocs:
            raise ValueError(f"request {request_id} already holds an allocation")
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
        need = blocks_needed(num_tokens, self.block_size)
        if need > self.free_blocks:
            raise OutOfBlocksError(
                f"need {need} blocks for request {request_id}, "
                f"only {self.free_blocks} free"
            )
        self._allocs[request_id] = _Allocation(num_tokens=num_tokens, num_blocks=need)
        self._used_blocks += need

    def can_append(self, request_id: int, num_tokens: Tokens = 1) -> bool:
        """Whether growing a request by ``num_tokens`` would succeed."""
        alloc = self._allocs.get(request_id)
        if alloc is None:
            return False
        need = blocks_needed(alloc.num_tokens + num_tokens, self.block_size)
        return need - alloc.num_blocks <= self.free_blocks

    def append(self, request_id: int, num_tokens: Tokens = 1) -> None:
        """Grow a request's allocation by ``num_tokens`` (decode step).

        Raises:
            KeyError: if the request holds no allocation.
            OutOfBlocksError: if a new block is needed but none is free.
        """
        alloc = self._allocs.get(request_id)
        if alloc is None:
            raise KeyError(f"request {request_id} holds no allocation")
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
        new_total = alloc.num_tokens + num_tokens
        need = blocks_needed(new_total, self.block_size)
        extra = need - alloc.num_blocks
        if extra > self.free_blocks:
            raise OutOfBlocksError(
                f"request {request_id} needs {extra} more blocks, "
                f"only {self.free_blocks} free"
            )
        alloc.num_tokens = new_total
        alloc.num_blocks = need
        self._used_blocks += extra

    def free(self, request_id: int) -> Blocks:
        """Release a request's blocks; returns the number freed.

        Freeing an unknown request is a no-op returning 0 (idempotent, so
        completion and preemption paths need not coordinate).
        """
        alloc = self._allocs.pop(request_id, None)
        if alloc is None:
            return 0
        self._used_blocks -= alloc.num_blocks
        return alloc.num_blocks

    def holders(self) -> "list[int]":
        """Request ids currently holding allocations (insertion order)."""
        return list(self._allocs)
