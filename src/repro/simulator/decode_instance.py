"""Decode instance: continuous batching of token generation.

A decode instance receives KV caches pulled from prefill instances and
generates the remaining tokens. Batching is the whole point (§3.2): a
single decode job is bandwidth-bound, so the instance accumulates as
large a batch as its KV memory and ``max_batch_size`` allow.

Pipeline parallelism is modeled in steady state: the active set splits
into ``pp`` micro-batches flowing through the stages, so every active
request produces one token per ``request_latency(micro-batch)`` —
pipeline depth multiplies KV capacity (hence throughput) while TPOT is
set by the micro-batch traversal time.

Admission reserves the *full* final context (prompt + all output tokens)
so a request admitted never runs out of KV mid-flight; this is the
conservative no-preemption policy a disaggregated decode instance can
afford because the prefill side buffers overflow (§4.3 pull policy).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from .events import Simulation
from .instance import InstanceSpec
from .kvcache import KVBlockManager
from .metrics import MetricsRegistry
from .profiler import NULL_PROFILER, Profiler
from .request import RequestPhase, RequestState
from .tracing import NULL_TRACER, SpanKind, Tracer
from ..latency.parallel import decode_times

__all__ = ["DecodeInstance"]


class DecodeInstance:
    """Simulated decode-only model replica.

    Args:
        sim: Shared simulation loop.
        spec: Instance resources and parallelism.
        on_request_done: Callback fired when a request's last token is
            generated.
        reserve_full_context: Reserve KV for the final context length at
            admission (True, default) or only the current context with
            growth on demand (False — vLLM-style optimistic admission;
            an append failure then preempts the youngest request).
        name: Identifier for reporting.
        tracer: Optional lifecycle tracer receiving queue/step spans.
        profiler: Optional critical-path profiler receiving one exec
            event per decoding step.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        on_request_done: Callable[[RequestState], None],
        reserve_full_context: bool = True,
        name: str = "decode-0",
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
    ) -> None:
        self._sim = sim
        self.spec = spec
        self.name = name
        self._on_done = on_request_done
        self._reserve_full = reserve_full_context
        self._waiting: "Deque[RequestState]" = deque()
        self._active: "list[RequestState]" = []
        self._active_ids: "set[int]" = set()
        self._kv: KVBlockManager = spec.make_kv_manager()
        self._coeffs = spec.latency_coeffs
        self._jitter = spec.make_jitter(name)
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._prof = profiler if profiler is not None else NULL_PROFILER
        self._alive = True
        self._stepping = False
        # Instrumentation.
        self.steps_executed = 0
        self.busy_time = 0.0
        self.preemptions = 0
        self.tokens_generated = 0

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Active plus waiting requests — the dispatch load signal."""
        return len(self._active) + len(self._waiting)

    @property
    def active_batch_size(self) -> int:
        return len(self._active)

    def kv_capacity_tokens(self) -> int:
        return self._kv.total_blocks * self._kv.block_size

    def kv_free_tokens(self) -> int:
        return self._kv.free_blocks * self._kv.block_size

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register this instance's gauges/counters (callback-backed)."""
        labels = {"phase": "decode", "instance": self.name}
        registry.gauge(
            "repro_queue_depth", "Requests waiting for a batch slot",
            labels=labels, fn=lambda: len(self._waiting),
        )
        registry.gauge(
            "repro_batch_size", "Active continuous-batching set size",
            labels=labels, fn=lambda: len(self._active),
        )
        registry.gauge(
            "repro_kv_blocks_used", "KV-cache blocks allocated",
            labels=labels, fn=lambda: self._kv.used_blocks,
        )
        registry.gauge(
            "repro_kv_blocks_free", "KV-cache blocks available",
            labels=labels, fn=lambda: self._kv.free_blocks,
        )
        registry.counter(
            "repro_batches_total", "Batches/steps executed",
            labels=labels, fn=lambda: self.steps_executed,
        )
        registry.counter(
            "repro_tokens_total", "Tokens processed by the phase",
            labels=labels, fn=lambda: self.tokens_generated,
        )
        registry.counter(
            "repro_busy_seconds_total", "Virtual seconds spent executing",
            labels=labels, fn=lambda: self.busy_time,
        )
        registry.counter(
            "repro_preemptions_total", "Recompute preemptions",
            labels=labels, fn=lambda: self.preemptions,
        )
        registry.gauge(
            "repro_utilization", "Busy fraction of elapsed virtual time",
            labels=labels,
            fn=lambda: self.busy_time / self._sim.now if self._sim.now > 0 else 0.0,
        )

    def can_reserve(self, state: RequestState, extra_blocks: int = 0) -> bool:
        """Whether admitting ``state`` now would find KV space.

        Used by the orchestration layer's *pull* policy: the KV transfer
        is initiated only when this returns True. ``extra_blocks``
        accounts for reservations already promised to in-flight transfers.
        """
        need = self._reservation_tokens(state)
        need_blocks = -(-need // self._kv.block_size)
        return need_blocks + extra_blocks <= self._kv.free_blocks

    def reservation_blocks(self, state: RequestState) -> int:
        """Blocks a future admission of ``state`` will consume."""
        return -(-self._reservation_tokens(state) // self._kv.block_size)

    def _reservation_tokens(self, state: RequestState) -> int:
        if self._reserve_full:
            return state.request.total_tokens
        return state.context_len

    # ------------------------------------------------------------------
    def submit(self, state: RequestState) -> None:
        """Accept a request whose KV cache has arrived.

        The caller (orchestration layer) is expected to have gated the
        transfer on :meth:`can_reserve`; if space ran out anyway the
        request waits unreserved and is admitted when memory frees.
        """
        state.phase = RequestPhase.WAITING_DECODE
        state.stamp("decode_enqueue", self._sim.now)
        self._trace.begin(
            state.request_id, SpanKind.DECODE_QUEUE, self._sim.now, self.name
        )
        self._waiting.append(state)
        self._kick()

    # ------------------------------------------------------------------
    def _admit(self) -> None:
        while self._waiting and len(self._active) < self.spec.max_batch_size:
            head = self._waiting[0]
            need = self._reservation_tokens(head)
            if not self._kv.can_allocate(need):
                break
            self._kv.allocate(head.request_id, need)
            self._waiting.popleft()
            head.phase = RequestPhase.DECODING
            head.stamp("decode_start", self._sim.now)
            self._trace.end(head.request_id, SpanKind.DECODE_QUEUE, self._sim.now)
            self._active.append(head)
            self._active_ids.add(head.request_id)

    def _kick(self) -> None:
        if self._stepping or not self._alive:
            return
        self._admit()
        if not self._active:
            return
        self._stepping = True
        self._run_step()

    def _microbatch_contexts(self) -> "list[int]":
        """Context lengths of one steady-state micro-batch."""
        pp = self.spec.config.pp
        size = -(-len(self._active) // pp)
        return [s.context_len for s in self._active[:size]]

    def _run_step(self) -> None:
        contexts = self._microbatch_contexts()
        times = decode_times(
            self.spec.model,
            self.spec.config,
            self._coeffs,
            contexts,
            tp_link=self.spec.tp_link,
            pp_link=self.spec.pp_link,
        )
        duration = times.request_latency * self._jitter()
        assert duration >= 0.0  # latency model + jitter are nonnegative
        self.steps_executed += 1
        self.busy_time += duration
        batch = list(self._active)
        step_start = self._sim.now
        self._sim.schedule(duration, lambda: self._finish_step(batch, step_start))

    def _finish_step(
        self, batch: "list[RequestState]", step_start: float = 0.0
    ) -> None:
        if not self._alive:
            return  # the instance died mid-step; victims re-routed
        finished: "list[RequestState]" = []
        step_tokens = 0
        for state in batch:
            if state.request_id not in self._active_ids:
                continue  # preempted mid-step
            if not self._reserve_full:
                if not self._kv.can_append(state.request_id):
                    self._preempt_youngest()
                    if state.request_id not in self._active_ids:
                        continue
                    if not self._kv.can_append(state.request_id):
                        continue  # skip this token; retried next step
                self._kv.append(state.request_id)
            state.record_token(self._sim.now)
            self.tokens_generated += 1
            step_tokens += 1
            if self._trace.enabled:
                self._trace.span(
                    state.request_id,
                    SpanKind.DECODE_STEP,
                    step_start,
                    self._sim.now,
                    self.name,
                    batch_size=len(batch),
                    token_index=state.generated - 1,
                )
            if state.is_finished:
                finished.append(state)
        if self._prof.enabled:
            self._prof.record_exec(
                self.name, "decode", step_start, self._sim.now,
                len(batch), step_tokens,
            )
        for state in finished:
            self._active.remove(state)
            self._active_ids.discard(state.request_id)
            self._kv.free(state.request_id)
            state.phase = RequestPhase.FINISHED
            self._on_done(state)
        self._admit()
        if self._active:
            self._run_step()
        else:
            self._stepping = False

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> "list[RequestState]":
        """Kill the instance; return requests needing recovery.

        Active and waiting requests lose their KV caches: each must
        re-run prefill over its full current context (prompt plus tokens
        generated so far) before decoding can resume — the fault
        *propagation* the paper warns about (§4.3): one decode failure
        creates a prefill load spike.
        """
        self._alive = False
        victims = list(self._active) + list(self._waiting)
        for state in victims:
            self._kv.free(state.request_id)
            state.recompute_len = state.context_len
        self._active.clear()
        self._active_ids.clear()
        self._waiting.clear()
        self._stepping = False
        return victims

    def _preempt_youngest(self) -> None:
        """vLLM-style recompute preemption of the most recent admission."""
        if not self._active:
            return
        victim = self._active.pop()
        self._active_ids.discard(victim.request_id)
        self._kv.free(victim.request_id)
        victim.phase = RequestPhase.WAITING_DECODE
        self._trace.instant(
            victim.request_id, SpanKind.PREEMPTED, self._sim.now, self.name
        )
        self._trace.begin(
            victim.request_id, SpanKind.DECODE_QUEUE, self._sim.now, self.name
        )
        self._waiting.appendleft(victim)
        self.preemptions += 1
