"""Decode instance: continuous batching of token generation.

A decode instance receives KV caches pulled from prefill instances and
generates the remaining tokens. Batching is the whole point (§3.2): a
single decode job is bandwidth-bound, so the instance accumulates as
large a batch as its KV memory and ``max_batch_size`` allow.

Pipeline parallelism is modeled in steady state: the active set splits
into ``pp`` micro-batches flowing through the stages, so every active
request produces one token per ``request_latency(micro-batch)`` —
pipeline depth multiplies KV capacity (hence throughput) while TPOT is
set by the micro-batch traversal time.

Admission reserves the *full* final context (prompt + all output tokens)
so a request admitted never runs out of KV mid-flight; this is the
conservative no-preemption policy a disaggregated decode instance can
afford because the prefill side buffers overflow (§4.3 pull policy).

**Fast-forward kernel (DESIGN §4h).** When per-step observability is off
(tracer and profiler are the NULL objects, no metrics registry attached)
and ``fast_kernel`` is enabled, the instance *macro-steps*: instead of
one heap event per decode step it plans the longest run of steps whose
batch membership provably cannot change — bounded by the shortest
remaining request, by KV-growth safety in optimistic-admission mode, and
by the next pending simulation event — and schedules a single run-end
event. Per-step boundaries, jitter draws, token times, KV growth, and
counters are computed with the same floating-point operations in the
same order as the step-by-step path, so results are bit-identical.
Mid-run reads (the pull policy's :meth:`can_reserve`) first materialize
every boundary strictly before the current virtual time, and a
submission landing mid-run truncates the run at the next step boundary
(where the per-step path would admit it), refunding unused jitter draws
so the RNG stream stays aligned.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Callable, Deque

from .events import Simulation
from .instance import InstanceSpec
from .kvcache import KVBlockManager
from .metrics import MetricsRegistry
from .profiler import NULL_PROFILER, Profiler
from .request import RequestPhase, RequestState
from .tracing import NULL_TRACER, SpanKind, Tracer
from ..latency.memo import DecodeStepTimer
from ..latency.parallel import decode_times
from ..scheduling.batch import BatchPolicy, make_batch_policy
from ..scheduling.config import SchedulingConfig
from ..scheduling.queue import QueuePolicy, make_queue_policy

__all__ = ["DecodeInstance"]


class DecodeInstance:
    """Simulated decode-only model replica.

    Args:
        sim: Shared simulation loop.
        spec: Instance resources and parallelism.
        on_request_done: Callback fired when a request's last token is
            generated.
        reserve_full_context: Reserve KV for the final context length at
            admission (True, default) or only the current context with
            growth on demand (False — vLLM-style optimistic admission;
            an append failure then preempts the youngest request).
        name: Identifier for reporting.
        tracer: Optional lifecycle tracer receiving queue/step spans.
        profiler: Optional critical-path profiler receiving one exec
            event per decoding step.
        fast_kernel: Allow macro-stepped runs when per-step observability
            is off. Results are bit-identical either way; disabling
            forces the one-event-per-step reference path.
        scheduling: Policy configuration (:mod:`repro.scheduling`); the
            queue policy orders the waiting deque before admission and
            the batch policy gates the ``max_batch_size`` cap. Defaults
            reproduce FCFS + plain capping exactly.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        on_request_done: Callable[[RequestState], None],
        reserve_full_context: bool = True,
        name: str = "decode-0",
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        self._sim = sim
        self.spec = spec
        self.name = name
        self._on_done = on_request_done
        self._reserve_full = reserve_full_context
        cfg = scheduling if scheduling is not None else SchedulingConfig()
        self._qpolicy: QueuePolicy = make_queue_policy(
            cfg.queue_policy,
            sjf_aging=cfg.sjf_aging,
            edf_default_deadline=cfg.edf_default_deadline,
            enqueue_stamp="decode_enqueue",
        )
        self._bpolicy: BatchPolicy = make_batch_policy(cfg.batch_policy)
        self._waiting: "Deque[RequestState]" = deque()
        self._active: "list[RequestState]" = []
        self._active_ids: "set[int]" = set()
        self._kv: KVBlockManager = spec.make_kv_manager()
        self._coeffs = spec.latency_coeffs
        self._jitter = spec.make_jitter(name)
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._prof = profiler if profiler is not None else NULL_PROFILER
        self._alive = True
        self._stepping = False
        # Fast-forward kernel: active only when nothing observes
        # individual steps (tracing/profiling emit per-step artifacts;
        # instrument() samples live state through gauges).
        self._fast = (
            bool(fast_kernel)
            and not self._trace.enabled
            and not self._prof.enabled
        )
        self._timer = DecodeStepTimer(
            spec.model, spec.config, self._coeffs, spec.tp_link, spec.pp_link
        )
        # With jitter_sigma == 0 the noise source is the stateless
        # constant 1.0 (x * 1.0 is bitwise x), so macro-run planning may
        # skip the draw calls without perturbing any stream position.
        self._unit_jitter = spec.jitter_sigma == 0.0
        # State of the in-flight macro run (empty when idle or slow).
        self._run_batch: "list[RequestState]" = []
        self._run_boundaries: "list[float]" = []
        self._run_durations: "list[float]" = []
        self._run_jitters: "list[float]" = []
        self._run_cursor = 0
        self._run_generation = 0
        # Jitter draws refunded by a truncated run. The per-instance
        # stream is positional (value depends only on draw index), so a
        # draw planned for a dropped step is reused verbatim by whatever
        # step executes at that position instead.
        self._jitter_queue: "Deque[float]" = deque()
        # Incrementally maintained total context length of the active
        # set — the O(1) dispatch/telemetry signal (no per-step lists).
        self._active_context_tokens = 0
        # Instrumentation.
        self.steps_executed = 0
        self.busy_time = 0.0
        self.preemptions = 0
        self.tokens_generated = 0

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Active plus waiting requests — the dispatch load signal."""
        return len(self._active) + len(self._waiting)

    @property
    def active_batch_size(self) -> int:
        return len(self._active)

    @property
    def active_tokens(self) -> int:
        """Total context tokens of the active set, O(1) mid-run.

        During a macro run the per-step state is not materialized; the
        count of elapsed (but unmaterialized) step boundaries times the
        batch size bridges the gap without touching per-request state.
        """
        extra = 0
        if self._run_cursor < len(self._run_boundaries):
            done = bisect_left(
                self._run_boundaries, self._sim.now, self._run_cursor
            )
            extra = (done - self._run_cursor) * len(self._run_batch)
        return self._active_context_tokens + extra

    def kv_capacity_tokens(self) -> int:
        return self._kv.total_blocks * self._kv.block_size

    def kv_free_tokens(self) -> int:
        return self._kv.free_blocks * self._kv.block_size

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register this instance's gauges/counters (callback-backed).

        Gauges sample live batch/KV/counter state, which a macro-stepped
        run advances only in bulk — so instrumenting an instance routes
        all subsequent runs through the exact per-step path.
        """
        self._fast = False
        labels = {"phase": "decode", "instance": self.name}
        registry.gauge(
            "repro_queue_depth", "Requests waiting for a batch slot",
            labels=labels, fn=lambda: len(self._waiting),
        )
        registry.gauge(
            "repro_batch_size", "Active continuous-batching set size",
            labels=labels, fn=lambda: len(self._active),
        )
        registry.gauge(
            "repro_active_context_tokens", "Context tokens in the active set",
            labels=labels, fn=lambda: self.active_tokens,
        )
        registry.gauge(
            "repro_kv_blocks_used", "KV-cache blocks allocated",
            labels=labels, fn=lambda: self._kv.used_blocks,
        )
        registry.gauge(
            "repro_kv_blocks_free", "KV-cache blocks available",
            labels=labels, fn=lambda: self._kv.free_blocks,
        )
        registry.counter(
            "repro_batches_total", "Batches/steps executed",
            labels=labels, fn=lambda: self.steps_executed,
        )
        registry.counter(
            "repro_tokens_total", "Tokens processed by the phase",
            labels=labels, fn=lambda: self.tokens_generated,
        )
        registry.counter(
            "repro_busy_seconds_total", "Virtual seconds spent executing",
            labels=labels, fn=lambda: self.busy_time,
        )
        registry.counter(
            "repro_preemptions_total", "Recompute preemptions",
            labels=labels, fn=lambda: self.preemptions,
        )
        registry.gauge(
            "repro_utilization", "Busy fraction of elapsed virtual time",
            labels=labels,
            fn=lambda: self.busy_time / self._sim.now if self._sim.now > 0 else 0.0,
        )

    def can_reserve(self, state: RequestState, extra_blocks: int = 0) -> bool:
        """Whether admitting ``state`` now would find KV space.

        Used by the orchestration layer's *pull* policy: the KV transfer
        is initiated only when this returns True. ``extra_blocks``
        accounts for reservations already promised to in-flight transfers.
        """
        self._sync_to_now()
        need = self._reservation_tokens(state)
        need_blocks = -(-need // self._kv.block_size)
        return need_blocks + extra_blocks <= self._kv.free_blocks

    def reservation_blocks(self, state: RequestState) -> int:
        """Blocks a future admission of ``state`` will consume."""
        self._sync_to_now()
        return -(-self._reservation_tokens(state) // self._kv.block_size)

    def _reservation_tokens(self, state: RequestState) -> int:
        if self._reserve_full:
            return state.request.total_tokens
        return state.context_len

    # ------------------------------------------------------------------
    def submit(self, state: RequestState) -> None:
        """Accept a request whose KV cache has arrived.

        The caller (orchestration layer) is expected to have gated the
        transfer on :meth:`can_reserve`; if space ran out anyway the
        request waits unreserved and is admitted when memory frees.
        """
        state.phase = RequestPhase.WAITING_DECODE
        state.stamp("decode_enqueue", self._sim.now)
        self._trace.begin(
            state.request_id, SpanKind.DECODE_QUEUE, self._sim.now, self.name
        )
        self._waiting.append(state)
        self._truncate_run()
        self._kick()

    def _draw_jitter(self) -> float:
        if self._jitter_queue:
            return self._jitter_queue.popleft()
        return self._jitter()

    def _truncate_run(self) -> None:
        """Shorten an in-flight macro run to the next step boundary.

        A submission landing mid-run is admitted, in the per-step path,
        when the step in flight completes. Keep boundaries up to the
        first one strictly after now, refund the dropped steps' jitter
        draws, and re-aim the run-end event (the stale one is voided by
        the generation bump).
        """
        boundaries = self._run_boundaries
        if self._run_cursor >= len(boundaries):
            return
        keep = bisect_right(boundaries, self._sim.now) + 1
        if keep >= len(boundaries):
            return
        self._jitter_queue.extendleft(reversed(self._run_jitters[keep:]))
        del boundaries[keep:]
        del self._run_durations[keep:]
        del self._run_jitters[keep:]
        self._run_generation += 1
        generation = self._run_generation
        last = boundaries[-1]
        assert last >= self._sim.now
        self._sim.schedule_at(last, lambda: self._finish_fast_run(generation))

    # ------------------------------------------------------------------
    def _admit(self) -> None:
        self._waiting = self._qpolicy.reorder(self._waiting, self._sim.now)
        while self._waiting and self._bpolicy.admit_decode(
            len(self._active), self.spec.max_batch_size
        ):
            head = self._waiting[0]
            need = self._reservation_tokens(head)
            if not self._kv.can_allocate(need):
                break
            self._kv.allocate(head.request_id, need)
            self._waiting.popleft()
            head.phase = RequestPhase.DECODING
            head.stamp("decode_start", self._sim.now)
            self._trace.end(head.request_id, SpanKind.DECODE_QUEUE, self._sim.now)
            self._active.append(head)
            self._active_ids.add(head.request_id)
            self._active_context_tokens += head.context_len

    def _kick(self) -> None:
        if self._stepping or not self._alive:
            return
        self._stepping = True
        self._continue()

    def _continue(self) -> None:
        """Admit and start the next step or macro run (or go idle)."""
        self._admit()
        if not self._active:
            self._stepping = False
            return
        if self._fast:
            self._run_fast()
        else:
            self._run_step()

    def _microbatch_contexts(self) -> "list[int]":
        """Context lengths of one steady-state micro-batch."""
        pp = self.spec.config.pp
        size = -(-len(self._active) // pp)
        return [s.context_len for s in self._active[:size]]

    # ------------------------------------------------------------------
    # Reference per-step path
    # ------------------------------------------------------------------
    def _run_step(self) -> None:
        contexts = self._microbatch_contexts()
        times = decode_times(
            self.spec.model,
            self.spec.config,
            self._coeffs,
            contexts,
            tp_link=self.spec.tp_link,
            pp_link=self.spec.pp_link,
        )
        duration = times.request_latency * self._draw_jitter()
        assert duration >= 0.0  # latency model + jitter are nonnegative
        self.steps_executed += 1
        self.busy_time += duration
        batch = list(self._active)
        step_start = self._sim.now
        self._sim.schedule(duration, lambda: self._finish_step(batch, step_start))

    def _finish_step(
        self, batch: "list[RequestState]", step_start: float = 0.0
    ) -> None:
        if not self._alive:
            return  # the instance died mid-step; victims re-routed
        finished: "list[RequestState]" = []
        step_tokens = 0
        for state in batch:
            if state.request_id not in self._active_ids:
                continue  # preempted mid-step
            if not self._reserve_full:
                if not self._kv.can_append(state.request_id):
                    self._preempt_youngest()
                    if state.request_id not in self._active_ids:
                        continue
                    if not self._kv.can_append(state.request_id):
                        continue  # skip this token; retried next step
                self._kv.append(state.request_id)
            state.record_token(self._sim.now)
            self.tokens_generated += 1
            self._active_context_tokens += 1
            step_tokens += 1
            if self._trace.enabled:
                self._trace.span(
                    state.request_id,
                    SpanKind.DECODE_STEP,
                    step_start,
                    self._sim.now,
                    self.name,
                    batch_size=len(batch),
                    token_index=state.generated - 1,
                )
            if state.is_finished:
                finished.append(state)
        if self._prof.enabled:
            self._prof.record_exec(
                self.name, "decode", step_start, self._sim.now,
                len(batch), step_tokens,
            )
        for state in finished:
            self._active.remove(state)
            self._active_ids.discard(state.request_id)
            self._active_context_tokens -= state.context_len
            self._kv.free(state.request_id)
            state.phase = RequestPhase.FINISHED
            self._on_done(state)
        self._continue()

    # ------------------------------------------------------------------
    # Fast-forward kernel (macro-stepped runs)
    # ------------------------------------------------------------------
    def _kv_safe_steps(self, limit: int) -> int:
        """Longest run with guaranteed KV growth (optimistic admission).

        Largest ``j <= limit`` such that growing every active request by
        ``j`` tokens fits the free block budget; through step ``j`` the
        per-step path performs the exact same appends (cumulative need is
        monotone and no blocks free mid-run), so it preempts nobody.
        """
        block_size = self._kv.block_size
        free = self._kv.free_blocks
        held = [self._kv.tokens_of(s.request_id) for s in self._active]

        def extra_blocks(growth: int) -> int:
            total = 0
            for tokens in held:
                total += (
                    -(-(tokens + growth) // block_size) - (-(-tokens // block_size))
                )
            return total

        if extra_blocks(limit) <= free:
            return limit
        lo, hi = 0, limit  # extra_blocks(0) == 0 <= free
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if extra_blocks(mid) <= free:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _run_fast(self) -> None:
        """Plan and schedule one macro run of decode steps.

        The run length is bounded by (a) the shortest remaining request —
        so nobody finishes mid-run, (b) KV-growth safety in optimistic
        mode — so nobody is preempted mid-run, and (c) the next pending
        event: a step is included only if it *starts* strictly before
        that event fires, because anything firing earlier could enqueue
        work the per-step path would admit at that step's boundary. The
        first step may overshoot the horizon — it is in flight in the
        per-step path too, and mid-flight events only enqueue.
        """
        active = self._active
        max_steps = active[0].remaining_tokens
        for state in active:
            remaining = state.remaining_tokens
            if remaining < max_steps:
                max_steps = remaining
        if not self._reserve_full:
            max_steps = self._kv_safe_steps(max_steps)
            if max_steps < 1:
                # The very next step preempts: run it through the exact
                # per-step path, which performs the real preemption.
                self._run_step()
                return
        pp = self.spec.config.pp
        mb_size = -(-len(active) // pp)
        mb_context = 0
        for state in active[:mb_size]:
            mb_context += state.context_len
        latency = self._timer.step_latency_fn(mb_size)
        peek = self._sim.peek_time()
        boundaries: "list[float]" = []
        durations: "list[float]" = []
        jitters: "list[float]" = []
        t = self._sim.now
        steps = 0
        if self._unit_jitter:
            # base * 1.0 is bitwise base; no stream position to advance.
            while steps < max_steps:
                if steps > 0 and peek is not None and t >= peek:
                    break
                duration = latency(mb_context)
                assert duration >= 0.0  # latency model is nonnegative
                t = t + duration
                boundaries.append(t)
                durations.append(duration)
                jitters.append(1.0)
                mb_context += mb_size
                steps += 1
        else:
            while steps < max_steps:
                if steps > 0 and peek is not None and t >= peek:
                    break
                noise = self._draw_jitter()
                duration = latency(mb_context) * noise
                assert duration >= 0.0  # latency model + jitter nonnegative
                t = t + duration
                boundaries.append(t)
                durations.append(duration)
                jitters.append(noise)
                mb_context += mb_size
                steps += 1
        self._run_batch = list(active)
        self._run_boundaries = boundaries
        self._run_durations = durations
        self._run_jitters = jitters
        self._run_cursor = 0
        generation = self._run_generation
        last = boundaries[-1]
        assert last >= self._sim.now
        self._sim.schedule_at(last, lambda: self._finish_fast_run(generation))

    def _materialize(self, upto: int) -> None:
        """Advance run steps ``[cursor, upto)`` in bulk.

        Counters accumulate per step in boundary order (preserving the
        reference path's float-addition sequence); token times and KV
        growth advance with one bulk operation per request, which is
        value-identical to the per-step equivalents.
        """
        cursor = self._run_cursor
        if upto <= cursor:
            return
        count = upto - cursor
        durations = self._run_durations
        for index in range(cursor, upto):
            self.steps_executed += 1
            self.busy_time += durations[index]
        step_times = self._run_boundaries[cursor:upto]
        batch = self._run_batch
        grow_kv = not self._reserve_full
        for state in batch:
            if grow_kv:
                self._kv.append(state.request_id, count)
            state.record_tokens(step_times)
        self.tokens_generated += count * len(batch)
        self._active_context_tokens += count * len(batch)
        self._run_cursor = upto

    def _sync_to_now(self) -> None:
        """Materialize every boundary strictly before the current time.

        Boundaries exactly at ``now`` belong to the run-end event (which
        fires after any event already pending when the run was planned —
        matching the per-step event order at equal times).
        """
        if self._run_cursor >= len(self._run_boundaries):
            return
        done = bisect_left(self._run_boundaries, self._sim.now, self._run_cursor)
        self._materialize(done)

    def _finish_fast_run(self, generation: int) -> None:
        if not self._alive or generation != self._run_generation:
            return  # the instance failed mid-run; victims re-routed
        self._materialize(len(self._run_boundaries))
        finished: "list[RequestState]" = []
        for state in self._run_batch:
            if state.is_finished:
                finished.append(state)
        self._run_batch = []
        self._run_boundaries = []
        self._run_durations = []
        self._run_jitters = []
        self._run_cursor = 0
        for state in finished:
            self._active.remove(state)
            self._active_ids.discard(state.request_id)
            self._active_context_tokens -= state.context_len
            self._kv.free(state.request_id)
            state.phase = RequestPhase.FINISHED
            self._on_done(state)
        self._continue()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> "list[RequestState]":
        """Kill the instance; return requests needing recovery.

        Active and waiting requests lose their KV caches: each must
        re-run prefill over its full current context (prompt plus tokens
        generated so far) before decoding can resume — the fault
        *propagation* the paper warns about (§4.3): one decode failure
        creates a prefill load spike.
        """
        if self._run_cursor < len(self._run_boundaries):
            # Materialize completed steps, then charge the in-flight one:
            # the per-step path charges counters at step start.
            self._sync_to_now()
            if self._run_cursor < len(self._run_boundaries):
                self.steps_executed += 1
                self.busy_time += self._run_durations[self._run_cursor]
        self._run_generation += 1
        self._run_batch = []
        self._run_boundaries = []
        self._run_durations = []
        self._run_jitters = []
        self._run_cursor = 0
        self._alive = False
        victims = list(self._active) + list(self._waiting)
        for state in victims:
            self._kv.free(state.request_id)
            state.recompute_len = state.context_len
        self._active.clear()
        self._active_ids.clear()
        self._waiting.clear()
        self._active_context_tokens = 0
        self._stepping = False
        self._bpolicy.reset()
        # The pool dies with the instance: release any remaining
        # allocations so quiesce-time leak audits stay clean.
        for request_id in self._kv.holders():
            self._kv.free(request_id)
        return victims

    def _preempt_youngest(self) -> None:
        """vLLM-style recompute preemption of the most recent admission."""
        if not self._active:
            return
        victim = self._active.pop()
        self._active_ids.discard(victim.request_id)
        self._active_context_tokens -= victim.context_len
        self._kv.free(victim.request_id)
        victim.phase = RequestPhase.WAITING_DECODE
        self._trace.instant(
            victim.request_id, SpanKind.PREEMPTED, self._sim.now, self.name
        )
        self._trace.begin(
            victim.request_id, SpanKind.DECODE_QUEUE, self._sim.now, self.name
        )
        self._waiting.appendleft(victim)
        self.preemptions += 1
