"""KV-cache transfer engine with per-link serialization.

Models the orchestration layer's KV-cache transmission (§5): each
physical link carries one transfer at a time (FIFO), so concurrent
migrations queue and burstiness shows up as transfer latency. The
disaggregated engine uses the *pull* policy of §4.3 — the decode side
initiates transfers only when it has memory — which this engine supports
by simply being invoked at pull time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..quantities import Bytes, Seconds
from .events import Simulation
from .metrics import Histogram, MetricsRegistry, exponential_buckets
from .profiler import NULL_PROFILER, Profiler
from ..hardware.network import NetworkLink

__all__ = ["TransferEngine", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """Completed transfer, for the Figure 10(b) CDF."""

    request_id: int
    num_bytes: Bytes
    start_time: Seconds
    end_time: Seconds

    @property
    def duration(self) -> Seconds:
        return self.end_time - self.start_time


class _LinkState:
    """FIFO occupancy of one physical link."""

    def __init__(self) -> None:
        self.busy_until = 0.0


class TransferEngine:
    """Schedules KV-cache migrations over shared links.

    Each distinct :class:`NetworkLink` object is an independent FIFO
    resource; transfers over the same link serialize, transfers over
    different links proceed concurrently.
    """

    def __init__(self, sim: Simulation, profiler: "Profiler | None" = None) -> None:
        self._sim = sim
        self._prof = profiler if profiler is not None else NULL_PROFILER
        self._links: "dict[int, _LinkState]" = {}
        self.records: "list[TransferRecord]" = []
        self.total_bytes = 0.0
        # Instrumentation.
        self.transfers_submitted = 0
        #: Cumulative seconds transfers spent queued behind a busy link —
        #: the burstiness signal of §4.3 (push mode piles up here).
        self.stall_time = 0.0
        self._duration_hist: "Histogram | None" = None

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register transfer counters/histograms (callback-backed)."""
        registry.counter(
            "repro_kv_transfer_bytes_total", "KV-cache bytes migrated",
            fn=lambda: self.total_bytes,
        )
        registry.counter(
            "repro_kv_transfers_total", "KV-cache migrations submitted",
            fn=lambda: self.transfers_submitted,
        )
        registry.counter(
            "repro_kv_transfers_completed_total", "KV-cache migrations finished",
            fn=lambda: len(self.records),
        )
        registry.counter(
            "repro_kv_transfer_stall_seconds_total",
            "Seconds transfers waited for a busy link",
            fn=lambda: self.stall_time,
        )
        self._duration_hist = registry.histogram(
            "repro_kv_transfer_seconds",
            "Wire time of each migration (excludes link queuing)",
            buckets=exponential_buckets(1e-4, 2.0, 16),
        )

    def submit(
        self,
        request_id: int,
        num_bytes: Bytes,
        link: NetworkLink,
        on_done: Callable[[], None],
        num_parallel_channels: int = 1,
    ) -> None:
        """Enqueue a transfer; ``on_done`` fires at completion time.

        Args:
            request_id: For record-keeping.
            num_bytes: Total bytes to move.
            link: The link crossed (keyed by identity — share the object
                to share the resource).
            on_done: Completion callback.
            num_parallel_channels: Independent channels moving disjoint
                shards concurrently (pp stage pairs under Algorithm 2's
                stage-colocated placement), dividing serialization time.
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        if num_parallel_channels <= 0:
            raise ValueError("num_parallel_channels must be positive")
        state = self._links.setdefault(id(link), _LinkState())
        start = max(self._sim.now, state.busy_until)
        duration = link.time_for(num_bytes / num_parallel_channels)
        assert duration >= 0.0  # link model is nonnegative
        end = start + duration
        state.busy_until = end
        self.total_bytes += num_bytes
        self.transfers_submitted += 1
        self.stall_time += start - self._sim.now
        if self._prof.enabled:
            self._prof.record_transfer(request_id, self._sim.now, start, end)
        if self._duration_hist is not None:
            self._duration_hist.observe(duration)

        def _complete() -> None:
            self.records.append(
                TransferRecord(
                    request_id=request_id,
                    num_bytes=num_bytes,
                    start_time=start,
                    end_time=end,
                )
            )
            on_done()

        self._sim.schedule_at(end, _complete)

    def link_busy_until(self, link: NetworkLink) -> Seconds:
        """When the link frees up (now or earlier if idle)."""
        state = self._links.get(id(link))
        return state.busy_until if state else 0.0
