"""Runtime request state and the per-request latency record.

§6.3 divides a request's lifecycle into five stages — prefill queuing,
prefill execution, transmission, decoding queuing, decoding execution —
and Figure 10 reports their proportions. :class:`RequestState` stamps
every transition so the analysis layer can derive TTFT, TPOT, and the
full breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from ..workload.trace import Request

__all__ = ["RequestPhase", "RequestState", "RequestRecord"]


class RequestPhase(Enum):
    """Lifecycle phases of a request inside a serving system."""

    WAITING_PREFILL = "waiting_prefill"
    PREFILLING = "prefilling"
    TRANSFERRING = "transferring"
    WAITING_DECODE = "waiting_decode"
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass
class RequestState:
    """Mutable per-request simulation state.

    Attributes:
        request: The immutable workload description.
        phase: Current lifecycle phase.
        generated: Output tokens produced so far (prefill's first token
            counts as 1).
        timestamps: Transition times, keyed by stage-boundary name.
        token_times: Completion time of each output token (first token is
            the prefill completion).
    """

    request: Request
    phase: RequestPhase = RequestPhase.WAITING_PREFILL
    generated: int = 0
    timestamps: "dict[str, float]" = field(default_factory=dict)
    token_times: "list[float]" = field(default_factory=list)
    #: Set after a failure loses this request's KV cache: the next
    #: prefill recomputes this many tokens (prompt + generated so far)
    #: instead of just the prompt.
    recompute_len: "int | None" = None
    #: Absolute completion deadline used by the ``edf`` queue policy;
    #: ``None`` means the policy assumes arrival + its default window.
    deadline: "float | None" = None

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def context_len(self) -> int:
        """Current attention context: prompt plus generated tokens."""
        return self.request.input_len + self.generated

    @property
    def remaining_tokens(self) -> int:
        """Output tokens still to generate."""
        return self.request.output_len - self.generated

    @property
    def prefill_len(self) -> int:
        """Tokens the next prefill pass must process (recompute-aware)."""
        return self.recompute_len if self.recompute_len is not None else self.request.input_len

    def stamp(self, name: str, time: float) -> None:
        """Record a lifecycle transition time (first write wins)."""
        self.timestamps.setdefault(name, time)

    def record_token(self, time: float) -> None:
        """Record completion of one output token."""
        if self.generated >= self.request.output_len:
            raise RuntimeError(
                f"request {self.request_id} already generated all "
                f"{self.request.output_len} tokens"
            )
        self.generated += 1
        self.token_times.append(time)

    def record_tokens(self, times: "list[float]") -> None:
        """Record completion of several output tokens at once.

        Equivalent to calling :meth:`record_token` for each element of
        ``times`` in order — the fast-forward kernel's bulk primitive.
        """
        count = len(times)
        if self.generated + count > self.request.output_len:
            raise RuntimeError(
                f"request {self.request_id} cannot generate {count} more "
                f"tokens past {self.generated}/{self.request.output_len}"
            )
        self.generated += count
        self.token_times.extend(times)

    @property
    def is_finished(self) -> bool:
        return self.generated >= self.request.output_len

    def to_record(self) -> "RequestRecord":
        """Freeze the state into an immutable analysis record.

        Raises:
            RuntimeError: if the request has not finished.
        """
        if not self.is_finished:
            raise RuntimeError(f"request {self.request_id} not finished")
        arrival = self.request.arrival_time
        ttft = self.token_times[0] - arrival
        if self.request.output_len > 1:
            tpot = (self.token_times[-1] - self.token_times[0]) / (
                self.request.output_len - 1
            )
        else:
            tpot = 0.0
        ts = self.timestamps
        prefill_start = ts.get("prefill_start", arrival)
        prefill_end = ts.get("prefill_end", prefill_start)
        transfer_end = ts.get("transfer_end", prefill_end)
        decode_start = ts.get("decode_start", transfer_end)
        finish = self.token_times[-1]
        return RequestRecord(
            request_id=self.request_id,
            arrival_time=arrival,
            input_len=self.request.input_len,
            output_len=self.request.output_len,
            ttft=ttft,
            tpot=tpot,
            finish_time=finish,
            prefill_queue_time=max(0.0, prefill_start - arrival),
            prefill_exec_time=max(0.0, prefill_end - prefill_start),
            transfer_time=max(0.0, transfer_end - prefill_end),
            decode_queue_time=max(0.0, decode_start - transfer_end),
            decode_exec_time=max(0.0, finish - decode_start),
        )


@dataclass(frozen=True)
class RequestRecord:
    """Immutable per-request latency record (the analysis-layer currency).

    ``prefill_queue_time + prefill_exec_time + transfer_time +
    decode_queue_time + decode_exec_time`` equals the end-to-end latency;
    these are the five stages of Figure 10's breakdown.
    """

    request_id: int
    arrival_time: float
    input_len: int
    output_len: int
    ttft: float
    tpot: float
    finish_time: float
    prefill_queue_time: float
    prefill_exec_time: float
    transfer_time: float
    decode_queue_time: float
    decode_exec_time: float

    def __post_init__(self) -> None:
        if self.ttft < 0 or self.tpot < 0:
            raise ValueError(f"negative latency in record {self.request_id}")
        for name in (
            "prefill_queue_time",
            "prefill_exec_time",
            "transfer_time",
            "decode_queue_time",
            "decode_exec_time",
        ):
            if getattr(self, name) < 0 or math.isnan(getattr(self, name)):
                raise ValueError(f"invalid {name} in record {self.request_id}")

    @property
    def end_to_end_latency(self) -> float:
        """Total sojourn from arrival to last token."""
        return self.finish_time - self.arrival_time

    def meets(self, ttft_slo: float, tpot_slo: float) -> bool:
        """Whether both SLOs are attained."""
        return self.ttft <= ttft_slo and self.tpot <= tpot_slo
