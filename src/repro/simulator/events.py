"""Discrete-event simulation core: virtual clock and event queue.

The placement search (§4.1) relies on a simulator because "gauging the
SLO via real-testbed profiling is time-prohibitive". This is that
simulator's engine: a min-heap of timestamped callbacks and a virtual
clock. Events scheduled at equal times fire in scheduling order (a
monotonic tiebreaker keeps the heap stable and deterministic).

Every placement-search trial funnels through :meth:`Simulation.run`,
so the loop is deliberately lean: ``__slots__`` (no per-instance dict),
a plain integer tiebreaker, and heap operations bound to locals inside
the loop. :meth:`Simulation.stop` lets an observer (e.g. the goodput
search's early-abort monitor) halt the run between events without
unwinding the stack through user callbacks.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["Simulation"]


class Simulation:
    """A deterministic discrete-event simulation loop.

    Usage::

        sim = Simulation()
        sim.schedule(1.5, lambda: ...)   # fire 1.5 s from now
        sim.run()                        # drain all events
    """

    __slots__ = ("_now", "_heap", "_counter", "_events_processed", "_stopped")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: "list[tuple[float, int, Callable[[], None]]]" = []
        self._counter = 0
        self._events_processed = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (instrumentation)."""
        return self._events_processed

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` was called (the loop will not resume)."""
        return self._stopped

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Raises:
            ValueError: on negative delay — events cannot fire in the past.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._counter += 1
        heapq.heappush(self._heap, (self._now + delay, self._counter, callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, callback))

    def stop(self) -> None:
        """Halt the run loop after the currently executing event.

        Pending events stay queued but will not execute; subsequent
        :meth:`run` calls return immediately. Simulations are single-use
        in this codebase, so there is deliberately no way to un-stop.
        """
        self._stopped = True

    def run(self, until: "float | None" = None, max_events: "int | None" = None) -> None:
        """Execute events in time order.

        Args:
            until: Stop (without executing) events after this virtual time;
                the clock is advanced to ``until``. ``None`` drains the queue.
            max_events: Safety valve against runaway simulations.
        """
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        while heap and not self._stopped:
            time = heap[0][0]
            if until is not None and time > until:
                self._now = until
                return
            _, _seq, callback = heappop(heap)
            self._now = time
            callback()
            self._events_processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                return
        if until is not None and until > self._now:
            self._now = until

    def peek_time(self) -> "float | None":
        """Timestamp of the next pending event, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)
