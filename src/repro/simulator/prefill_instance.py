"""Prefill instance: FCFS batching with pipeline conveyor and batch shaping.

A prefill instance (§2.3) receives dispatched requests, runs only their
prefill computation, emits the first output token, and parks the KV
cache in its own GPU memory until the decode side *pulls* it (§4.3).

Scheduling follows §4.3:

* **FCFS** admission (default). The paper notes FCFS suffers a *convoy
  effect* — long prompts block short ones — and points to preemptive
  scheduling [41] as future work; the ``"sjf"`` queue policy implements
  the non-preemptive variant (shortest prompt first, with aging to
  prevent starvation) as that extension.
* **Batch shaping**: requests are batched until the total prompt length
  reaches the profiled saturation threshold ``L_m``; longer requests run
  alone. This both preserves GPU efficiency (§3.1) and evens out stage
  times to reduce pipeline bubbles (§3.3).
* **Pipeline conveyor**: with ``pp`` stages, a new batch may enter every
  ``stage_time`` seconds; a batch behind a slower one inherits the slower
  cadence — the "bubble" effect of non-uniform prompt lengths.
"""

from __future__ import annotations

from typing import Callable, Deque
from collections import deque

from .events import Simulation
from .instance import InstanceSpec
from .kvcache import KVBlockManager
from .metrics import MetricsRegistry
from .profiler import NULL_PROFILER, Profiler
from .request import RequestPhase, RequestState
from .tracing import NULL_TRACER, SpanKind, Tracer
from ..latency.memo import PrefillBatchTimer
from ..latency.parallel import prefill_times
from ..latency.prefill import saturation_length

__all__ = ["PrefillInstance"]


class PrefillInstance:
    """Simulated prefill-only model replica.

    Args:
        sim: The shared simulation loop.
        spec: Instance resources and parallelism.
        on_prefill_done: Callback invoked (with the request state) when a
            request's first token is produced; the orchestration layer
            then arranges the KV pull.
        batch_token_limit: Override for the batch-shaping threshold
            ``L_m`` (defaults to the profiled saturation length).
        queue_policy: ``"fcfs"`` (paper default) or ``"sjf"``
            (shortest-prompt-first with aging — the convoy-effect
            mitigation the paper defers to future work).
        sjf_aging: Seconds of queue wait equivalent to one prompt token
            when ranking under ``"sjf"``; higher values age waiting
            requests toward the front faster, bounding starvation.
        name: Identifier for reporting.
        tracer: Optional lifecycle tracer receiving queue/exec spans.
        profiler: Optional critical-path profiler receiving one exec
            event per executed batch.
        fast_kernel: Evaluate batch latency through the memoized
            :class:`PrefillBatchTimer` (bit-identical to the reference
            path, validation hoisted out of the scheduling loop).
    """

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        on_prefill_done: Callable[[RequestState], None],
        batch_token_limit: "int | None" = None,
        queue_policy: str = "fcfs",
        sjf_aging: float = 2000.0,
        name: str = "prefill-0",
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
    ) -> None:
        if queue_policy not in ("fcfs", "sjf"):
            raise ValueError(
                f"unknown queue_policy {queue_policy!r}; expected 'fcfs' or 'sjf'"
            )
        if sjf_aging < 0:
            raise ValueError(f"sjf_aging must be >= 0, got {sjf_aging}")
        self._sim = sim
        self.spec = spec
        self.name = name
        self._on_done = on_prefill_done
        self._policy = queue_policy
        self._aging = sjf_aging
        self._queue: "Deque[RequestState]" = deque()
        self._kv: KVBlockManager = spec.make_kv_manager()
        self._coeffs = spec.latency_coeffs
        self._limit = (
            batch_token_limit
            if batch_token_limit is not None
            else saturation_length(spec.model, self._coeffs, tp=spec.config.tp)
        )
        self._jitter = spec.make_jitter(name)
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._prof = profiler if profiler is not None else NULL_PROFILER
        # Memoized batch latency needs no observability gate: it defers
        # no state, so spans/profiler events are unchanged either way.
        self._fast = bool(fast_kernel)
        self._timer = PrefillBatchTimer(
            spec.model, spec.config, self._coeffs, spec.tp_link, spec.pp_link
        )
        self._alive = True
        self._in_flight_states: "dict[int, RequestState]" = {}
        # Pipeline conveyor state.
        self._next_admit_time = 0.0
        self._prev_stage_time = 0.0
        self._in_flight = 0
        self._scheduler_armed = False
        # Instrumentation.
        self.batches_executed = 0
        self.busy_time = 0.0
        self.tokens_prefilled = 0

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        """Requests waiting or in flight — the dispatch load signal."""
        return len(self._queue) + self._in_flight

    @property
    def batch_token_limit(self) -> int:
        return self._limit

    def kv_tokens_held(self) -> int:
        """KV tokens parked on this instance awaiting pull."""
        return self._kv.used_blocks * self._kv.block_size

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register this instance's gauges/counters (callback-backed).

        Idempotent and zero hot-path cost: every metric reads existing
        instrumentation attributes or live structures at collection time.
        """
        labels = {"phase": "prefill", "instance": self.name}
        registry.gauge(
            "repro_queue_depth", "Requests waiting for a batch slot",
            labels=labels, fn=lambda: len(self._queue),
        )
        registry.gauge(
            "repro_batch_inflight", "Batches in the pipeline conveyor",
            labels=labels, fn=lambda: self._in_flight,
        )
        registry.gauge(
            "repro_kv_blocks_used", "KV-cache blocks allocated",
            labels=labels, fn=lambda: self._kv.used_blocks,
        )
        registry.gauge(
            "repro_kv_blocks_free", "KV-cache blocks available",
            labels=labels, fn=lambda: self._kv.free_blocks,
        )
        registry.counter(
            "repro_batches_total", "Batches/steps executed",
            labels=labels, fn=lambda: self.batches_executed,
        )
        registry.counter(
            "repro_tokens_total", "Tokens processed by the phase",
            labels=labels, fn=lambda: self.tokens_prefilled,
        )
        registry.counter(
            "repro_busy_seconds_total", "Virtual seconds spent executing",
            labels=labels, fn=lambda: self.busy_time,
        )
        registry.gauge(
            "repro_utilization", "Busy fraction of elapsed virtual time",
            labels=labels,
            fn=lambda: self.busy_time / self._sim.now if self._sim.now > 0 else 0.0,
        )

    # ------------------------------------------------------------------
    def submit(self, state: RequestState) -> None:
        """Accept a dispatched request (FCFS)."""
        state.phase = RequestPhase.WAITING_PREFILL
        state.stamp("prefill_enqueue", self._sim.now)
        self._trace.begin(
            state.request_id, SpanKind.PREFILL_QUEUE, self._sim.now, self.name
        )
        self._queue.append(state)
        self._arm_scheduler()

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> "list[RequestState]":
        """Kill the instance; return requests needing re-routing.

        Victims are the queued requests plus any batch in flight; their
        (partial) KV caches on this instance are lost, so in-flight ones
        must re-run their prefill elsewhere. KV parked for completed
        requests is also lost — the orchestration layer handles those via
        its pending-pull bookkeeping.
        """
        self._alive = False
        victims = list(self._queue) + list(self._in_flight_states.values())
        self._queue.clear()
        self._in_flight_states.clear()
        self._in_flight = 0
        return victims

    def release_kv(self, request_id: int) -> None:
        """Free a parked KV cache after the decode side pulled it."""
        self._kv.free(request_id)
        self._arm_scheduler()

    # ------------------------------------------------------------------
    def _arm_scheduler(self) -> None:
        if self._scheduler_armed:
            return
        self._scheduler_armed = True
        delay = max(0.0, self._next_admit_time - self._sim.now)
        self._sim.schedule(delay, self._try_schedule)

    def _reorder_sjf(self) -> None:
        """Rank the queue shortest-prompt-first with wait-time aging.

        Effective rank = prompt length - aging * wait; a long prompt that
        has waited ``input_len / aging`` seconds outranks a fresh short
        one, bounding starvation.
        """
        now = self._sim.now
        ordered = sorted(
            self._queue,
            key=lambda s: s.prefill_len
            - self._aging * (now - s.timestamps.get("prefill_enqueue", now)),
        )
        self._queue = deque(ordered)

    def _form_batch(self) -> "list[RequestState]":
        """Pop a prefix of the queue respecting the L_m token budget."""
        if self._policy == "sjf" and len(self._queue) > 1:
            self._reorder_sjf()
        batch: "list[RequestState]" = []
        total = 0
        while self._queue:
            head = self._queue[0]
            need = head.prefill_len
            if batch and total + need > self._limit:
                break
            if not self._kv.can_allocate(need):
                break
            self._kv.allocate(head.request_id, need)
            batch.append(self._queue.popleft())
            total += need
        return batch

    def _try_schedule(self) -> None:
        self._scheduler_armed = False
        if not self._alive or not self._queue:
            return
        if self._sim.now < self._next_admit_time:
            self._arm_scheduler()
            return
        batch = self._form_batch()
        if not batch:
            # Head-of-line request cannot get KV space; retry on release.
            return
        if self._fast:
            batch_tokens = 0
            squared = 0
            for state in batch:
                length = state.prefill_len
                batch_tokens += length
                squared += length * length
            base_request, base_stage = self._timer.times(batch_tokens, float(squared))
        else:
            lens = [s.prefill_len for s in batch]
            ref = prefill_times(
                self.spec.model,
                self.spec.config,
                self._coeffs,
                lens,
                tp_link=self.spec.tp_link,
                pp_link=self.spec.pp_link,
            )
            base_request, base_stage = ref.request_latency, ref.stage_time
            batch_tokens = sum(lens)
        start = self._sim.now
        noise = self._jitter()
        request_latency = base_request * noise
        stage_time = base_stage * noise
        # A batch behind a slower one inherits the slower cadence (bubble).
        gap = max(stage_time, self._prev_stage_time)
        self._next_admit_time = start + gap
        self._prev_stage_time = stage_time
        self._in_flight += 1
        self.batches_executed += 1
        self.busy_time += stage_time
        self.tokens_prefilled += batch_tokens
        for state in batch:
            state.phase = RequestPhase.PREFILLING
            state.stamp("prefill_start", start)
            self._trace.end(state.request_id, SpanKind.PREFILL_QUEUE, start)
            self._trace.begin(
                state.request_id,
                SpanKind.PREFILL_EXEC,
                start,
                self.name,
                batch_size=len(batch),
            )
            self._in_flight_states[state.request_id] = state
        assert request_latency >= 0.0  # latency model + jitter are nonnegative
        finish = start + request_latency

        def _complete() -> None:
            if not self._alive:
                return  # the instance died mid-batch; victims re-routed
            self._in_flight -= 1
            if self._prof.enabled:
                self._prof.record_exec(
                    self.name, "prefill", start, self._sim.now,
                    len(batch), batch_tokens,
                )
            for state in batch:
                self._in_flight_states.pop(state.request_id, None)
                state.stamp("prefill_end", self._sim.now)
                self._trace.end(
                    state.request_id, SpanKind.PREFILL_EXEC, self._sim.now
                )
                state.recompute_len = None
                if state.generated == 0:
                    state.record_token(self._sim.now)  # the first output token
                    self._trace.span(
                        state.request_id,
                        SpanKind.DECODE_STEP,
                        self._sim.now,
                        self._sim.now,
                        self.name,
                        batch_size=len(batch),
                        token_index=0,
                    )
                state.phase = RequestPhase.TRANSFERRING
                self._on_done(state)
            self._arm_scheduler()

        self._sim.schedule_at(finish, _complete)
        # More work may fit the pipeline immediately after the gap.
        if self._queue:
            self._arm_scheduler()
