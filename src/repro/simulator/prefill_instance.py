"""Prefill instance: FCFS batching with pipeline conveyor and batch shaping.

A prefill instance (§2.3) receives dispatched requests, runs only their
prefill computation, emits the first output token, and parks the KV
cache in its own GPU memory until the decode side *pulls* it (§4.3).

Scheduling follows §4.3:

* **FCFS** admission (default). The paper notes FCFS suffers a *convoy
  effect* — long prompts block short ones — and points to preemptive
  scheduling [41] as future work; the ``"sjf"`` queue policy implements
  the non-preemptive variant (shortest prompt first, with aging to
  prevent starvation) as that extension.
* **Batch shaping**: requests are batched until the total prompt length
  reaches the profiled saturation threshold ``L_m``; longer requests run
  alone. This both preserves GPU efficiency (§3.1) and evens out stage
  times to reduce pipeline bubbles (§3.3).
* **Pipeline conveyor**: with ``pp`` stages, a new batch may enter every
  ``stage_time`` seconds; a batch behind a slower one inherits the slower
  cadence — the "bubble" effect of non-uniform prompt lengths.
"""

from __future__ import annotations

from typing import Callable, Deque
from collections import deque

from .events import Simulation
from .instance import InstanceSpec
from .kvcache import KVBlockManager
from .metrics import MetricsRegistry
from .profiler import NULL_PROFILER, Profiler
from .request import RequestPhase, RequestState
from .tracing import NULL_TRACER, SpanKind, Tracer
from ..latency.memo import PrefillBatchTimer
from ..latency.parallel import prefill_times
from ..latency.prefill import saturation_length
from ..scheduling.batch import BatchPolicy, PrefillChunk, make_batch_policy
from ..scheduling.config import SchedulingConfig
from ..scheduling.queue import QueuePolicy, make_queue_policy

__all__ = ["PrefillInstance"]


class PrefillInstance:
    """Simulated prefill-only model replica.

    Args:
        sim: The shared simulation loop.
        spec: Instance resources and parallelism.
        on_prefill_done: Callback invoked (with the request state) when a
            request's first token is produced; the orchestration layer
            then arranges the KV pull.
        batch_token_limit: Override for the batch-shaping threshold
            ``L_m`` (defaults to the profiled saturation length).
        queue_policy: ``"fcfs"`` (paper default), ``"sjf"``
            (shortest-prompt-first with aging — the convoy-effect
            mitigation the paper defers to future work), or ``"edf"``
            (earliest deadline first).
        sjf_aging: Seconds of queue wait equivalent to one prompt token
            when ranking under ``"sjf"``; higher values age waiting
            requests toward the front faster, bounding starvation.
        name: Identifier for reporting.
        tracer: Optional lifecycle tracer receiving queue/exec spans.
        profiler: Optional critical-path profiler receiving one exec
            event per executed batch.
        fast_kernel: Evaluate batch latency through the memoized
            :class:`PrefillBatchTimer` (bit-identical to the reference
            path, validation hoisted out of the scheduling loop).
        scheduling: Full policy configuration (:mod:`repro.scheduling`);
            when given, its queue/batch policies and knobs override the
            legacy ``queue_policy`` / ``sjf_aging`` /
            ``batch_token_limit`` keywords.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        on_prefill_done: Callable[[RequestState], None],
        batch_token_limit: "int | None" = None,
        queue_policy: str = "fcfs",
        sjf_aging: float = 2000.0,
        name: str = "prefill-0",
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        batch_policy = "token_budget"
        edf_default_deadline = 10.0
        if scheduling is not None:
            queue_policy = scheduling.queue_policy
            batch_policy = scheduling.batch_policy
            sjf_aging = scheduling.sjf_aging
            edf_default_deadline = scheduling.edf_default_deadline
            if scheduling.batch_token_limit is not None:
                batch_token_limit = scheduling.batch_token_limit
        self._sim = sim
        self.spec = spec
        self.name = name
        self._on_done = on_prefill_done
        self._qpolicy: QueuePolicy = make_queue_policy(
            queue_policy,
            sjf_aging=sjf_aging,
            edf_default_deadline=edf_default_deadline,
            enqueue_stamp="prefill_enqueue",
        )
        self._bpolicy: BatchPolicy = make_batch_policy(batch_policy)
        self._queue: "Deque[RequestState]" = deque()
        self._kv: KVBlockManager = spec.make_kv_manager()
        self._coeffs = spec.latency_coeffs
        self._limit = (
            batch_token_limit
            if batch_token_limit is not None
            else saturation_length(spec.model, self._coeffs, tp=spec.config.tp)
        )
        self._jitter = spec.make_jitter(name)
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._prof = profiler if profiler is not None else NULL_PROFILER
        # Memoized batch latency needs no observability gate: it defers
        # no state, so spans/profiler events are unchanged either way.
        self._fast = bool(fast_kernel)
        self._timer = PrefillBatchTimer(
            spec.model, spec.config, self._coeffs, spec.tp_link, spec.pp_link
        )
        self._alive = True
        self._in_flight_states: "dict[int, RequestState]" = {}
        # Pipeline conveyor state.
        self._next_admit_time = 0.0
        self._prev_stage_time = 0.0
        self._in_flight = 0
        self._scheduler_armed = False
        # Instrumentation.
        self.batches_executed = 0
        self.busy_time = 0.0
        self.tokens_prefilled = 0

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        """Requests waiting or in flight — the dispatch load signal."""
        return len(self._queue) + self._in_flight

    @property
    def batch_token_limit(self) -> int:
        return self._limit

    def kv_tokens_held(self) -> int:
        """KV tokens parked on this instance awaiting pull."""
        return self._kv.used_blocks * self._kv.block_size

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register this instance's gauges/counters (callback-backed).

        Idempotent and zero hot-path cost: every metric reads existing
        instrumentation attributes or live structures at collection time.
        """
        labels = {"phase": "prefill", "instance": self.name}
        registry.gauge(
            "repro_queue_depth", "Requests waiting for a batch slot",
            labels=labels, fn=lambda: len(self._queue),
        )
        registry.gauge(
            "repro_batch_inflight", "Batches in the pipeline conveyor",
            labels=labels, fn=lambda: self._in_flight,
        )
        registry.gauge(
            "repro_kv_blocks_used", "KV-cache blocks allocated",
            labels=labels, fn=lambda: self._kv.used_blocks,
        )
        registry.gauge(
            "repro_kv_blocks_free", "KV-cache blocks available",
            labels=labels, fn=lambda: self._kv.free_blocks,
        )
        registry.counter(
            "repro_batches_total", "Batches/steps executed",
            labels=labels, fn=lambda: self.batches_executed,
        )
        registry.counter(
            "repro_tokens_total", "Tokens processed by the phase",
            labels=labels, fn=lambda: self.tokens_prefilled,
        )
        registry.counter(
            "repro_busy_seconds_total", "Virtual seconds spent executing",
            labels=labels, fn=lambda: self.busy_time,
        )
        registry.gauge(
            "repro_utilization", "Busy fraction of elapsed virtual time",
            labels=labels,
            fn=lambda: self.busy_time / self._sim.now if self._sim.now > 0 else 0.0,
        )

    # ------------------------------------------------------------------
    def submit(self, state: RequestState) -> None:
        """Accept a dispatched request (FCFS)."""
        state.phase = RequestPhase.WAITING_PREFILL
        state.stamp("prefill_enqueue", self._sim.now)
        self._trace.begin(
            state.request_id, SpanKind.PREFILL_QUEUE, self._sim.now, self.name
        )
        self._queue.append(state)
        self._arm_scheduler()

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> "list[RequestState]":
        """Kill the instance; return requests needing re-routing.

        Victims are the queued requests plus any batch in flight; their
        (partial) KV caches on this instance are lost, so in-flight ones
        must re-run their prefill elsewhere. KV parked for completed
        requests is also lost — the orchestration layer handles those via
        its pending-pull bookkeeping. Every allocation in the dead
        instance's pool is released (the memory is gone with the
        instance), so sanitizer quiesce-time leak audits stay clean on
        fault-injection runs.
        """
        self._alive = False
        victims: "list[RequestState]" = []
        seen: "set[int]" = set()
        # Under chunked shaping a mid-prefill request sits both at the
        # queue head and in the in-flight map — dedupe by request id.
        for state in list(self._queue) + list(self._in_flight_states.values()):
            if state.request_id in seen:
                continue
            seen.add(state.request_id)
            victims.append(state)
        self._queue.clear()
        self._in_flight_states.clear()
        self._in_flight = 0
        self._bpolicy.reset()
        for request_id in self._kv.holders():
            self._kv.free(request_id)
        return victims

    def release_kv(self, request_id: int) -> None:
        """Free a parked KV cache after the decode side pulled it."""
        self._kv.free(request_id)
        self._arm_scheduler()

    # ------------------------------------------------------------------
    def _arm_scheduler(self) -> None:
        if self._scheduler_armed:
            return
        self._scheduler_armed = True
        delay = max(0.0, self._next_admit_time - self._sim.now)
        self._sim.schedule(delay, self._try_schedule)

    def _form_batch(self) -> "list[PrefillChunk]":
        """Reorder the queue, then shape a batch within the L_m budget.

        Both decisions are delegated to the configured scheduling
        policies (:mod:`repro.scheduling`); the defaults reproduce the
        paper's FCFS + token-budget recipe operation for operation.
        """
        self._queue = self._qpolicy.reorder(self._queue, self._sim.now)
        return self._bpolicy.form_prefill(self._queue, self._kv, self._limit)

    def _try_schedule(self) -> None:
        self._scheduler_armed = False
        if not self._alive or not self._queue:
            return
        if self._sim.now < self._next_admit_time:
            self._arm_scheduler()
            return
        batch = self._form_batch()
        if not batch:
            # Head-of-line request cannot get KV space; retry on release.
            return
        if self._fast:
            batch_tokens = 0
            squared = 0
            for entry in batch:
                length = entry.tokens
                batch_tokens += length
                squared += length * length
            base_request, base_stage = self._timer.times(batch_tokens, float(squared))
        else:
            lens = [e.tokens for e in batch]
            ref = prefill_times(
                self.spec.model,
                self.spec.config,
                self._coeffs,
                lens,
                tp_link=self.spec.tp_link,
                pp_link=self.spec.pp_link,
            )
            base_request, base_stage = ref.request_latency, ref.stage_time
            batch_tokens = sum(lens)
        start = self._sim.now
        noise = self._jitter()
        request_latency = base_request * noise
        stage_time = base_stage * noise
        # A batch behind a slower one inherits the slower cadence (bubble).
        gap = max(stage_time, self._prev_stage_time)
        self._next_admit_time = start + gap
        self._prev_stage_time = stage_time
        self._in_flight += 1
        self.batches_executed += 1
        self.busy_time += stage_time
        self.tokens_prefilled += batch_tokens
        for entry in batch:
            state = entry.state
            state.phase = RequestPhase.PREFILLING
            state.stamp("prefill_start", start)
            if entry.first:
                self._trace.end(state.request_id, SpanKind.PREFILL_QUEUE, start)
                self._trace.begin(
                    state.request_id,
                    SpanKind.PREFILL_EXEC,
                    start,
                    self.name,
                    batch_size=len(batch),
                )
            self._in_flight_states[state.request_id] = state
        assert request_latency >= 0.0  # latency model + jitter are nonnegative
        finish = start + request_latency

        def _complete() -> None:
            if not self._alive:
                return  # the instance died mid-batch; victims re-routed
            self._in_flight -= 1
            if self._prof.enabled:
                self._prof.record_exec(
                    self.name, "prefill", start, self._sim.now,
                    len(batch), batch_tokens,
                )
            for entry in batch:
                state = entry.state
                self._in_flight_states.pop(state.request_id, None)
                if not entry.final:
                    # Chunked prefill: the prompt's tail runs in a later
                    # batch; finalization waits for the final chunk.
                    continue
                state.stamp("prefill_end", self._sim.now)
                self._trace.end(
                    state.request_id, SpanKind.PREFILL_EXEC, self._sim.now
                )
                state.recompute_len = None
                if state.generated == 0:
                    state.record_token(self._sim.now)  # the first output token
                    self._trace.span(
                        state.request_id,
                        SpanKind.DECODE_STEP,
                        self._sim.now,
                        self._sim.now,
                        self.name,
                        batch_size=len(batch),
                        token_index=0,
                    )
                state.phase = RequestPhase.TRANSFERRING
                self._on_done(state)
            self._arm_scheduler()

        self._sim.schedule_at(finish, _complete)
        # More work may fit the pipeline immediately after the gap.
        if self._queue:
            self._arm_scheduler()
