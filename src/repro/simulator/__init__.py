"""Discrete-event cluster simulator: the substrate replacing the paper's
C++/CUDA execution engine (see DESIGN.md substitution table)."""

from .colocated_instance import POLICIES, ColocatedInstance
from .decode_instance import DecodeInstance
from .events import Simulation
from .instance import DEFAULT_BLOCK_SIZE, InstanceSpec
from .kvcache import KVBlockManager, OutOfBlocksError
from .prefill_instance import PrefillInstance
from .request import RequestPhase, RequestRecord, RequestState
from .telemetry import GaugeSeries, TelemetryRecorder
from .transfer import TransferEngine, TransferRecord

__all__ = [
    "POLICIES",
    "ColocatedInstance",
    "DecodeInstance",
    "Simulation",
    "DEFAULT_BLOCK_SIZE",
    "InstanceSpec",
    "KVBlockManager",
    "OutOfBlocksError",
    "PrefillInstance",
    "RequestPhase",
    "RequestRecord",
    "RequestState",
    "GaugeSeries",
    "TelemetryRecorder",
    "TransferEngine",
    "TransferRecord",
]
