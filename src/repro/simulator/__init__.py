"""Discrete-event cluster simulator: the substrate replacing the paper's
C++/CUDA execution engine (see DESIGN.md substitution table)."""

from .colocated_instance import POLICIES, ColocatedInstance
from .decode_instance import DecodeInstance
from .events import Simulation
from .instance import DEFAULT_BLOCK_SIZE, InstanceSpec
from .kvcache import KVBlockManager, OutOfBlocksError
from .metrics import (
    AttainmentSnapshot,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    SloMonitor,
    exponential_buckets,
)
from .prefill_instance import PrefillInstance
from .profiler import NULL_PROFILER, NullProfiler, Profiler
from .request import RequestPhase, RequestRecord, RequestState
from .sanitizer import (
    SanitizedSimulation,
    SanitizerError,
    SimSanitizer,
    Violation,
)
from .telemetry import GaugeSeries, GaugeSummary, TelemetryRecorder
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanKind,
    Tracer,
    chrome_trace_events,
    spans_by_request,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .transfer import TransferEngine, TransferRecord

__all__ = [
    "POLICIES",
    "ColocatedInstance",
    "DecodeInstance",
    "Simulation",
    "DEFAULT_BLOCK_SIZE",
    "InstanceSpec",
    "KVBlockManager",
    "OutOfBlocksError",
    "PrefillInstance",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "RequestPhase",
    "RequestRecord",
    "RequestState",
    "SanitizedSimulation",
    "SanitizerError",
    "SimSanitizer",
    "Violation",
    "AttainmentSnapshot",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SloMonitor",
    "exponential_buckets",
    "GaugeSeries",
    "GaugeSummary",
    "TelemetryRecorder",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanKind",
    "Tracer",
    "chrome_trace_events",
    "spans_by_request",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "TransferEngine",
    "TransferRecord",
]
