"""Time-series telemetry for simulated instances.

Production serving systems export gauges — queue depth, running batch
size, KV utilization — that operators watch and the replanning profiler
consumes. :class:`TelemetryRecorder` samples any set of named gauges on
a fixed virtual-time cadence and offers summary statistics, so tests
and benchmarks can assert on *dynamics* (e.g. "decode batch size grew
after the burst") rather than only end-state aggregates.

For instantaneous *aggregate* metrics (counters, attainment, goodput)
see :mod:`repro.simulator.metrics`; the recorder complements it by
keeping a time-*series* of any callable — including metrics-registry
reads — on a fixed cadence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .events import Simulation

__all__ = ["GaugeSeries", "GaugeSummary", "TelemetryRecorder"]


@dataclass(frozen=True)
class GaugeSummary:
    """NaN-safe summary statistics of one gauge series.

    Every field is ``nan`` when the series is empty (``count == 0``), so
    callers can format or compare without guarding — unlike an
    exception, ``nan`` propagates harmlessly through arithmetic and
    renders as ``nan`` in reports.
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float


@dataclass
class GaugeSeries:
    """Samples of one gauge: parallel arrays of times and values."""

    name: str
    times: "list[float]"
    values: "list[float]"

    def __len__(self) -> int:
        return len(self.times)

    def summary(self) -> GaugeSummary:
        """NaN-safe statistics; all-``nan`` fields when empty."""
        if not self.values:
            nan = float("nan")
            return GaugeSummary(0, nan, nan, nan, nan, nan, nan)
        arr = np.asarray(self.values, dtype=float)
        p50, p90, p99 = np.percentile(arr, [50, 90, 99])
        return GaugeSummary(
            count=len(arr),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
        )

    def mean(self) -> float:
        """Mean of the samples; ``nan`` when the series is empty."""
        return self.summary().mean

    def max(self) -> float:
        """Max of the samples; ``nan`` when the series is empty."""
        return self.summary().maximum

    def percentile(self, q: float) -> float:
        """The q-th percentile; ``nan`` when the series is empty."""
        if not self.values:
            return float("nan")
        return float(np.percentile(self.values, q))

    def value_at(self, time: float) -> float:
        """Last sampled value at or before ``time`` (step interpolation).

        Unlike the summary statistics, this *raises* on an empty series
        or a time before the first sample — asking "what was the value
        at t" has no NaN-safe answer, and silently returning one would
        mask a mis-registered gauge or a query outside the recording.
        """
        if not self.times:
            raise ValueError(f"gauge {self.name!r} has no samples")
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample of {self.name!r} at or before {time}")
        return self.values[idx]


class TelemetryRecorder:
    """Samples named gauges every ``interval`` seconds of virtual time.

    Usage::

        recorder = TelemetryRecorder(sim, interval=0.5)
        recorder.register("decode_batch", lambda: inst.active_batch_size)
        recorder.start(until=120.0)
        sim.run()
        series = recorder.series("decode_batch")

    .. note:: **Interaction with** ``Simulation.run(max_events=...)``:
       every sample after the first (which runs inline during
       :meth:`start`) is an ordinary scheduled event, so a recorder
       ticking until ``T`` adds ``floor(T / interval)`` events that
       count against any ``max_events`` budget the caller passes to
       :meth:`Simulation.run` — a tight budget can be consumed by
       sampling alone, stopping the run earlier than the workload would.
       Prefer a virtual-time bound (``run(until=...)``) when recording,
       or widen ``max_events`` by the sample count above
       (:attr:`samples_taken` reports it after the fact).
    """

    def __init__(self, sim: Simulation, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._gauges: "dict[str, Callable[[], float]]" = {}
        self._series: "dict[str, GaugeSeries]" = {}
        self._running = False
        self._until = 0.0
        #: Samples recorded so far; all but the first are simulation
        #: events counted against any ``max_events`` budget.
        self.samples_taken = 0

    def register(self, name: str, fn: "Callable[[], float]") -> None:
        """Add a gauge; must happen before :meth:`start`."""
        if self._running:
            raise RuntimeError("cannot register gauges after start()")
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = fn
        self._series[name] = GaugeSeries(name=name, times=[], values=[])

    def start(self, until: float) -> None:
        """Begin sampling now and stop after virtual time ``until``."""
        if self._running:
            raise RuntimeError("recorder already started")
        if not self._gauges:
            raise RuntimeError("no gauges registered")
        self._running = True
        self._until = until
        self._sample()

    def _sample(self) -> None:
        now = self._sim.now
        self.samples_taken += 1
        for name, fn in self._gauges.items():
            series = self._series[name]
            series.times.append(now)
            series.values.append(float(fn()))
        if now + self._interval <= self._until:
            # reprolint: disable=SIM001 -- interval validated > 0 in __init__
            self._sim.schedule(self._interval, self._sample)

    def series(self, name: str) -> GaugeSeries:
        """The recorded series for one gauge."""
        if name not in self._series:
            known = ", ".join(sorted(self._series))
            raise KeyError(f"unknown gauge {name!r}; known: {known}")
        return self._series[name]

    def names(self) -> "list[str]":
        return sorted(self._series)
