"""Time-series telemetry for simulated instances.

Production serving systems export gauges — queue depth, running batch
size, KV utilization — that operators watch and the replanning profiler
consumes. :class:`TelemetryRecorder` samples any set of named gauges on
a fixed virtual-time cadence and offers summary statistics, so tests
and benchmarks can assert on *dynamics* (e.g. "decode batch size grew
after the burst") rather than only end-state aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .events import Simulation

__all__ = ["GaugeSeries", "TelemetryRecorder"]


@dataclass
class GaugeSeries:
    """Samples of one gauge: parallel arrays of times and values."""

    name: str
    times: "list[float]"
    values: "list[float]"

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"gauge {self.name!r} has no samples")
        return float(np.mean(self.values))

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"gauge {self.name!r} has no samples")
        return float(np.max(self.values))

    def percentile(self, q: float) -> float:
        if not self.values:
            raise ValueError(f"gauge {self.name!r} has no samples")
        return float(np.percentile(self.values, q))

    def value_at(self, time: float) -> float:
        """Last sampled value at or before ``time`` (step interpolation)."""
        if not self.times:
            raise ValueError(f"gauge {self.name!r} has no samples")
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample of {self.name!r} at or before {time}")
        return self.values[idx]


class TelemetryRecorder:
    """Samples named gauges every ``interval`` seconds of virtual time.

    Usage::

        recorder = TelemetryRecorder(sim, interval=0.5)
        recorder.register("decode_batch", lambda: inst.active_batch_size)
        recorder.start(until=120.0)
        sim.run()
        series = recorder.series("decode_batch")
    """

    def __init__(self, sim: Simulation, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._gauges: "dict[str, Callable[[], float]]" = {}
        self._series: "dict[str, GaugeSeries]" = {}
        self._running = False
        self._until = 0.0

    def register(self, name: str, fn: "Callable[[], float]") -> None:
        """Add a gauge; must happen before :meth:`start`."""
        if self._running:
            raise RuntimeError("cannot register gauges after start()")
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = fn
        self._series[name] = GaugeSeries(name=name, times=[], values=[])

    def start(self, until: float) -> None:
        """Begin sampling now and stop after virtual time ``until``."""
        if self._running:
            raise RuntimeError("recorder already started")
        if not self._gauges:
            raise RuntimeError("no gauges registered")
        self._running = True
        self._until = until
        self._sample()

    def _sample(self) -> None:
        now = self._sim.now
        for name, fn in self._gauges.items():
            series = self._series[name]
            series.times.append(now)
            series.values.append(float(fn()))
        if now + self._interval <= self._until:
            self._sim.schedule(self._interval, self._sample)

    def series(self, name: str) -> GaugeSeries:
        """The recorded series for one gauge."""
        if name not in self._series:
            known = ", ".join(sorted(self._series))
            raise KeyError(f"unknown gauge {name!r}; known: {known}")
        return self._series[name]

    def names(self) -> "list[str]":
        return sorted(self._series)
