"""Colocated serving instance: prefill and decode share the same GPUs.

This is the baseline DistServe compares against (§2.2, §6.1). Three
iteration-level scheduling policies are modeled:

* ``"prefill_priority"`` — vLLM semantics: an iteration is either a
  prefill batch (new prompts, prioritized) or one decoding step of all
  running requests. Decoding stalls whenever prompts arrive — the
  prefill-decoding interference of Figure 2.
* ``"decode_priority"`` — the mirror image: decoding steps run while any
  request is active; prompts are admitted only when decoding drains.
  §2.3's point — "prioritizing tasks in either phase adversely affects
  the latency of the other, rendering priority scheduling ineffective" —
  falls out of comparing these two.
* ``"combined"`` — Orca-style continuous batching: waiting prompts and
  running decodes execute in one combined iteration.
* ``"chunked"`` — SARATHI-style chunked prefill: prompts are split into
  fixed-size chunks piggybacked onto decode iterations, trading TTFT
  for TPOT (§2.2).

KV management is vLLM-style optimistic admission with recompute
preemption: a request that cannot grow its KV is pushed back to the
waiting queue, its blocks freed, and its full context re-prefilled on
re-admission.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from .events import Simulation
from .instance import InstanceSpec
from .kvcache import KVBlockManager
from .metrics import MetricsRegistry
from .profiler import NULL_PROFILER, Profiler
from .request import RequestPhase, RequestState
from .tracing import NULL_TRACER, SpanKind, Tracer
from ..latency.memo import DecodeStepTimer
from ..latency.mixed import mixed_batch_latency
from ..latency.parallel import decode_times, prefill_times
from ..scheduling.config import SchedulingConfig
from ..scheduling.queue import QueuePolicy, make_queue_policy

__all__ = ["ColocatedInstance", "POLICIES"]

POLICIES = ("prefill_priority", "decode_priority", "combined", "chunked")


class ColocatedInstance:
    """Simulated colocated model replica (the vLLM baseline).

    Args:
        sim: Shared simulation loop.
        spec: Instance resources and parallelism.
        on_request_done: Fired when a request finishes all output tokens.
        policy: One of :data:`POLICIES`.
        max_prefill_tokens: Token budget of one prefill iteration.
        chunk_size: Prompt-chunk budget for the ``"chunked"`` policy.
        name: Identifier for reporting.
        tracer: Optional lifecycle tracer receiving queue/exec/step spans.
        profiler: Optional critical-path profiler receiving one exec
            event per iteration, tagged by iteration kind.
        fast_kernel: Evaluate pure-decode iteration latency through the
            memoized O(1) timer (bit-identical to the reference path)
            instead of re-materializing and re-summing context lists.
        scheduling: Policy configuration (:mod:`repro.scheduling`); the
            queue policy orders the waiting deque before each admission
            pass (FCFS default is a no-op). Batch shaping stays with the
            iteration ``policy`` above — the vLLM baseline's own axis.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        on_request_done: Callable[[RequestState], None],
        policy: str = "prefill_priority",
        max_prefill_tokens: int = 2048,
        chunk_size: int = 512,
        name: str = "colocated-0",
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if max_prefill_tokens <= 0 or chunk_size <= 0:
            raise ValueError("max_prefill_tokens and chunk_size must be positive")
        self._sim = sim
        self.spec = spec
        self.name = name
        self.policy = policy
        self._on_done = on_request_done
        self._max_prefill_tokens = max_prefill_tokens
        self._chunk_size = chunk_size
        cfg = scheduling if scheduling is not None else SchedulingConfig()
        self._qpolicy: QueuePolicy = make_queue_policy(
            cfg.queue_policy,
            sjf_aging=cfg.sjf_aging,
            edf_default_deadline=cfg.edf_default_deadline,
            enqueue_stamp="prefill_enqueue",
        )
        self._alive = True
        self._waiting: "Deque[RequestState]" = deque()
        self._running: "list[RequestState]" = []
        self._running_ids: "set[int]" = set()
        # Prefill states inside the currently scheduled iteration: popped
        # from _waiting but not yet moved to _running, so fail() must
        # sweep them explicitly or they would be lost with the replica.
        self._inflight_prefills: "list[RequestState]" = []
        self._kv: KVBlockManager = spec.make_kv_manager()
        self._coeffs = spec.latency_coeffs
        # Chunked-prefill progress: request_id -> prompt tokens prefilled.
        self._chunk_progress: "dict[int, int]" = {}
        # Recompute lengths for preempted requests: request_id -> context.
        self._recompute_len: "dict[int, int]" = {}
        self._jitter = spec.make_jitter(name)
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._prof = profiler if profiler is not None else NULL_PROFILER
        self._iterating = False
        # Fast kernel: decode-iteration latency from the memoized timer
        # and an incrementally maintained running-context total.
        self._fast = bool(fast_kernel)
        self._timer = DecodeStepTimer(
            spec.model, spec.config, self._coeffs, spec.tp_link, spec.pp_link
        )
        self._running_context_tokens = 0
        # Instrumentation.
        self.prefill_iterations = 0
        self.decode_iterations = 0
        self.mixed_iterations = 0
        self.preemptions = 0
        self.busy_time = 0.0
        self.tokens_prefilled = 0
        self.tokens_generated = 0

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        return len(self._waiting) + len(self._running)

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register this replica's gauges/counters (callback-backed)."""
        labels = {"phase": "colocated", "instance": self.name}
        registry.gauge(
            "repro_queue_depth", "Requests waiting for a batch slot",
            labels=labels, fn=lambda: len(self._waiting),
        )
        registry.gauge(
            "repro_batch_size", "Active continuous-batching set size",
            labels=labels, fn=lambda: len(self._running),
        )
        registry.gauge(
            "repro_chunked_prefill_tokens",
            "Prompt tokens mid-chunked-prefill (chunked policy occupancy)",
            labels=labels, fn=lambda: sum(self._chunk_progress.values()),
        )
        registry.gauge(
            "repro_kv_blocks_used", "KV-cache blocks allocated",
            labels=labels, fn=lambda: self._kv.used_blocks,
        )
        registry.gauge(
            "repro_kv_blocks_free", "KV-cache blocks available",
            labels=labels, fn=lambda: self._kv.free_blocks,
        )
        for kind, fn in (
            ("prefill", lambda: self.prefill_iterations),
            ("decode", lambda: self.decode_iterations),
            ("mixed", lambda: self.mixed_iterations),
        ):
            registry.counter(
                "repro_iterations_total", "Iterations executed, by kind",
                labels={**labels, "kind": kind}, fn=fn,
            )
        registry.counter(
            "repro_tokens_total", "Tokens processed by the phase",
            labels=labels, fn=lambda: self.tokens_prefilled + self.tokens_generated,
        )
        registry.counter(
            "repro_busy_seconds_total", "Virtual seconds spent executing",
            labels=labels, fn=lambda: self.busy_time,
        )
        registry.counter(
            "repro_preemptions_total", "Recompute preemptions",
            labels=labels, fn=lambda: self.preemptions,
        )
        registry.gauge(
            "repro_utilization", "Busy fraction of elapsed virtual time",
            labels=labels,
            fn=lambda: self.busy_time / self._sim.now if self._sim.now > 0 else 0.0,
        )

    def submit(self, state: RequestState) -> None:
        """Accept an arriving request."""
        state.phase = RequestPhase.WAITING_PREFILL
        state.stamp("prefill_enqueue", self._sim.now)
        self._trace.begin(
            state.request_id, SpanKind.PREFILL_QUEUE, self._sim.now, self.name
        )
        self._waiting.append(state)
        self._kick()

    # ------------------------------------------------------------------
    def _prompt_len(self, state: RequestState) -> int:
        """Tokens to prefill: the prompt, or full context after preemption.

        Preemptions on *this* instance are tracked in the local map; a
        request re-routed here after another replica failed carries its
        recompute length on the state itself (``state.prefill_len``).
        """
        local = self._recompute_len.get(state.request_id)
        if local is not None:
            return local
        return state.prefill_len

    def _try_admit_prefill(self, token_budget: int) -> "list[RequestState]":
        """Pop waiting requests into a prefill batch within the budget."""
        self._waiting = self._qpolicy.reorder(self._waiting, self._sim.now)
        batch: "list[RequestState]" = []
        total = 0
        while self._waiting and len(self._running) + len(batch) < self.spec.max_batch_size:
            head = self._waiting[0]
            need = self._prompt_len(head)
            if batch and total + need > token_budget:
                break
            if not self._kv.can_allocate(need):
                break
            self._kv.allocate(head.request_id, need)
            batch.append(self._waiting.popleft())
            total += need
        return batch

    def _kick(self) -> None:
        if self._iterating or not self._alive:
            return
        if not self._waiting and not self._running:
            return
        self._iterating = True
        self._run_iteration()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> "list[RequestState]":
        """Kill the replica; return requests needing re-routing.

        Every request on the replica is a victim: waiting ones simply
        re-queue elsewhere, while any request whose prefill started or
        that was decoding lost its KV cache and must re-run prefill over
        its full current context. The dead pool's allocations are all
        released so quiesce-time leak audits stay clean.
        """
        self._alive = False
        self._iterating = False
        victims: "list[RequestState]" = []
        seen: "set[int]" = set()
        for state in (
            list(self._waiting)
            + self._inflight_prefills
            + list(self._running)
        ):
            if state.request_id in seen:
                continue
            seen.add(state.request_id)
            victims.append(state)
            local = self._recompute_len.get(state.request_id)
            if local is not None:
                state.recompute_len = local
            elif (
                state.generated > 0
                or self._chunk_progress.get(state.request_id, 0) > 0
            ):
                state.recompute_len = state.context_len
        self._waiting.clear()
        self._running.clear()
        self._running_ids.clear()
        self._inflight_prefills = []
        self._chunk_progress.clear()
        self._recompute_len.clear()
        self._running_context_tokens = 0
        for request_id in self._kv.holders():
            self._kv.free(request_id)
        return victims

    def _run_iteration(self) -> None:
        if self.policy == "prefill_priority":
            self._iteration_prefill_priority()
        elif self.policy == "decode_priority":
            self._iteration_decode_priority()
        elif self.policy == "combined":
            self._iteration_mixed(token_budget=self._max_prefill_tokens, combined=True)
        else:
            self._iteration_mixed(token_budget=self._chunk_size, combined=False)

    # ------------------------------------------------------------------
    def _iteration_prefill_priority(self) -> None:
        batch = self._try_admit_prefill(self._max_prefill_tokens)
        if batch:
            lens = [self._prompt_len(s) for s in batch]
            times = prefill_times(
                self.spec.model,
                self.spec.config,
                self._coeffs,
                lens,
                tp_link=self.spec.tp_link,
                pp_link=self.spec.pp_link,
            )
            duration = times.request_latency * self._jitter()
            assert duration >= 0.0  # latency model + jitter are nonnegative
            self.prefill_iterations += 1
            self.busy_time += duration
            batch_tokens = sum(lens)
            self.tokens_prefilled += batch_tokens
            for state in batch:
                state.phase = RequestPhase.PREFILLING
                state.stamp("prefill_start", self._sim.now)
                self._trace.end(
                    state.request_id, SpanKind.PREFILL_QUEUE, self._sim.now
                )
                self._trace.begin(
                    state.request_id,
                    SpanKind.PREFILL_EXEC,
                    self._sim.now,
                    self.name,
                    batch_size=len(batch),
                )
            step_start = self._sim.now
            self._inflight_prefills = list(batch)
            self._sim.schedule(
                duration,
                lambda: self._finish_prefill(batch, step_start, batch_tokens),
            )
            return
        if self._running:
            if self._fast:
                base = self._timer.request_latency(
                    len(self._running), self._running_context_tokens
                )
            else:
                contexts = [s.context_len for s in self._running]
                base = decode_times(
                    self.spec.model,
                    self.spec.config,
                    self._coeffs,
                    contexts,
                    tp_link=self.spec.tp_link,
                    pp_link=self.spec.pp_link,
                ).request_latency
            duration = base * self._jitter()
            assert duration >= 0.0  # latency model + jitter are nonnegative
            self.decode_iterations += 1
            self.busy_time += duration
            batch_snapshot = list(self._running)
            step_start = self._sim.now
            self._sim.schedule(
                duration, lambda: self._finish_decode(batch_snapshot, step_start)
            )
            return
        self._iterating = False

    def _iteration_decode_priority(self) -> None:
        """Decode first; prompts wait until the running set drains."""
        if self._running:
            if self._fast:
                base = self._timer.request_latency(
                    len(self._running), self._running_context_tokens
                )
            else:
                contexts = [s.context_len for s in self._running]
                base = decode_times(
                    self.spec.model,
                    self.spec.config,
                    self._coeffs,
                    contexts,
                    tp_link=self.spec.tp_link,
                    pp_link=self.spec.pp_link,
                ).request_latency
            duration = base * self._jitter()
            assert duration >= 0.0  # latency model + jitter are nonnegative
            self.decode_iterations += 1
            self.busy_time += duration
            batch_snapshot = list(self._running)
            step_start = self._sim.now
            self._sim.schedule(
                duration, lambda: self._finish_decode(batch_snapshot, step_start)
            )
            return
        batch = self._try_admit_prefill(self._max_prefill_tokens)
        if batch:
            lens = [self._prompt_len(s) for s in batch]
            times = prefill_times(
                self.spec.model,
                self.spec.config,
                self._coeffs,
                lens,
                tp_link=self.spec.tp_link,
                pp_link=self.spec.pp_link,
            )
            duration = times.request_latency * self._jitter()
            assert duration >= 0.0  # latency model + jitter are nonnegative
            self.prefill_iterations += 1
            self.busy_time += duration
            batch_tokens = sum(lens)
            self.tokens_prefilled += batch_tokens
            for state in batch:
                state.phase = RequestPhase.PREFILLING
                state.stamp("prefill_start", self._sim.now)
                self._trace.end(
                    state.request_id, SpanKind.PREFILL_QUEUE, self._sim.now
                )
                self._trace.begin(
                    state.request_id,
                    SpanKind.PREFILL_EXEC,
                    self._sim.now,
                    self.name,
                    batch_size=len(batch),
                )
            step_start = self._sim.now
            self._inflight_prefills = list(batch)
            self._sim.schedule(
                duration,
                lambda: self._finish_prefill(batch, step_start, batch_tokens),
            )
            return
        self._iterating = False

    def _finish_prefill(
        self,
        batch: "list[RequestState]",
        step_start: float = 0.0,
        batch_tokens: int = 0,
    ) -> None:
        if not self._alive:
            return  # the replica died mid-iteration; victims re-routed
        self._inflight_prefills = []
        if self._prof.enabled:
            self._prof.record_exec(
                self.name, "prefill", step_start, self._sim.now,
                len(batch), batch_tokens,
            )
        for state in batch:
            was_preempted = state.request_id in self._recompute_len
            self._recompute_len.pop(state.request_id, None)
            state.recompute_len = None
            state.stamp("prefill_end", self._sim.now)
            self._trace.end(state.request_id, SpanKind.PREFILL_EXEC, self._sim.now)
            if not was_preempted and state.generated == 0:
                state.record_token(self._sim.now)
                self._trace.span(
                    state.request_id,
                    SpanKind.DECODE_STEP,
                    self._sim.now,
                    self._sim.now,
                    self.name,
                    batch_size=len(batch),
                    token_index=0,
                )
            state.phase = RequestPhase.DECODING
            state.stamp("decode_start", self._sim.now)
            if state.is_finished:
                self._kv.free(state.request_id)
                state.phase = RequestPhase.FINISHED
                self._on_done(state)
            else:
                self._running.append(state)
                self._running_ids.add(state.request_id)
                self._running_context_tokens += state.context_len
        self._run_iteration()

    def _finish_decode(
        self, batch: "list[RequestState]", step_start: float = 0.0
    ) -> None:
        if not self._alive:
            return  # the replica died mid-iteration; victims re-routed
        step_tokens = self._advance_decodes(batch, step_start)
        if self._prof.enabled:
            self._prof.record_exec(
                self.name, "decode", step_start, self._sim.now,
                len(batch), step_tokens,
            )
        self._run_iteration()

    def _advance_decodes(
        self, batch: "list[RequestState]", step_start: float = 0.0
    ) -> int:
        finished: "list[RequestState]" = []
        step_tokens = 0
        for state in batch:
            if state.request_id not in self._running_ids:
                continue  # preempted during this iteration
            if not self._kv.can_append(state.request_id):
                self._preempt_youngest(exclude_id=state.request_id)
                if not self._kv.can_append(state.request_id):
                    continue  # still stuck; token retried next iteration
            self._kv.append(state.request_id)
            state.record_token(self._sim.now)
            self.tokens_generated += 1
            self._running_context_tokens += 1
            step_tokens += 1
            if self._trace.enabled:
                self._trace.span(
                    state.request_id,
                    SpanKind.DECODE_STEP,
                    step_start,
                    self._sim.now,
                    self.name,
                    batch_size=len(batch),
                    token_index=state.generated - 1,
                )
            if state.is_finished:
                finished.append(state)
        for state in finished:
            self._running.remove(state)
            self._running_ids.discard(state.request_id)
            self._running_context_tokens -= state.context_len
            self._kv.free(state.request_id)
            state.phase = RequestPhase.FINISHED
            self._on_done(state)
        return step_tokens

    def _preempt_youngest(self, exclude_id: int) -> None:
        """Recompute-preempt the most recently admitted running request."""
        for idx in range(len(self._running) - 1, -1, -1):
            victim = self._running[idx]
            if victim.request_id == exclude_id:
                continue
            self._running.pop(idx)
            self._running_ids.discard(victim.request_id)
            self._running_context_tokens -= victim.context_len
            self._kv.free(victim.request_id)
            self._recompute_len[victim.request_id] = victim.context_len
            victim.phase = RequestPhase.WAITING_PREFILL
            self._trace.instant(
                victim.request_id, SpanKind.PREEMPTED, self._sim.now, self.name
            )
            self._trace.begin(
                victim.request_id, SpanKind.PREFILL_QUEUE, self._sim.now, self.name
            )
            self._waiting.appendleft(victim)
            self.preemptions += 1
            return

    # ------------------------------------------------------------------
    def _iteration_mixed(self, token_budget: int, combined: bool) -> None:
        """One Orca/SARATHI iteration: decode batch plus prompt (chunks)."""
        self._waiting = self._qpolicy.reorder(self._waiting, self._sim.now)
        contexts = [s.context_len for s in self._running]
        budget = token_budget if not combined else self._max_prefill_tokens
        chunk_lens: "list[int]" = []
        chunk_owners: "list[RequestState]" = []
        spent = 0
        while self._waiting and spent < budget:
            head = self._waiting[0]
            need = self._prompt_len(head)
            done = self._chunk_progress.get(head.request_id, 0)
            if done == 0:
                if len(self._running) + len(chunk_owners) >= self.spec.max_batch_size:
                    break
                if not self._kv.can_allocate(need):
                    break
                self._kv.allocate(head.request_id, need)
                head.phase = RequestPhase.PREFILLING
                head.stamp("prefill_start", self._sim.now)
                self._trace.end(
                    head.request_id, SpanKind.PREFILL_QUEUE, self._sim.now
                )
                self._trace.begin(
                    head.request_id, SpanKind.PREFILL_EXEC, self._sim.now, self.name
                )
            remaining = need - done
            take = remaining if combined else min(remaining, budget - spent)
            if take <= 0:
                break
            chunk_lens.append(take)
            chunk_owners.append(head)
            self._chunk_progress[head.request_id] = done + take
            spent += take
            if done + take >= need:
                self._waiting.popleft()
            else:
                break  # a partially prefilled prompt keeps its queue head
        if not chunk_lens and not contexts:
            self._iterating = False
            return
        duration = mixed_batch_latency(
            self.spec.model,
            self._coeffs,
            chunk_lens,
            contexts,
            tp=self.spec.config.tp,
        ) * self._jitter()
        assert duration >= 0.0  # latency model + jitter are nonnegative
        self.mixed_iterations += 1
        self.busy_time += duration
        self.tokens_prefilled += spent
        decode_snapshot = list(self._running)
        completed = [
            s
            for s in chunk_owners
            if self._chunk_progress.get(s.request_id, 0) >= self._prompt_len(s)
        ]
        step_start = self._sim.now
        mixed_batch_size = len(decode_snapshot) + len(chunk_lens)
        self._inflight_prefills = list(chunk_owners)
        self._sim.schedule(
            duration,
            lambda: self._finish_mixed(
                decode_snapshot, completed, step_start, spent, mixed_batch_size
            ),
        )

    def _finish_mixed(
        self,
        decode_batch: "list[RequestState]",
        prefilled: "list[RequestState]",
        step_start: float = 0.0,
        prefill_tokens: int = 0,
        batch_size: int = 0,
    ) -> None:
        if not self._alive:
            return  # the replica died mid-iteration; victims re-routed
        self._inflight_prefills = []
        for state in prefilled:
            was_preempted = state.request_id in self._recompute_len
            self._recompute_len.pop(state.request_id, None)
            self._chunk_progress.pop(state.request_id, None)
            state.recompute_len = None
            state.stamp("prefill_end", self._sim.now)
            self._trace.end(state.request_id, SpanKind.PREFILL_EXEC, self._sim.now)
            if not was_preempted and state.generated == 0:
                state.record_token(self._sim.now)
                self._trace.span(
                    state.request_id,
                    SpanKind.DECODE_STEP,
                    self._sim.now,
                    self._sim.now,
                    self.name,
                    token_index=0,
                )
            state.phase = RequestPhase.DECODING
            state.stamp("decode_start", self._sim.now)
            if state.is_finished:
                self._kv.free(state.request_id)
                state.phase = RequestPhase.FINISHED
                self._on_done(state)
            else:
                self._running.append(state)
                self._running_ids.add(state.request_id)
                self._running_context_tokens += state.context_len
        step_tokens = self._advance_decodes(decode_batch, step_start)
        if self._prof.enabled:
            self._prof.record_exec(
                self.name, "mixed", step_start, self._sim.now,
                batch_size, prefill_tokens + step_tokens,
            )
        self._run_iteration()
