"""Per-request lifecycle tracing: typed spans over virtual time.

§3.1 and Figure 10 argue about *where time goes per request* — prefill
queueing, prefill execution, KV-cache transfer, decode queueing,
per-token decoding. The aggregate :class:`~repro.simulator.request.RequestRecord`
compresses that story into five scalars; this module keeps the full
timeline. A :class:`Tracer` collects typed :class:`Span` objects emitted
by the instances and serving systems as the simulation runs, yielding a
deterministic, replayable artifact:

* **Golden traces** — a fixed-seed run serializes to byte-identical
  JSON-lines, so a checked-in fixture pins simulator behavior.
* **Breakdowns from ground truth** — :mod:`repro.analysis.breakdown`
  derives Figure 10's stage proportions from real spans rather than
  reconstructed timestamps.
* **Timeline visualisation** — the Chrome ``trace_event`` exporter
  produces files viewable in Perfetto / ``chrome://tracing``, one row
  per request.

Tracing is opt-in and zero-cost when disabled: components hold the
shared :data:`NULL_TRACER` singleton (every method a no-op) unless an
enabled tracer is injected, and hot paths guard on ``tracer.enabled``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Span",
    "SpanKind",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "spans_by_request",
    "to_jsonl",
    "write_jsonl",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
]


class SpanKind:
    """Canonical span-kind names (plain strings, cheap to compare)."""

    ARRIVAL = "arrival"
    PREFILL_QUEUE = "prefill_queue"
    PREFILL_EXEC = "prefill_exec"
    KV_TRANSFER = "kv_transfer"
    DECODE_QUEUE = "decode_queue"
    DECODE_STEP = "decode_step"
    COMPLETION = "completion"
    PREEMPTED = "preempted"
    REJECTED = "rejected"

    ALL = frozenset(
        {
            ARRIVAL,
            PREFILL_QUEUE,
            PREFILL_EXEC,
            KV_TRANSFER,
            DECODE_QUEUE,
            DECODE_STEP,
            COMPLETION,
            PREEMPTED,
            REJECTED,
        }
    )

    #: Kinds that are instantaneous lifecycle events, not intervals.
    INSTANT = frozenset({ARRIVAL, COMPLETION, PREEMPTED, REJECTED})


@dataclass(frozen=True)
class Span:
    """One typed interval (or instant) in a request's lifecycle.

    Attributes:
        request_id: The request this span belongs to.
        kind: One of :class:`SpanKind`.
        start: Virtual-time start, seconds.
        end: Virtual-time end (== ``start`` for instants).
        instance: Name of the instance (or link endpoints) involved.
        batch_size: Size of the batch this work ran in (0 if N/A).
        token_index: Output-token ordinal for ``decode_step`` spans
            (0 is the prefill-produced first token); -1 otherwise.
    """

    request_id: int
    kind: str
    start: float
    end: float
    instance: str = ""
    batch_size: int = 0
    token_index: int = -1

    def __post_init__(self) -> None:
        if self.kind not in SpanKind.ALL:
            raise ValueError(f"unknown span kind {self.kind!r}")
        if self.end < self.start:
            raise ValueError(
                f"span {self.kind!r} of request {self.request_id} ends "
                f"({self.end}) before it starts ({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> "dict[str, object]":
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "instance": self.instance,
            "batch_size": self.batch_size,
            "token_index": self.token_index,
        }


class Tracer:
    """Collects spans in emission order (deterministic under a fixed seed).

    Interval spans use :meth:`begin` / :meth:`end` keyed by
    ``(request_id, kind)``; a second :meth:`begin` on an open key closes
    the dangling span at the new start time (this is what keeps traces
    well-formed across failure re-routing, where a request re-enters a
    queue it never formally left). Fully-known intervals can be appended
    directly with :meth:`span`; lifecycle points with :meth:`instant`.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: "list[Span]" = []
        self._open: "dict[tuple[int, str], tuple[float, str, int]]" = {}

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    def begin(
        self,
        request_id: int,
        kind: str,
        time: float,
        instance: str = "",
        batch_size: int = 0,
    ) -> None:
        """Open an interval span; closes any dangling span of same key."""
        key = (request_id, kind)
        if key in self._open:
            self.end(request_id, kind, time)
        self._open[key] = (time, instance, batch_size)

    def end(self, request_id: int, kind: str, time: float) -> None:
        """Close an open interval span.

        Raises:
            KeyError: if no span of this (request, kind) is open.
        """
        start, instance, batch_size = self._open.pop((request_id, kind))
        self.spans.append(
            Span(
                request_id=request_id,
                kind=kind,
                start=start,
                end=time,
                instance=instance,
                batch_size=batch_size,
            )
        )

    def span(
        self,
        request_id: int,
        kind: str,
        start: float,
        end: float,
        instance: str = "",
        batch_size: int = 0,
        token_index: int = -1,
    ) -> None:
        """Append a fully-known interval span."""
        self.spans.append(
            Span(
                request_id=request_id,
                kind=kind,
                start=start,
                end=end,
                instance=instance,
                batch_size=batch_size,
                token_index=token_index,
            )
        )

    def instant(
        self, request_id: int, kind: str, time: float, instance: str = ""
    ) -> None:
        """Append a zero-width lifecycle event."""
        self.spans.append(
            Span(
                request_id=request_id,
                kind=kind,
                start=time,
                end=time,
                instance=instance,
            )
        )

    # ------------------------------------------------------------------
    def open_spans(self) -> "list[tuple[int, str, float]]":
        """Still-open intervals as (request_id, kind, start) — requests
        in flight when the simulation stopped."""
        return sorted(
            (rid, kind, entry[0]) for (rid, kind), entry in self._open.items()
        )

    def spans_for(self, request_id: int) -> "list[Span]":
        """All completed spans of one request, in emission order."""
        return [s for s in self.spans if s.request_id == request_id]


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op, every query empty.

    Components default to the shared :data:`NULL_TRACER` so span
    emission costs one attribute load and a no-op call — and the
    per-token hot path skips even that by guarding on ``enabled``.
    """

    enabled = False

    def begin(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def end(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def span(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass


#: Shared no-op tracer used when tracing is disabled.
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Accessors and exporters
# ----------------------------------------------------------------------
def spans_by_request(spans: "list[Span]") -> "dict[int, list[Span]]":
    """Group spans per request, preserving emission order."""
    grouped: "dict[int, list[Span]]" = {}
    for span in spans:
        grouped.setdefault(span.request_id, []).append(span)
    return grouped


def to_jsonl(spans: "list[Span]") -> str:
    """Serialize spans as JSON-lines, one span per line.

    Keys are sorted and floats use Python ``repr`` semantics, so two
    identical simulations produce byte-identical output — the property
    the golden-trace regression test pins.
    """
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, spans: "list[Span]") -> None:
    """Write :func:`to_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(to_jsonl(spans))


def chrome_trace_events(spans: "list[Span]") -> "list[dict]":
    """Spans as Chrome ``trace_event`` objects (one track per request).

    Interval spans become complete events (``ph: "X"``); lifecycle
    points become instant events (``ph: "i"``). Times are microseconds
    of virtual time; ``pid`` 1 is the synthetic "requests" process and
    ``tid`` is the request id, so Perfetto renders one lifecycle row per
    request.
    """
    events: "list[dict]" = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "requests"},
        }
    ]
    named: "set[int]" = set()
    for span in spans:
        if span.request_id not in named:
            named.add(span.request_id)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": span.request_id,
                    "args": {"name": f"request {span.request_id}"},
                }
            )
        args: "dict[str, object]" = {"instance": span.instance}
        if span.batch_size:
            args["batch_size"] = span.batch_size
        if span.token_index >= 0:
            args["token_index"] = span.token_index
        event: "dict[str, object]" = {
            "name": span.kind,
            "pid": 1,
            "tid": span.request_id,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.kind in SpanKind.INSTANT or span.start == span.end:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        events.append(event)
    return events


def to_chrome_trace(spans: "list[Span]") -> "dict[str, object]":
    """The full Chrome-trace JSON object (load in Perfetto as-is)."""
    return {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: "list[Span]") -> None:
    """Write the Chrome-trace JSON to ``path`` (deterministic bytes)."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(to_chrome_trace(spans), fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
