"""DistServe's disaggregated serving system (§4.3 runtime architecture).

Arrivals flow through a centralized controller: dispatch to the prefill
instance with the shortest queue, prefill, KV-cache migration, dispatch
to the least-loaded decode instance, decoding. KV transfer uses the
*pull* policy by default — decode instances fetch caches only when they
have reserved memory, using the prefill instances' GPU memory as the
queuing buffer, so bursts cannot overload decode memory. The *push*
policy (transfers fired immediately at prefill completion) is kept for
the burstiness ablation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from .base import ServingSystem
from .dispatch import Dispatcher
from ..scheduling.config import SchedulingConfig
from ..hardware.network import NVLINK, NetworkLink
from ..latency.comm import kv_cache_bytes
from ..simulator.decode_instance import DecodeInstance
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec
from ..simulator.metrics import MetricsRegistry
from ..simulator.prefill_instance import PrefillInstance
from ..simulator.profiler import Profiler
from ..simulator.request import RequestState
from ..simulator.tracing import SpanKind, Tracer
from ..simulator.transfer import TransferEngine
from ..workload.trace import Request

__all__ = ["DisaggregatedSystem"]


class DisaggregatedSystem(ServingSystem):
    """Prefill and decode pools joined by a KV-cache transfer fabric.

    Args:
        sim: Shared simulation loop.
        prefill_spec: Resources/parallelism of each prefill instance.
        decode_spec: Resources/parallelism of each decode instance.
        num_prefill: Prefill instances (n of Algorithm 1).
        num_decode: Decode instances (m of Algorithm 1).
        transfer_link: Interconnect KV caches cross. Under Algorithm 2's
            stage-colocated placement this is NVLink; under Algorithm 1 on
            a high-affinity cluster it is the cross-node fabric.
        transfer_channels: Parallel channels per migration (corresponding
            pipeline-stage pairs move their shards concurrently).
        transfer_mode: ``"pull"`` (default, §4.3) or ``"push"``.
        dispatch_policy: Routing policy for both pools.
        rng: Needed only for random dispatch.
        tracer: Optional lifecycle tracer, shared with every instance.
        profiler: Optional critical-path profiler, shared with every
            instance and the transfer engine; additionally receives
            blocked-on-transfer intervals per decode instance (pull mode).
        fast_kernel: Enable the fast-forward simulation kernel on every
            instance (bit-identical results; tracing/profiling forces
            decode instances back to the per-step reference path).
        scheduling: Full policy configuration (:mod:`repro.scheduling`)
            shared by every instance; its ``dispatch_policy`` overrides
            the legacy ``dispatch_policy`` keyword.
    """

    def __init__(
        self,
        sim: Simulation,
        prefill_spec: InstanceSpec,
        decode_spec: InstanceSpec,
        num_prefill: int = 1,
        num_decode: int = 1,
        transfer_link: NetworkLink = NVLINK,
        transfer_channels: "int | None" = None,
        transfer_mode: str = "pull",
        dispatch_policy: str = "least_loaded",
        rng: "np.random.Generator | None" = None,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        super().__init__(sim, tracer=tracer, profiler=profiler, scheduling=scheduling)
        if scheduling is not None:
            dispatch_policy = scheduling.dispatch_policy
        if num_prefill <= 0 or num_decode <= 0:
            raise ValueError("need at least one instance of each kind")
        if transfer_mode not in ("pull", "push"):
            raise ValueError(f"unknown transfer_mode {transfer_mode!r}")
        if prefill_spec.model.name != decode_spec.model.name:
            raise ValueError("prefill and decode instances must serve the same model")
        self.prefill_spec = prefill_spec
        self.decode_spec = decode_spec
        self.transfer_mode = transfer_mode
        self._link = transfer_link
        self._channels = (
            transfer_channels
            if transfer_channels is not None
            else min(prefill_spec.config.pp, decode_spec.config.pp)
        )
        self._transfers = TransferEngine(sim, profiler=profiler)
        self.prefill_instances = [
            PrefillInstance(
                sim, prefill_spec, on_prefill_done=self._on_prefill_done,
                name=f"prefill-{i}", tracer=tracer, profiler=profiler,
                fast_kernel=fast_kernel, scheduling=scheduling,
            )
            for i in range(num_prefill)
        ]
        self.decode_instances = [
            DecodeInstance(
                sim, decode_spec, on_request_done=self._on_decode_done,
                name=f"decode-{i}", tracer=tracer, profiler=profiler,
                fast_kernel=fast_kernel, scheduling=scheduling,
            )
            for i in range(num_decode)
        ]
        self._prefill_dispatch = Dispatcher(
            dispatch_policy, load_fn=lambda inst: inst.queue_len, rng=rng
        )
        self._decode_dispatch = Dispatcher(
            dispatch_policy, load_fn=lambda inst: inst.load, rng=rng
        )
        # Pull queues: per decode instance, requests parked on prefill
        # memory awaiting a reservation.
        self._pending_pull: "dict[str, Deque[tuple[RequestState, PrefillInstance]]]" = {
            inst.name: deque() for inst in self.decode_instances
        }
        self._home_prefill: "dict[int, PrefillInstance]" = {}
        # Blocks promised to transfers still in flight, per decode instance.
        self._inflight_blocks: "dict[str, int]" = {
            inst.name: 0 for inst in self.decode_instances
        }
        #: Instances killed via fault injection.
        self.failures = 0

    # ------------------------------------------------------------------
    @property
    def transfer_records(self):
        return self._transfers.records

    def num_gpus(self) -> int:
        return self.prefill_spec.num_gpus * len(
            self.prefill_instances
        ) + self.decode_spec.num_gpus * len(self.decode_instances)

    def _instrument_components(self, registry: MetricsRegistry) -> None:
        for inst in self.prefill_instances:
            inst.instrument(registry)
        for inst in self.decode_instances:
            inst.instrument(registry)
        self._transfers.instrument(registry)
        self._prefill_dispatch.instrument(registry, pool="prefill")
        self._decode_dispatch.instrument(registry, pool="decode")
        registry.gauge(
            "repro_pending_pull_requests",
            "KV caches parked on prefill memory awaiting a decode reservation",
            fn=self._pending_pull_depth,
        )
        registry.gauge(
            "repro_inflight_reserved_blocks",
            "Decode KV blocks promised to transfers still in flight",
            fn=lambda: sum(self._inflight_blocks.values()),
        )
        registry.counter(
            "repro_instance_failures_total", "Instances killed by fault injection",
            fn=lambda: self.failures,
        )

    def _pending_pull_depth(self) -> int:
        # Plain loop: metric callbacks run on the collection hot path and
        # must not allocate per call (reprolint OBS001).
        total = 0
        for queue in self._pending_pull.values():
            total += len(queue)
        return total

    def _note_pending(self, decode: DecodeInstance) -> None:
        """Reconcile the profiler's blocked-on-transfer interval.

        A decode instance counts as blocked while KV caches are parked
        for it on prefill memory or promised to in-flight transfers —
        the §4.3 pull policy's queuing-on-the-prefill-side signal.
        """
        if not self._prof.enabled:
            return
        blocked = (
            bool(self._pending_pull.get(decode.name))
            or self._inflight_blocks.get(decode.name, 0) > 0
        )
        self._prof.note_pending(decode.name, blocked, self.sim.now)

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        state = self._register(request)
        target = self._prefill_dispatch.choose(self.prefill_instances)
        self._home_prefill[state.request_id] = target
        target.submit(state)

    def _on_prefill_done(self, state: RequestState) -> None:
        prefill = self._home_prefill[state.request_id]
        if state.is_finished:
            # Single-output-token request: prefill produced everything;
            # no KV migration or decoding is needed.
            prefill.release_kv(state.request_id)
            self._home_prefill.pop(state.request_id, None)
            self._complete(state)
            return
        decode = self._decode_dispatch.choose(self.decode_instances)
        # The kv_transfer span opens as soon as the cache is ready to
        # migrate: under the pull policy it covers any time parked on
        # prefill memory awaiting a decode-side reservation, matching the
        # record-level transfer stage (prefill_end .. transfer_end).
        self._trace.begin(
            state.request_id,
            SpanKind.KV_TRANSFER,
            self.sim.now,
            f"{prefill.name}->{decode.name}",
        )
        if self.transfer_mode == "push":
            self._start_transfer(state, prefill, decode)
        else:
            self._pending_pull[decode.name].append((state, prefill))
            self._pump_pulls(decode)

    def _pump_pulls(self, decode: DecodeInstance) -> None:
        """Initiate pulls while the decode instance can reserve memory."""
        queue = self._pending_pull[decode.name]
        while queue:
            state, prefill = queue[0]
            if not decode.can_reserve(
                state, extra_blocks=self._inflight_blocks[decode.name]
            ):
                break
            queue.popleft()
            self._inflight_blocks[decode.name] += decode.reservation_blocks(state)
            self._start_transfer(state, prefill, decode)
        self._note_pending(decode)

    def _start_transfer(
        self,
        state: RequestState,
        prefill: PrefillInstance,
        decode: DecodeInstance,
    ) -> None:
        # The migrated cache covers the full current context (prompt plus
        # any tokens already generated before a failure-recompute).
        num_bytes = kv_cache_bytes(self.prefill_spec.model, state.context_len)
        state.stamp("transfer_start", self.sim.now)

        def _done() -> None:
            state.stamp("transfer_end", self.sim.now)
            self._trace.end(state.request_id, SpanKind.KV_TRANSFER, self.sim.now)
            prefill.release_kv(state.request_id)
            self._home_prefill.pop(state.request_id, None)
            if self.transfer_mode == "pull" and decode.name in self._inflight_blocks:
                self._inflight_blocks[decode.name] -= decode.reservation_blocks(state)
                self._note_pending(decode)
            if not decode.alive:
                # The destination died while the cache was in flight; the
                # data is lost — recompute on the prefill side.
                state.recompute_len = state.context_len
                target = self._prefill_dispatch.choose(self.prefill_instances)
                self._home_prefill[state.request_id] = target
                target.submit(state)
                return
            decode.submit(state)

        self._transfers.submit(
            request_id=state.request_id,
            num_bytes=num_bytes,
            link=self._link,
            on_done=_done,
            num_parallel_channels=self._channels,
        )

    # ------------------------------------------------------------------
    # Fault injection and recovery (the paper's §4.3 future work).
    # ------------------------------------------------------------------
    def fail_prefill(self, name: str) -> int:
        """Kill a prefill instance; re-route its requests.

        Queued and in-flight requests restart prefill on surviving
        instances. Requests whose KV was parked on the failed instance
        (pending pull) lose it and must recompute their prefill.

        Returns:
            The number of requests re-routed.
        """
        victim = self._instance(self.prefill_instances, name)
        if len(self.prefill_instances) <= 1:
            raise RuntimeError("cannot fail the last prefill instance")
        lost = victim.fail()
        self.prefill_instances.remove(victim)
        self.failures += 1
        # Parked-KV requests: pull entries pointing at the dead instance.
        for queue in self._pending_pull.values():
            parked = [(s, p) for s, p in queue if p is victim]
            for entry in parked:
                queue.remove(entry)
                state = entry[0]
                state.recompute_len = state.context_len
                lost.append(state)
        for decode in self.decode_instances:
            self._note_pending(decode)
        rerouted = 0
        for state in lost:
            target = self._prefill_dispatch.choose(self.prefill_instances)
            self._home_prefill[state.request_id] = target
            target.submit(state)
            rerouted += 1
        return rerouted

    def fail_decode(self, name: str) -> int:
        """Kill a decode instance; victims re-prefill their full context.

        This is the fault *propagation* path the paper warns about: one
        decode failure sends a burst of recompute work to the prefill
        pool.

        Returns:
            The number of requests sent back for re-prefill.
        """
        victim = self._instance(self.decode_instances, name)
        if len(self.decode_instances) <= 1:
            raise RuntimeError("cannot fail the last decode instance")
        lost = victim.fail()
        self.decode_instances.remove(victim)
        self.failures += 1
        if self._prof.enabled:
            self._prof.end_pending(victim.name, self.sim.now)
        # Requests queued for pull toward the dead instance keep their
        # prefill-side KV; just re-route the pull to a survivor.
        stranded = list(self._pending_pull.pop(victim.name, ()))
        self._inflight_blocks.pop(victim.name, None)
        for state, prefill in stranded:
            decode = self._decode_dispatch.choose(self.decode_instances)
            self._pending_pull[decode.name].append((state, prefill))
            self._pump_pulls(decode)
        # Active/waiting victims lost their decode-side KV: re-prefill.
        for state in lost:
            target = self._prefill_dispatch.choose(self.prefill_instances)
            self._home_prefill[state.request_id] = target
            target.submit(state)
        return len(lost)

    @staticmethod
    def _instance(pool, name: str):
        for inst in pool:
            if inst.name == name:
                return inst
        known = ", ".join(i.name for i in pool)
        raise KeyError(f"no instance {name!r}; known: {known}")

    def _on_decode_done(self, state: RequestState) -> None:
        self._complete(state)
        # Freed KV may unblock pending pulls on that instance.
        for decode in self.decode_instances:
            if self._pending_pull[decode.name]:
                self._pump_pulls(decode)
