"""Colocated serving system: N replicas of a vLLM-like engine.

The baseline of §6. Each replica colocates prefill and decoding on the
same GPUs; arrivals are dispatched across replicas (least-loaded by
default). ``policy`` selects the iteration scheduler — see
:mod:`repro.simulator.colocated_instance`.
"""

from __future__ import annotations

import numpy as np

from .base import ServingSystem
from .dispatch import Dispatcher
from ..scheduling.config import SchedulingConfig
from ..simulator.colocated_instance import ColocatedInstance
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec
from ..simulator.metrics import MetricsRegistry
from ..simulator.profiler import Profiler
from ..simulator.request import RequestState
from ..simulator.tracing import Tracer
from ..workload.trace import Request

__all__ = ["ColocatedSystem"]


class ColocatedSystem(ServingSystem):
    """One or more colocated replicas behind a dispatcher.

    Args:
        sim: Shared simulation loop.
        spec: Per-replica resources and parallelism.
        num_replicas: Model replicas (rate capacity scales linearly, §2.2).
        policy: Iteration scheduling policy of each replica.
        dispatch_policy: How arrivals are routed across replicas.
        max_prefill_tokens: Per-iteration prefill token budget.
        chunk_size: Chunk budget for the ``"chunked"`` policy.
        rng: Needed only for random dispatch.
        tracer: Optional lifecycle tracer, shared with every replica.
        profiler: Optional critical-path profiler, shared with every
            replica.
        fast_kernel: Evaluate iteration latency through the memoized
            timers (bit-identical results).
        scheduling: Full policy configuration (:mod:`repro.scheduling`)
            shared by every replica; its ``dispatch_policy`` overrides
            the legacy ``dispatch_policy`` keyword.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        num_replicas: int = 1,
        policy: str = "prefill_priority",
        dispatch_policy: str = "least_loaded",
        max_prefill_tokens: int = 2048,
        chunk_size: int = 512,
        rng: "np.random.Generator | None" = None,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        super().__init__(sim, tracer=tracer, profiler=profiler, scheduling=scheduling)
        if num_replicas <= 0:
            raise ValueError(f"num_replicas must be positive, got {num_replicas}")
        if scheduling is not None:
            dispatch_policy = scheduling.dispatch_policy
        self.spec = spec
        self.instances = [
            ColocatedInstance(
                sim,
                spec,
                on_request_done=self._complete,
                policy=policy,
                max_prefill_tokens=max_prefill_tokens,
                chunk_size=chunk_size,
                name=f"colocated-{i}",
                tracer=tracer,
                profiler=profiler,
                fast_kernel=fast_kernel,
                scheduling=scheduling,
            )
            for i in range(num_replicas)
        ]
        self._dispatcher = Dispatcher(
            dispatch_policy, load_fn=lambda inst: inst.load, rng=rng
        )
        #: Replicas killed via fault injection.
        self.failures = 0

    def submit(self, request: Request) -> None:
        state = self._register(request)
        self._dispatcher.choose(self.instances).submit(state)

    def fail_replica(self, name: str) -> int:
        """Kill a replica; re-route its requests to the survivors.

        Victims whose prefill started (or that were decoding) lost
        their KV and re-run prefill over their full current context on
        the replica they land on.

        Returns:
            The number of requests re-routed.
        """
        victim = None
        for inst in self.instances:
            if inst.name == name:
                victim = inst
                break
        if victim is None:
            known = ", ".join(i.name for i in self.instances)
            raise KeyError(f"no replica {name!r}; known: {known}")
        if len(self.instances) <= 1:
            raise RuntimeError("cannot fail the last replica")
        lost = victim.fail()
        self.instances.remove(victim)
        self.failures += 1
        for state in lost:
            self._dispatcher.choose(self.instances).submit(state)
        return len(lost)

    def num_gpus(self) -> int:
        return self.spec.num_gpus * len(self.instances)

    def _instrument_components(self, registry: MetricsRegistry) -> None:
        for inst in self.instances:
            inst.instrument(registry)
        self._dispatcher.instrument(registry, pool="replica")

    @property
    def total_preemptions(self) -> int:
        return sum(inst.preemptions for inst in self.instances)
