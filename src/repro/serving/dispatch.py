"""Dispatch policies for routing requests across instances.

§4.3: requests are "dispatched to the prefill instance with the shortest
queue ... followed by dispatch to the least loaded decoding instance".
The policy implementations live in :mod:`repro.scheduling.dispatch`;
this module keeps the serving-layer :class:`Dispatcher` wrapper that
adds the routing counter and metrics export.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..scheduling.config import DISPATCH_POLICIES
from ..scheduling.dispatch import DispatchPolicy, make_dispatch_policy
from ..simulator.metrics import MetricsRegistry

__all__ = ["Dispatcher", "make_dispatcher", "DISPATCH_POLICIES"]

T = TypeVar("T")


class Dispatcher:
    """Chooses a target instance for each incoming request.

    Args:
        policy: One of :data:`DISPATCH_POLICIES`.
        load_fn: Maps an instance to its current load (used by
            ``least_loaded`` and ``power_of_two``; ties break by
            instance order / first draw).
        rng: Required for the ``random`` and ``power_of_two`` policies.
    """

    def __init__(
        self,
        policy: str,
        load_fn: "Callable[[T], float]",
        rng: "np.random.Generator | None" = None,
    ) -> None:
        self._impl: "DispatchPolicy" = make_dispatch_policy(
            policy, load_fn=load_fn, rng=rng
        )
        self.policy = policy
        #: Routing decisions made (instrumentation). Only decisions that
        #: actually routed a request count: the empty-pool ValueError is
        #: raised before the counter moves.
        self.dispatches = 0

    def instrument(self, registry: MetricsRegistry, pool: str) -> None:
        """Export the routing-decision counter for this pool."""
        registry.counter(
            "repro_dispatch_total", "Routing decisions, by pool and policy",
            labels={"pool": pool, "policy": self.policy},
            fn=lambda: self.dispatches,
        )

    def choose(self, instances: "Sequence[T]") -> T:
        """Pick the target instance for one request."""
        if not instances:
            raise ValueError("no instances to dispatch to")
        self.dispatches += 1
        return self._impl.select(instances)


def make_dispatcher(
    policy: str,
    load_fn: "Callable[[T], float]",
    rng: "np.random.Generator | None" = None,
) -> Dispatcher:
    """Convenience constructor mirroring :class:`Dispatcher`."""
    return Dispatcher(policy=policy, load_fn=load_fn, rng=rng)
