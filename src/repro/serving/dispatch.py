"""Dispatch policies for routing requests across instances.

§4.3: requests are "dispatched to the prefill instance with the shortest
queue ... followed by dispatch to the least loaded decoding instance".
Round-robin and random policies are provided for the dispatch-policy
ablation.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..simulator.metrics import MetricsRegistry

__all__ = ["Dispatcher", "make_dispatcher", "DISPATCH_POLICIES"]

T = TypeVar("T")

DISPATCH_POLICIES = ("least_loaded", "round_robin", "random")


class Dispatcher:
    """Chooses a target instance for each incoming request.

    Args:
        policy: One of :data:`DISPATCH_POLICIES`.
        load_fn: Maps an instance to its current load (used by
            ``least_loaded``; ties break by instance order).
        rng: Required for the ``random`` policy.
    """

    def __init__(
        self,
        policy: str,
        load_fn: "Callable[[T], float]",
        rng: "np.random.Generator | None" = None,
    ) -> None:
        if policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {DISPATCH_POLICIES}"
            )
        if policy == "random" and rng is None:
            raise ValueError("random dispatch requires an rng")
        self.policy = policy
        self._load_fn = load_fn
        self._rng = rng
        self._next = 0
        #: Routing decisions made (instrumentation).
        self.dispatches = 0

    def instrument(self, registry: MetricsRegistry, pool: str) -> None:
        """Export the routing-decision counter for this pool."""
        registry.counter(
            "repro_dispatch_total", "Routing decisions, by pool and policy",
            labels={"pool": pool, "policy": self.policy},
            fn=lambda: self.dispatches,
        )

    def choose(self, instances: "Sequence[T]") -> T:
        """Pick the target instance for one request."""
        if not instances:
            raise ValueError("no instances to dispatch to")
        self.dispatches += 1
        if self.policy == "least_loaded":
            return min(instances, key=self._load_fn)
        if self.policy == "round_robin":
            chosen = instances[self._next % len(instances)]
            self._next += 1
            return chosen
        idx = int(self._rng.integers(0, len(instances)))
        return instances[idx]


def make_dispatcher(
    policy: str,
    load_fn: "Callable[[T], float]",
    rng: "np.random.Generator | None" = None,
) -> Dispatcher:
    """Convenience constructor mirroring :class:`Dispatcher`."""
    return Dispatcher(policy=policy, load_fn=load_fn, rng=rng)
