"""Phase-only serving systems, used by Figure 1's motivation experiment.

Figure 1 compares a colocated system against (a) a system serving *only*
the prefill phase — its TTFT is unpolluted by decoding — and (b) a
system serving *only* decoding — its TPOT is unpolluted by prefill.
These are idealized single-phase engines:

* :class:`PrefillOnlySystem` completes a request when its first token is
  produced; subsequent output tokens are stamped instantly so records
  stay well-formed (TPOT ~ 0 by construction, only TTFT is meaningful).
* :class:`DecodeOnlySystem` assumes the KV cache materializes for free
  at arrival (TTFT ~ 0 by construction, only TPOT is meaningful).
"""

from __future__ import annotations

from .base import ServingSystem
from .dispatch import Dispatcher
from ..scheduling.config import SchedulingConfig
from ..simulator.decode_instance import DecodeInstance
from ..simulator.events import Simulation
from ..simulator.instance import InstanceSpec
from ..simulator.metrics import MetricsRegistry
from ..simulator.prefill_instance import PrefillInstance
from ..simulator.profiler import Profiler
from ..simulator.request import RequestState
from ..simulator.tracing import SpanKind, Tracer
from ..workload.trace import Request

__all__ = ["PrefillOnlySystem", "DecodeOnlySystem"]


class PrefillOnlySystem(ServingSystem):
    """Serves only the prefill phase (Figure 1 upper, orange curve)."""

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        num_instances: int = 1,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        super().__init__(sim, tracer=tracer, profiler=profiler, scheduling=scheduling)
        self.spec = spec
        self.instances = [
            PrefillInstance(
                sim, spec, on_prefill_done=self._finish, name=f"prefill-{i}",
                tracer=tracer, profiler=profiler, fast_kernel=fast_kernel,
                scheduling=scheduling,
            )
            for i in range(num_instances)
        ]
        # Phase-only engines are single-pool probes: dispatch stays
        # least-loaded regardless of the configured cross-pool policy.
        self._dispatch = Dispatcher("least_loaded", load_fn=lambda i: i.queue_len)

    def _instrument_components(self, registry: MetricsRegistry) -> None:
        for inst in self.instances:
            inst.instrument(registry)
        self._dispatch.instrument(registry, pool="prefill")

    def submit(self, request: Request) -> None:
        state = self._register(request)
        self._dispatch.choose(self.instances).submit(state)

    def _finish(self, state: RequestState) -> None:
        # The parked KV is dropped immediately (no decode side exists) and
        # remaining tokens are free — only TTFT is under test.
        for inst in self.instances:
            inst.release_kv(state.request_id)
        if self._trace.enabled:
            while not state.is_finished:
                state.record_token(self.sim.now)
                self._trace.span(
                    state.request_id,
                    SpanKind.DECODE_STEP,
                    self.sim.now,
                    self.sim.now,
                    token_index=state.generated - 1,
                )
        else:
            # Bulk-stamp the free tokens: one extend instead of an
            # O(output_len) loop of property reads and span calls.
            remaining = state.remaining_tokens
            if remaining > 0:
                state.record_tokens([self.sim.now] * remaining)
        self._complete(state)

    def num_gpus(self) -> int:
        return self.spec.num_gpus * len(self.instances)


class DecodeOnlySystem(ServingSystem):
    """Serves only the decoding phase (Figure 1 lower, green curve)."""

    def __init__(
        self,
        sim: Simulation,
        spec: InstanceSpec,
        num_instances: int = 1,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        fast_kernel: bool = True,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        super().__init__(sim, tracer=tracer, profiler=profiler, scheduling=scheduling)
        self.spec = spec
        self.instances = [
            DecodeInstance(
                sim, spec, on_request_done=self._complete, name=f"decode-{i}",
                tracer=tracer, profiler=profiler, fast_kernel=fast_kernel,
                scheduling=scheduling,
            )
            for i in range(num_instances)
        ]
        self._dispatch = Dispatcher("least_loaded", load_fn=lambda i: i.load)

    def _instrument_components(self, registry: MetricsRegistry) -> None:
        for inst in self.instances:
            inst.instrument(registry)
        self._dispatch.instrument(registry, pool="decode")

    def submit(self, request: Request) -> None:
        state = self._register(request)
        # The KV cache appears for free; the first token is emitted
        # immediately so decode steps generate the remaining tokens.
        state.stamp("prefill_start", self.sim.now)
        state.stamp("prefill_end", self.sim.now)
        state.stamp("transfer_end", self.sim.now)
        state.record_token(self.sim.now)
        self._trace.span(
            state.request_id,
            SpanKind.DECODE_STEP,
            self.sim.now,
            self.sim.now,
            token_index=0,
        )
        if state.is_finished:
            self._complete(state)
            return
        self._dispatch.choose(self.instances).submit(state)

    def num_gpus(self) -> int:
        return self.spec.num_gpus * len(self.instances)
