"""Serving-system abstraction and the trace runner.

A serving system accepts requests and eventually produces one
:class:`~repro.simulator.request.RequestRecord` per finished request.
:func:`simulate_trace` drives any system with a workload trace inside a
fresh simulation and packages the outcome.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..scheduling.config import SchedulingConfig
from ..simulator.events import Simulation
from ..simulator.metrics import MetricsRegistry, SloMonitor
from ..simulator.profiler import NULL_PROFILER, Profiler
from ..simulator.request import RequestRecord, RequestState
from ..simulator.tracing import NULL_TRACER, Span, SpanKind, Tracer
from ..simulator.transfer import TransferRecord
from ..workload.trace import Request, Trace

__all__ = ["ServingSystem", "SimulationResult", "simulate_trace"]


class ServingSystem(abc.ABC):
    """Base class for simulated serving systems.

    Subclasses implement :meth:`submit`; completion flows back through
    :meth:`_complete`, which freezes the request into a record. An
    optional :class:`~repro.simulator.tracing.Tracer` receives per-request
    lifecycle spans (``arrival``/``completion`` from this base; queue,
    exec, transfer, and step spans from the instances the subclass wires
    the tracer into). An optional
    :class:`~repro.simulator.profiler.Profiler` receives instance-level
    execution events through the same injection pattern — subclasses
    forward it to their instances and transfer engines.
    """

    def __init__(
        self,
        sim: Simulation,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
        scheduling: "SchedulingConfig | None" = None,
    ) -> None:
        self.sim = sim
        self.tracer = tracer
        self.profiler = profiler
        #: The policy triple this system runs under (None = paper
        #: defaults). Subclasses thread it into their instances and
        #: dispatchers; exposed here so reports can label runs.
        self.scheduling = scheduling
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._prof = profiler if profiler is not None else NULL_PROFILER
        self.records: "list[RequestRecord]" = []
        self._submitted = 0
        #: Requests refused admission (admission-control extensions).
        self.rejections = 0
        self._monitor: "SloMonitor | None" = None

    @abc.abstractmethod
    def submit(self, request: Request) -> None:
        """Accept one arriving request."""

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def unfinished(self) -> int:
        """Requests accepted but not yet completed."""
        return self._submitted - len(self.records)

    @property
    def monitor(self) -> "SloMonitor | None":
        """The attached online SLO monitor, if any."""
        return self._monitor

    def attach_monitor(self, monitor: SloMonitor) -> None:
        """Feed arrivals/completions into an online SLO monitor.

        Attach before the first arrival so cumulative attainment covers
        every request; the monitor then matches the offline
        :func:`repro.analysis.slo.slo_attainment` computation exactly.
        """
        self._monitor = monitor

    def instrument(self, registry: MetricsRegistry) -> None:
        """Register system-level metrics, then per-component ones.

        Idempotent; subclasses extend :meth:`_instrument_components` to
        cover their instances, dispatchers, and transfer engines.
        """
        registry.counter(
            "repro_requests_submitted_total", "Requests accepted by the system",
            fn=lambda: self._submitted,
        )
        registry.counter(
            "repro_requests_completed_total", "Requests fully served",
            fn=lambda: len(self.records),
        )
        registry.counter(
            "repro_requests_rejected_total", "Requests refused admission",
            fn=lambda: self.rejections,
        )
        registry.gauge(
            "repro_requests_in_flight", "Accepted but not yet completed",
            fn=lambda: self.unfinished,
        )
        self._instrument_components(registry)

    def _instrument_components(self, registry: MetricsRegistry) -> None:
        """Subclass hook: instrument instances/dispatchers/transfers."""

    def _register(self, request: Request) -> RequestState:
        self._submitted += 1
        self._trace.instant(request.request_id, SpanKind.ARRIVAL, self.sim.now)
        if self._monitor is not None:
            self._monitor.observe_arrival(request)
        return RequestState(request=request)

    def _complete(self, state: RequestState) -> None:
        record = state.to_record()
        self.records.append(record)
        self._trace.instant(state.request_id, SpanKind.COMPLETION, self.sim.now)
        if self._monitor is not None:
            self._monitor.observe_completion(record)

    def num_gpus(self) -> int:
        """GPUs provisioned by this system (for per-GPU goodput)."""
        raise NotImplementedError


@dataclass
class SimulationResult:
    """Outcome of one trace simulation."""

    records: "list[RequestRecord]"
    unfinished: int
    sim_time: float
    events_processed: int
    transfer_records: "list[TransferRecord]" = field(default_factory=list)
    num_gpus: int = 0
    #: Lifecycle spans, when the system was built with a tracer.
    spans: "list[Span]" = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.records)


def simulate_trace(
    system: ServingSystem,
    trace: Trace,
    max_sim_time: "float | None" = None,
    max_events: "int | None" = None,
) -> SimulationResult:
    """Feed ``trace`` into ``system`` and run the simulation to completion.

    Args:
        system: A serving system bound to a fresh :class:`Simulation`.
        trace: Arrival-ordered requests.
        max_sim_time: Optional virtual-time cutoff (requests still in
            flight at the cutoff are reported as unfinished).
        max_events: Safety valve for runaway simulations.
    """
    sim = system.sim
    for request in trace:
        assert request.arrival_time >= sim.now  # traces arrive in the future
        sim.schedule_at(request.arrival_time, _make_arrival(system, request))
    sim.run(until=max_sim_time, max_events=max_events)
    profiler = getattr(system, "profiler", None)
    if profiler is not None:
        profiler.finish(sim.now)
    transfers = getattr(system, "transfer_records", [])
    try:
        gpus = system.num_gpus()
    except NotImplementedError:
        gpus = 0
    tracer = getattr(system, "tracer", None)
    return SimulationResult(
        records=list(system.records),
        unfinished=system.unfinished,
        sim_time=sim.now,
        events_processed=sim.events_processed,
        transfer_records=list(transfers),
        num_gpus=gpus,
        spans=list(tracer.spans) if tracer is not None else [],
    )


def _make_arrival(system: ServingSystem, request: Request):
    def _arrive() -> None:
        system.submit(request)

    return _arrive
