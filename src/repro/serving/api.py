"""OpenAI-compatible frontend facade (§5).

The original DistServe exposes an OpenAI-style completions interface in
front of its orchestration layer. This module reproduces that surface
for the simulated stack: clients construct :class:`CompletionRequest`
objects (prompt, ``max_tokens``, ``temperature``), submit them to an
:class:`APIFrontend` bound to any serving system, and receive
:class:`CompletionResponse` objects carrying the generation together
with per-token timing (the "stream").

Tokenization is a deterministic toy byte-pair-free scheme (~4 chars per
token) — adequate because the simulator consumes only token *counts*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .base import ServingSystem
from ..simulator.events import Simulation
from ..simulator.request import RequestRecord
from ..workload.trace import Request

__all__ = [
    "CompletionRequest",
    "CompletionResponse",
    "APIFrontend",
    "count_tokens",
]

#: Average characters per token of the toy tokenizer.
CHARS_PER_TOKEN = 4


def count_tokens(text: str) -> int:
    """Token count of ``text`` under the toy tokenizer (>= 1)."""
    return max(1, math.ceil(len(text) / CHARS_PER_TOKEN))


@dataclass(frozen=True)
class CompletionRequest:
    """An OpenAI-style completion request.

    Attributes:
        prompt: Input text (tokenized by :func:`count_tokens`).
        max_tokens: Maximum tokens to generate.
        temperature: Sampling temperature; only influences the sampled
            output length in this reproduction (generation content is
            not modeled).
        stop_probability: Per-token probability of emitting the
            termination token; the effective output length is
            min(geometric sample, ``max_tokens``).
    """

    prompt: str
    max_tokens: int = 128
    temperature: float = 1.0
    stop_probability: float = 0.01

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ValueError("prompt must be non-empty")
        if self.max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {self.max_tokens}")
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if not 0 < self.stop_probability <= 1:
            raise ValueError("stop_probability must be in (0, 1]")

    def sample_output_len(self, rng: np.random.Generator) -> int:
        """Sampled generation length.

        Temperature 0 is deterministic decoding: the model runs to
        ``max_tokens`` (or the first stop token — modeled as the
        geometric mean length). Higher temperatures add variance.
        """
        if self.temperature == 0:
            expected = min(self.max_tokens, int(1.0 / self.stop_probability))
            return max(1, expected)
        length = int(rng.geometric(self.stop_probability))
        return max(1, min(length, self.max_tokens))


@dataclass(frozen=True)
class CompletionResponse:
    """Completion result with streaming-token timing.

    Attributes:
        request_id: Frontend-assigned id.
        prompt_tokens: Tokens consumed by the prompt.
        completion_tokens: Tokens generated.
        created: Virtual time the request was accepted.
        first_token_time: Virtual time of the first streamed token.
        finish_time: Virtual time of the final token.
        record: The underlying latency record.
    """

    request_id: int
    prompt_tokens: int
    completion_tokens: int
    created: float
    first_token_time: float
    finish_time: float
    record: RequestRecord

    @property
    def ttft(self) -> float:
        return self.first_token_time - self.created

    @property
    def tpot(self) -> float:
        return self.record.tpot


class APIFrontend:
    """Binds completion requests to a simulated serving system.

    Usage::

        sim = Simulation()
        system = DisaggregatedSystem(sim, spec, spec)
        api = APIFrontend(sim, system, seed=0)
        api.submit_at(0.5, CompletionRequest(prompt="Hello world"))
        sim.run()
        responses = api.responses()
    """

    def __init__(self, sim: Simulation, system: ServingSystem, seed: int = 0) -> None:
        self._sim = sim
        self._system = system
        self._rng = np.random.default_rng(seed)
        self._next_id = 0
        self._pending: "dict[int, tuple[CompletionRequest, float]]" = {}
        self._responses: "list[CompletionResponse]" = []

    def submit_at(self, time: float, request: CompletionRequest) -> int:
        """Schedule a completion request at virtual time ``time``.

        Returns the assigned request id.
        """
        request_id = self._next_id
        self._next_id += 1
        input_len = count_tokens(request.prompt)
        output_len = request.sample_output_len(self._rng)
        internal = Request(
            request_id=request_id,
            arrival_time=time,
            input_len=input_len,
            output_len=output_len,
        )
        self._pending[request_id] = (request, time)
        assert time >= self._sim.now  # arrivals cannot be backdated
        self._sim.schedule_at(time, lambda: self._system.submit(internal))
        return request_id

    def responses(self) -> "list[CompletionResponse]":
        """Collect responses for all completed requests (idempotent)."""
        done_ids = {r.request_id for r in self._responses}
        for record in self._system.records:
            if record.request_id in done_ids or record.request_id not in self._pending:
                continue
            _, created = self._pending[record.request_id]
            self._responses.append(
                CompletionResponse(
                    request_id=record.request_id,
                    prompt_tokens=record.input_len,
                    completion_tokens=record.output_len,
                    created=created,
                    first_token_time=created + record.ttft,
                    finish_time=record.finish_time,
                    record=record,
                )
            )
        return list(self._responses)
