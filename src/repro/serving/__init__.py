"""Serving systems: colocated baseline, disaggregated DistServe, phase-only."""

from .api import APIFrontend, CompletionRequest, CompletionResponse, count_tokens
from .base import ServingSystem, SimulationResult, simulate_trace
from .colocated import ColocatedSystem
from .disaggregated import DisaggregatedSystem
from .dispatch import DISPATCH_POLICIES, Dispatcher, make_dispatcher
from .phase_only import DecodeOnlySystem, PrefillOnlySystem

__all__ = [
    "APIFrontend",
    "CompletionRequest",
    "CompletionResponse",
    "count_tokens",
    "ServingSystem",
    "SimulationResult",
    "simulate_trace",
    "ColocatedSystem",
    "DisaggregatedSystem",
    "DISPATCH_POLICIES",
    "Dispatcher",
    "make_dispatcher",
    "DecodeOnlySystem",
    "PrefillOnlySystem",
]
