"""repro: a simulation-backed reproduction of DistServe (OSDI 2024).

DistServe disaggregates LLM serving into prefill and decoding instances
and co-optimizes per-phase parallelism and replication for per-GPU
goodput. This package provides:

* ``repro.models`` / ``repro.hardware`` — model and cluster descriptions;
* ``repro.latency`` — the paper's Appendix A analytical latency model;
* ``repro.queueing`` — the M/D/1 analysis of §3.1 (Eq. 1–3);
* ``repro.workload`` — synthetic ShareGPT/HumanEval/LongBench workloads;
* ``repro.simulator`` — the discrete-event cluster simulator;
* ``repro.serving`` — colocated (vLLM-like) and disaggregated systems;
* ``repro.core`` — Algorithms 1/2 placement search, goodput optimization,
  and replanning;
* ``repro.analysis`` — SLO attainment, percentiles, latency breakdowns.

Quickstart::

    from repro import quickserve

    result = quickserve(model="opt-13b", rate=2.0, num_requests=200)
    print(result.records[0])
"""

from __future__ import annotations

from .version import __version__

__all__ = ["__version__", "quickserve"]


def quickserve(
    model: str = "opt-13b",
    rate: float = 2.0,
    num_requests: int = 200,
    dataset: str = "sharegpt",
    num_prefill: int = 1,
    num_decode: int = 1,
    seed: int = 0,
):
    """One-call demo: run a small disaggregated deployment on a workload.

    Returns the :class:`~repro.serving.base.SimulationResult` of serving
    ``num_requests`` requests at ``rate`` req/s with ``num_prefill``
    prefill and ``num_decode`` decode instances of ``model``.
    """
    import numpy as np

    from .models import get_model
    from .serving import DisaggregatedSystem, simulate_trace
    from .simulator import InstanceSpec, Simulation
    from .workload import generate_trace, get_dataset

    arch = get_model(model)
    spec = InstanceSpec(model=arch)
    sim = Simulation()
    system = DisaggregatedSystem(
        sim, spec, spec, num_prefill=num_prefill, num_decode=num_decode
    )
    trace = generate_trace(
        get_dataset(dataset),
        rate=rate,
        num_requests=num_requests,
        rng=np.random.default_rng(seed),
    )
    return simulate_trace(system, trace)
