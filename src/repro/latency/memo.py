"""Memoized batch-latency evaluators for the fast-forward kernel.

The per-step simulator hot path evaluates the Appendix A latency model
thousands of times per trial. Each evaluation re-validates its inputs,
re-materializes per-request length lists, and re-sums them — all O(B)
work for an answer that, between batch-membership changes, depends only
on two scalars: the batch size and the total context length.

This module hoists the O(B) work out of the step loop:

* :class:`DecodeStepTimer` — bound to one (model, parallelism, coeffs,
  links) tuple, validated once at construction. Per step it needs only
  ``(batch_size, total_context)``; everything that depends on the batch
  size alone (GEMM terms, all-reduce time, activation transfer) is
  cached in a small dict keyed by batch size.
* :class:`PrefillBatchTimer` — same binding for prefill batches. The
  whole :func:`repro.latency.parallel.prefill_times` chain depends only
  on ``(sum(lens), sum(l*l))``, so results memoize on that pair.

**Exactness contract.** Both evaluators reproduce the reference
functions *bitwise*: every arithmetic expression below mirrors the
operation order and associativity of :func:`decode_step_latency`,
:func:`prefill_latency`, :func:`tp_allreduce_time_per_layer`, and
``_pipeline_times`` exactly, so ``DecodeStepTimer.request_latency(B, T)
== decode_times(..., lens).request_latency`` for any ``lens`` with
``len(lens) == B`` and ``sum(lens) == T``. The parity suite in
``tests/test_kernel.py`` asserts this over randomized inputs.
"""

from __future__ import annotations

from typing import Callable

from .coefficients import (
    LatencyCoefficients,
    attn_term_prefill,
    gemm_term_decode,
    gemm_term_prefill,
)
from .parallel import ParallelismConfig, tp_allreduce_time_per_layer
from ..hardware.network import NVLINK, NetworkLink
from ..models.architecture import ModelArchitecture

__all__ = ["DecodeStepTimer", "PrefillBatchTimer"]


class DecodeStepTimer:
    """O(1), bitwise-exact decode step latency from (batch size, total context).

    Mirrors ``decode_times(model, config, coeffs, context_lens, tp_link,
    pp_link).request_latency`` with validation hoisted to construction
    and all batch-size-dependent sub-expressions cached.
    """

    def __init__(
        self,
        model: ModelArchitecture,
        config: ParallelismConfig,
        coeffs: LatencyCoefficients,
        tp_link: NetworkLink = NVLINK,
        pp_link: NetworkLink = NVLINK,
    ) -> None:
        # Hoisted validation: decode_times / decode_step_latency raise
        # these per call; the timer raises them once.
        if not config.is_valid_for(model):
            raise ValueError(f"{config} is invalid for model {model.name}")
        if config.tp <= 0:
            raise ValueError(f"tp must be positive, got {config.tp}")
        if model.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {model.num_layers}")
        self._model = model
        self._tp = config.tp
        self._pp = config.pp
        self._tp_link = tp_link
        self._pp_link = pp_link
        self._etp = coeffs.effective_tp(config.tp)
        self._c1 = coeffs.c1
        self._c3 = coeffs.c3
        self._c5 = coeffs.c5
        # 3.0 * h is the prefix of attn_term_decode's left-associated
        # product; reusing it keeps (3.0 * h) * T bitwise identical.
        self._three_hidden = 3.0 * model.hidden_size
        self._gemm_memory = coeffs.c4 * gemm_term_decode(model) / config.tp
        self._num_layers = model.num_layers
        self._layers_slowest = -(-model.num_layers // config.pp)
        self._overhead = coeffs.iteration_overhead
        self._pp_overhead = config.pp * coeffs.iteration_overhead
        # batch_size -> (gemm, comm_per_layer, act_stage, act_request)
        self._by_batch_size: dict[int, tuple[float, float, float, float]] = {}

    def _batch_constants(self, batch_size: int) -> tuple[float, float, float, float]:
        cached = self._by_batch_size.get(batch_size)
        if cached is not None:
            return cached
        gemm_compute = (
            self._c1 * gemm_term_prefill(self._model, batch_size) / self._etp
        )
        gemm = self._gemm_memory + gemm_compute
        comm = tp_allreduce_time_per_layer(
            self._model, batch_size, self._tp, self._tp_link
        )
        act = (
            self._pp_link.time_for(
                batch_size * self._model.activation_bytes_per_token()
            )
            if self._pp > 1
            else 0.0
        )
        entry = (gemm, comm, act, (self._pp - 1) * act)
        self._by_batch_size[batch_size] = entry
        return entry

    def request_latency(self, batch_size: int, total_context: int) -> float:
        """``decode_times(...).request_latency`` for a batch of this shape."""
        if batch_size == 0:
            return 0.0
        gemm, comm, act_stage, act_request = self._batch_constants(batch_size)
        attn = self._c5 * (self._three_hidden * float(total_context)) / self._tp
        per_layer = (gemm + attn + self._c3) + comm
        stage = self._layers_slowest * per_layer + act_stage + self._overhead
        request = self._num_layers * per_layer + act_request + self._pp_overhead
        return max(request, stage)

    def step_latency_fn(self, batch_size: int) -> "Callable[[int], float]":
        """``request_latency`` with the batch size pre-bound.

        For a macro run the batch is fixed and only the context grows, so
        binding every batch-size constant into closure locals removes the
        per-step dict probe and attribute walks. The returned callable is
        bitwise-identical to ``request_latency(batch_size, context)``.
        """
        if batch_size == 0:
            return lambda total_context: 0.0
        gemm, comm, act_stage, act_request = self._batch_constants(batch_size)
        c3 = self._c3
        c5 = self._c5
        three_hidden = self._three_hidden
        tp = self._tp
        layers_slowest = self._layers_slowest
        overhead = self._overhead
        num_layers = self._num_layers
        pp_overhead = self._pp_overhead

        def latency(total_context: int) -> float:
            attn = c5 * (three_hidden * float(total_context)) / tp
            per_layer = (gemm + attn + c3) + comm
            stage = layers_slowest * per_layer + act_stage + overhead
            request = num_layers * per_layer + act_request + pp_overhead
            return max(request, stage)

        return latency


class PrefillBatchTimer:
    """Memoized, bitwise-exact prefill batch execution times.

    ``prefill_times`` depends on its length list only through
    ``t = sum(lens)`` and ``t2 = sum(l * l for l in lens)``; results
    memoize on the ``(t, t2)`` pair. Returns ``(request_latency,
    stage_time)`` tuples equal to the reference :class:`ExecutionTimes`
    fields.
    """

    def __init__(
        self,
        model: ModelArchitecture,
        config: ParallelismConfig,
        coeffs: LatencyCoefficients,
        tp_link: NetworkLink = NVLINK,
        pp_link: NetworkLink = NVLINK,
    ) -> None:
        if not config.is_valid_for(model):
            raise ValueError(f"{config} is invalid for model {model.name}")
        if config.tp <= 0:
            raise ValueError(f"tp must be positive, got {config.tp}")
        if model.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {model.num_layers}")
        self._model = model
        self._tp = config.tp
        self._pp = config.pp
        self._tp_link = tp_link
        self._pp_link = pp_link
        self._etp = coeffs.effective_tp(config.tp)
        self._c1 = coeffs.c1
        self._c2 = coeffs.c2
        self._c3 = coeffs.c3
        self._block = coeffs.attention_block_size
        self._gemm_memory = coeffs.c4 * gemm_term_decode(model) / config.tp
        self._num_layers = model.num_layers
        self._layers_slowest = -(-model.num_layers // config.pp)
        self._overhead = coeffs.iteration_overhead
        self._by_shape: dict[tuple[int, float], tuple[float, float]] = {}

    def times(self, total_tokens: int, squared_sum: float) -> tuple[float, float]:
        """``(request_latency, stage_time)`` of a batch with these totals."""
        if total_tokens == 0:
            return (0.0, 0.0)
        key = (total_tokens, squared_sum)
        cached = self._by_shape.get(key)
        if cached is not None:
            return cached
        gemm_compute = (
            self._c1 * gemm_term_prefill(self._model, total_tokens) / self._etp
        )
        gemm = gemm_compute + self._gemm_memory
        attn_memory = (
            self._c2
            * attn_term_prefill(self._model, squared_sum, self._block)
            / self._tp
        )
        attn_compute = (
            self._c1 * 2.0 * self._model.hidden_size * squared_sum / self._etp
        )
        attn = max(attn_memory, attn_compute)
        per_layer = (gemm + attn + self._c3) + tp_allreduce_time_per_layer(
            self._model, total_tokens, self._tp, self._tp_link
        )
        act = (
            self._pp_link.time_for(
                total_tokens * self._model.activation_bytes_per_token()
            )
            if self._pp > 1
            else 0.0
        )
        stage = (
            self._layers_slowest * per_layer
            + (act if self._pp > 1 else 0.0)
            + self._overhead
        )
        request = (
            self._num_layers * per_layer
            + (self._pp - 1) * act
            + self._pp * self._overhead
        )
        entry = (max(request, stage), stage)
        self._by_shape[key] = entry
        return entry
