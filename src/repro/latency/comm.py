"""KV-cache transfer cost between prefill and decoding instances (§3.3).

After prefill, the KV cache of every prompt token must move to the
decoding instance. §3.3 works the example: a 512-token request on OPT-66B
carries ~1.13 GB of KV cache; at 10 req/s that demands ~90 Gbps to be
invisible. With the low-node-affinity placement (Algorithm 2), transfers
are pinned to intra-node NVLink and only corresponding pipeline stages
exchange data, dividing the bytes by the stage count.
"""

from __future__ import annotations

from ..hardware.network import NetworkLink
from ..models.architecture import ModelArchitecture

__all__ = ["kv_cache_bytes", "kv_transfer_time", "required_bandwidth"]


def kv_cache_bytes(model: ModelArchitecture, num_tokens: int) -> int:
    """Total KV bytes of ``num_tokens`` tokens for the *full* model."""
    if num_tokens < 0:
        raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
    return model.kv_bytes_per_token * num_tokens


def kv_transfer_time(
    model: ModelArchitecture,
    num_tokens: int,
    link: NetworkLink,
    num_parallel_channels: int = 1,
) -> float:
    """Seconds to migrate a request's KV cache over ``link``.

    Args:
        model: Full model architecture.
        num_tokens: Prompt tokens whose KV cache moves.
        link: The interconnect crossed (NVLink for stage-colocated
            placements, the cluster fabric otherwise).
        num_parallel_channels: Independent channels moving disjoint shards
            concurrently — ``pp`` stage pairs (and TP ranks) each move
            their own slice, so the per-channel bytes shrink accordingly.
    """
    if num_parallel_channels <= 0:
        raise ValueError("num_parallel_channels must be positive")
    total = kv_cache_bytes(model, num_tokens)
    per_channel = total / num_parallel_channels
    return link.time_for(per_channel)


def required_bandwidth(
    model: ModelArchitecture, avg_prompt_len: float, arrival_rate: float
) -> float:
    """Sustained bytes/s the fabric must carry to hide KV migration (§3.3).

    For OPT-66B, 512-token prompts and 10 req/s this evaluates to ~11.3 GB/s
    (~90 Gbps), reproducing the paper's calculation.
    """
    if avg_prompt_len < 0 or arrival_rate < 0:
        raise ValueError("avg_prompt_len and arrival_rate must be >= 0")
    return model.kv_bytes_per_token * avg_prompt_len * arrival_rate
