"""Latency-model coefficients (C1..C5 of paper Appendix A).

The paper writes prefill latency as::

    T_prefill = C1 * (4 t h^2 + 2 t h m) + C2 * 3 h t2 / b + C3

and decoding latency as::

    T_decoding = C4 * (4 h^2 + 2 h m) + C5 * 3 h t

where the C's are obtained by "profiling and interpolation" on the target
GPU. Without physical hardware we obtain the same constants from the GPU
roofline: compute-bound terms cost ``FLOPs / effective_flops`` and
memory-bound terms cost ``bytes / effective_bandwidth``. A least-squares
fitter (:func:`fit_coefficients`) is also provided so the coefficients can
be re-calibrated from measured (or synthetically noised) samples, which is
exactly the paper's profiling procedure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hardware.gpu import GPUSpec
from ..models.architecture import ModelArchitecture

__all__ = [
    "LatencyCoefficients",
    "coefficients_from_roofline",
    "fit_coefficients",
    "ProfileSample",
]

#: FlashAttention block size ``b`` used in the attention-term arithmetic
#: intensity analysis of Appendix A (b=32 => AI = 21.3, memory-bound).
DEFAULT_ATTENTION_BLOCK_SIZE = 32

#: Per-layer fixed overhead (kernel launches, Python runtime) — the C3 term.
DEFAULT_PER_LAYER_OVERHEAD = 15e-6

#: Per-iteration engine overhead: scheduler bookkeeping, sampling,
#: detokenization. Charged once per batch/step by the execution-time
#: wrappers, not by the raw Appendix A formulas.
DEFAULT_ITERATION_OVERHEAD = 5e-3


@dataclass(frozen=True)
class LatencyCoefficients:
    """Calibrated constants of the Appendix A latency model.

    All coefficients are *per-layer* and expressed in seconds per unit of
    the corresponding polynomial term, so the model evaluation multiplies
    by ``num_layers`` explicitly.

    Attributes:
        c1: Seconds per (FLOP of prefill GEMM work / 2). Multiplies
            ``4 t h^2 + 2 t h m``.
        c2: Seconds per element of prefill attention memory traffic.
            Multiplies ``3 h t2 / b``.
        c3: Fixed per-layer overhead, seconds (kernel launch, runtime).
        c4: Seconds per element of decode GEMM memory traffic. Multiplies
            ``4 h^2 + 2 h m``.
        c5: Seconds per element of decode attention memory traffic.
            Multiplies ``3 h t``.
        attention_block_size: FlashAttention block size ``b``.
        iteration_overhead: Per-iteration engine cost (scheduler,
            sampling, detokenization), seconds; applied once per batch by
            the execution-time wrappers in :mod:`repro.latency.parallel`.
        tp_penalty: Per-doubling utilization loss of tensor parallelism —
            partitioned kernels run at lower efficiency (§3.2 "reduced
            utilization after partitioning"), which together with
            all-reduce time keeps the speedup coefficient ``K`` below the
            TP degree (Eq. 3's ``1 < K < 2``).
    """

    c1: float
    c2: float
    c3: float
    c4: float
    c5: float
    attention_block_size: int = DEFAULT_ATTENTION_BLOCK_SIZE
    tp_penalty: float = 0.08
    iteration_overhead: float = DEFAULT_ITERATION_OVERHEAD

    def __post_init__(self) -> None:
        for field_name in ("c1", "c2", "c4", "c5"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.c3 < 0:
            raise ValueError(f"c3 must be >= 0, got {self.c3}")
        if self.attention_block_size <= 0:
            raise ValueError("attention_block_size must be positive")
        if self.tp_penalty < 0:
            raise ValueError(f"tp_penalty must be >= 0, got {self.tp_penalty}")
        if self.iteration_overhead < 0:
            raise ValueError(
                f"iteration_overhead must be >= 0, got {self.iteration_overhead}"
            )

    def effective_tp(self, tp: int) -> float:
        """Effective parallel-speedup divisor for ``tp``-way tensor parallelism.

        ``tp / (1 + tp_penalty * log2(tp))`` — strictly less than ``tp``
        for ``tp > 1``, modeling per-GPU utilization loss on partitioned
        kernels.
        """
        if tp <= 0:
            raise ValueError(f"tp must be positive, got {tp}")
        if tp == 1:
            return 1.0
        return tp / (1.0 + self.tp_penalty * math.log2(tp))


def coefficients_from_roofline(
    gpu: GPUSpec,
    bytes_per_element: int = 2,
    per_layer_overhead: float = DEFAULT_PER_LAYER_OVERHEAD,
    attention_block_size: int = DEFAULT_ATTENTION_BLOCK_SIZE,
    decode_attn_efficiency: float = 0.65,
) -> LatencyCoefficients:
    """Derive C1..C5 analytically from a GPU's roofline parameters.

    * C1: the GEMM term ``4th^2 + 2thm`` counts multiply-accumulates, i.e.
      half the FLOPs, so one unit costs ``2 / effective_flops`` seconds.
    * C2, C4, C5: the corresponding terms count tensor *elements* moved, so
      one unit costs ``bytes_per_element / effective_bandwidth`` seconds.
    * ``decode_attn_efficiency`` derates C5: paged decode-attention
      kernels of the paper's era achieved well below streaming bandwidth
      on their scattered KV-block reads — a calibration visible in the
      paper's Figure 1 decode-only curve.
    """
    if not 0 < decode_attn_efficiency <= 1:
        raise ValueError(
            f"decode_attn_efficiency must be in (0, 1], got {decode_attn_efficiency}"
        )
    per_flop_unit = 2.0 / gpu.effective_flops
    per_element = bytes_per_element / gpu.effective_bandwidth
    return LatencyCoefficients(
        c1=per_flop_unit,
        c2=per_element,
        c3=per_layer_overhead,
        c4=per_element,
        c5=per_element / decode_attn_efficiency,
        attention_block_size=attention_block_size,
    )


@dataclass(frozen=True)
class ProfileSample:
    """One profiled batch execution used for coefficient fitting.

    Attributes:
        gemm_term: Value of the compute polynomial for this batch
            (``4th^2 + 2thm`` for prefill, ``4h^2 + 2hm`` for decode).
        attn_term: Value of the attention polynomial (``3 h t2 / b`` for
            prefill, ``3 h t`` for decode).
        num_layers: Layers executed.
        latency: Measured wall-clock seconds.
    """

    gemm_term: float
    attn_term: float
    num_layers: int
    latency: float


def fit_coefficients(
    prefill_samples: "list[ProfileSample]",
    decode_samples: "list[ProfileSample]",
    attention_block_size: int = DEFAULT_ATTENTION_BLOCK_SIZE,
) -> LatencyCoefficients:
    """Least-squares fit of C1..C5 from profiled samples (Appendix A).

    Prefill samples fit ``latency/layers = c1*gemm + c2*attn + c3``;
    decode samples fit ``latency/layers = c4*gemm + c5*attn``.

    Raises:
        ValueError: if either sample list is too small to determine its
            coefficients (3 prefill and 2 decode samples minimum).
    """
    if len(prefill_samples) < 3:
        raise ValueError("need at least 3 prefill samples to fit c1, c2, c3")
    if len(decode_samples) < 2:
        raise ValueError("need at least 2 decode samples to fit c4, c5")

    a_pre = np.array(
        [[s.gemm_term, s.attn_term, 1.0] for s in prefill_samples], dtype=float
    )
    y_pre = np.array([s.latency / s.num_layers for s in prefill_samples], dtype=float)
    (c1, c2, c3), *_ = np.linalg.lstsq(a_pre, y_pre, rcond=None)

    a_dec = np.array([[s.gemm_term, s.attn_term] for s in decode_samples], dtype=float)
    y_dec = np.array([s.latency / s.num_layers for s in decode_samples], dtype=float)
    (c4, c5), *_ = np.linalg.lstsq(a_dec, y_dec, rcond=None)

    # Numerical noise can push a tiny coefficient below zero; clamp to a
    # small positive epsilon so the model stays physically meaningful.
    eps = 1e-18
    return LatencyCoefficients(
        c1=max(float(c1), eps),
        c2=max(float(c2), eps),
        c3=max(float(c3), 0.0),
        c4=max(float(c4), eps),
        c5=max(float(c5), eps),
        attention_block_size=attention_block_size,
    )


def gemm_term_prefill(model: ModelArchitecture, num_tokens: int) -> float:
    """The ``4th^2 + 2thm`` polynomial for a (possibly sharded) model view."""
    t, h, m = float(num_tokens), float(model.hidden_size), float(model.ffn_size)
    return 4.0 * t * h * h + 2.0 * t * h * m


def attn_term_prefill(
    model: ModelArchitecture, squared_len_sum: float, block_size: int
) -> float:
    """The ``3 h t2 / b`` prefill attention polynomial."""
    return 3.0 * model.hidden_size * squared_len_sum / block_size


def gemm_term_decode(model: ModelArchitecture) -> float:
    """The ``4h^2 + 2hm`` decode weight-traffic polynomial."""
    h, m = float(model.hidden_size), float(model.ffn_size)
    return 4.0 * h * h + 2.0 * h * m


def attn_term_decode(model: ModelArchitecture, total_context: float) -> float:
    """The ``3 h t`` decode KV-traffic polynomial."""
    return 3.0 * model.hidden_size * total_context
