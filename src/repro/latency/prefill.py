"""Prefill-phase latency (paper Appendix A.2) with roofline extension.

The paper models prefill GEMMs as purely compute-bound (the ``C1`` term)
because realistic prompts push arithmetic intensity past the A100 ridge
point. To also reproduce the *unsaturated* region visible in Figure 3(a)
— throughput climbing with input length until the GPU saturates — the
GEMM term adds the weight-streaming cost to the compute cost (a smooth
roofline: small batches cannot hide weight traffic behind compute),
which converges to the paper's formula in the compute-bound regime.

Tensor parallelism enters via the ``tp`` argument: a ``tp``-way split
divides each layer's FLOPs and weight bytes by ``tp`` (Megatron-style
column/row sharding splits exactly one dimension of every GEMM), while
the per-layer kernel overhead ``C3`` does not shrink. All-reduce
communication is added separately in :mod:`repro.latency.parallel`.
"""

from __future__ import annotations

from .coefficients import (
    LatencyCoefficients,
    attn_term_prefill,
    gemm_term_decode,
    gemm_term_prefill,
)
from ..models.architecture import ModelArchitecture

__all__ = ["prefill_latency", "prefill_throughput", "saturation_length"]


def prefill_latency(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    input_lens: "list[int]",
    num_layers: "int | None" = None,
    tp: int = 1,
) -> float:
    """Execution time of one prefill batch through ``num_layers`` layers.

    Args:
        model: Full (un-sharded) architecture.
        coeffs: Calibrated latency coefficients.
        input_lens: Prompt length of each request in the batch.
        num_layers: Layers executed (defaults to the full model; pass the
            per-stage layer count to model one pipeline stage).
        tp: Tensor-parallel degree dividing per-layer FLOPs and bytes.

    Returns:
        Wall-clock seconds for the batch (no queuing and no TP all-reduce
        time — see :mod:`repro.latency.parallel` for those).
    """
    if any(length < 0 for length in input_lens):
        raise ValueError(f"input lengths must be >= 0, got {input_lens}")
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    layers = model.num_layers if num_layers is None else num_layers
    if layers <= 0:
        raise ValueError(f"num_layers must be positive, got {layers}")
    t = sum(input_lens)
    if t == 0:
        return 0.0
    t2 = float(sum(length * length for length in input_lens))

    # GEMM term: compute cost (paper's C1 term) plus weight-streaming cost.
    # The weight traffic of one layer is the same 4h^2 + 2hm elements the
    # decode model charges via C4, independent of t.
    # Compute pays the TP partition-efficiency penalty; weight streaming
    # shards perfectly across ranks.
    gemm_compute = coeffs.c1 * gemm_term_prefill(model, t) / coeffs.effective_tp(tp)
    gemm_memory = coeffs.c4 * gemm_term_decode(model) / tp
    gemm = gemm_compute + gemm_memory

    # Attention term: memory cost (paper's C2 term) vs. its FLOPs cost.
    # FlashAttention performs ~4 * h * t2 FLOPs per layer, i.e. 2*h*t2 in
    # the multiply-accumulate units C1 is expressed in. A single fused
    # kernel overlaps the two, hence max() rather than sum.
    attn_memory = coeffs.c2 * attn_term_prefill(model, t2, coeffs.attention_block_size) / tp
    attn_compute = coeffs.c1 * 2.0 * model.hidden_size * t2 / coeffs.effective_tp(tp)
    attn = max(attn_memory, attn_compute)

    return layers * (gemm + attn + coeffs.c3)


def prefill_throughput(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    input_lens: "list[int]",
    tp: int = 1,
) -> float:
    """Prefill throughput in tokens/second for one batch (Figure 3a)."""
    total = sum(input_lens)
    if total == 0:
        return 0.0
    return total / prefill_latency(model, coeffs, input_lens, tp=tp)


#: Tokens-times-hidden product that saturates one A100-class GPU's SMs.
#: Calibrated so a 13B model (h=5120) saturates at ~512 tokens — the
#: paper's §2.1/§3.1 observation.
_OCCUPANCY_CONSTANT = 512 * 5120


def saturation_length(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    max_len: int = 8192,
    min_len: int = 64,
    tp: int = 1,
) -> int:
    """Critical input length ``L_m`` beyond which prefill is compute-bound.

    §3.1/§4.3: the scheduler batches prefills up to total length ~``L_m``;
    beyond it adding tokens only stretches the batch proportionally.
    Saturation is an *occupancy* phenomenon — the GEMMs need roughly a
    constant ``tokens x hidden`` volume of parallel work to fill the
    GPU's SMs — so larger models saturate at shorter sequences ("the
    larger the model, the shorter sequence is needed", §2.1), and
    tensor parallelism, which shrinks per-GPU work, raises ``L_m``
    proportionally.

    The ``coeffs`` argument is accepted for signature stability with a
    profiling-based implementation (the paper profiles ``L_m`` per
    model/GPU pair); the occupancy model here plays that role offline.
    """
    del coeffs  # occupancy model needs only architecture + tp
    if max_len < min_len:
        raise ValueError(f"max_len {max_len} < min_len {min_len}")
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    raw = _OCCUPANCY_CONSTANT * tp / model.hidden_size
    return int(min(max(raw, min_len), max_len))
