"""Decoding-phase latency (paper Appendix A.3) with roofline extension.

One decoding step processes one new token per request in the batch. The
paper models it as memory-bound: weight streaming (the ``C4`` term, batch
independent) plus KV-cache reads proportional to the total context length
(the ``C5`` term). We additionally add the compute cost so that very
large batches "begin to resemble the prefill phase" (§3.2), i.e. the
step time transitions from flat to linear in batch size.

Tensor parallelism (``tp``) divides per-layer FLOPs, weight bytes, and
KV reads by ``tp``; kernel overhead ``C3`` does not shrink.
"""

from __future__ import annotations

from .coefficients import (
    LatencyCoefficients,
    attn_term_decode,
    gemm_term_decode,
    gemm_term_prefill,
)
from ..models.architecture import ModelArchitecture

__all__ = ["decode_step_latency", "decode_throughput", "compute_bound_batch_size"]


def decode_step_latency(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    context_lens: "list[int]",
    num_layers: "int | None" = None,
    tp: int = 1,
) -> float:
    """Execution time of one decoding step for a batch.

    Args:
        model: Full (un-sharded) architecture.
        coeffs: Calibrated latency coefficients.
        context_lens: Current context length (prompt + generated so far)
            of each request; the batch size is ``len(context_lens)``.
        num_layers: Layers executed (defaults to full model).
        tp: Tensor-parallel degree.

    Returns:
        Wall-clock seconds for one step of the whole batch.
    """
    if any(length < 0 for length in context_lens):
        raise ValueError(f"context lengths must be >= 0, got {context_lens}")
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    layers = model.num_layers if num_layers is None else num_layers
    if layers <= 0:
        raise ValueError(f"num_layers must be positive, got {layers}")
    batch_size = len(context_lens)
    if batch_size == 0:
        return 0.0
    # The reference per-step path is O(B) by design; the fast-forward
    # kernel (DESIGN.md §4h) bypasses it and keeps this total
    # incrementally. Integer sum, so order-sensitivity (DET004) is moot.
    # reprolint: disable=PERF001 -- O(B) reference path, replaced by §4h fast kernel
    total_context = float(sum(context_lens))

    # GEMM term: weight streaming (paper's C4) plus compute at batch size
    # B, which dominates once B crosses the device's compute-bound
    # threshold. Memory traffic shards perfectly across TP ranks (each
    # GPU streams only its own weights), so only the compute side pays
    # the partition-efficiency penalty.
    gemm_memory = coeffs.c4 * gemm_term_decode(model) / tp
    gemm_compute = coeffs.c1 * gemm_term_prefill(model, batch_size) / coeffs.effective_tp(tp)
    gemm = gemm_memory + gemm_compute

    # Attention term: KV reads (paper's C5) — ~2 FLOPs per element read
    # keeps arithmetic intensity near 1, always memory-bound; KV shards
    # across TP ranks like the weights.
    attn = coeffs.c5 * attn_term_decode(model, total_context) / tp

    return layers * (gemm + attn + coeffs.c3)


def decode_throughput(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    context_lens: "list[int]",
    tp: int = 1,
) -> float:
    """Decoding throughput in generated tokens/second (Figure 3b)."""
    if not context_lens:
        return 0.0
    return len(context_lens) / decode_step_latency(model, coeffs, context_lens, tp=tp)


def compute_bound_batch_size(
    model: ModelArchitecture, coeffs: LatencyCoefficients
) -> int:
    """Batch size at which decode GEMM compute cost equals the weight-
    streaming cost (§3.2's "approaching compute-bound" threshold).

    Solves ``c1 * B * (4h^2+2hm) = c4 * (4h^2+2hm)``, i.e. ``B = c4/c1``
    — architecture independent, a pure device roofline ratio.
    """
    return max(1, int(coeffs.c4 / coeffs.c1))
