"""Parallelism-aware execution times: tensor (intra-op) and pipeline (inter-op).

§3 of the paper analyses how the two forms of model parallelism reshape
latency:

* **Intra-op (tensor) parallelism** divides each layer's GEMMs across
  GPUs — execution time drops by a factor ``K`` with ``1 < K < tp`` due to
  the two all-reduces every transformer layer performs.
* **Inter-op (pipeline) parallelism** splits layers into stages — request
  latency stays roughly flat (``D ≈ Ds ≈ pp × Dm``) while the pipeline
  slot time ``Dm`` (and hence throughput) improves almost linearly.

This module turns a (model, :class:`ParallelismConfig`) pair into the two
numbers the simulator consumes: the *request latency* (one batch through
all stages) and the *stage time* (how long a pipeline slot is occupied,
the throughput-limiting quantity).
"""

from __future__ import annotations

from dataclasses import dataclass

from .coefficients import LatencyCoefficients
from .decode import decode_step_latency
from .prefill import prefill_latency
from ..hardware.network import NVLINK, NetworkLink
from ..models.architecture import ModelArchitecture

__all__ = [
    "ParallelismConfig",
    "ExecutionTimes",
    "tp_allreduce_time_per_layer",
    "prefill_times",
    "decode_times",
    "intra_op_speedup",
]


@dataclass(frozen=True)
class ParallelismConfig:
    """A (tensor parallel, pipeline parallel) degree pair.

    Attributes:
        tp: Intra-operator (tensor) parallel degree.
        pp: Inter-operator (pipeline) parallel degree.
    """

    tp: int = 1
    pp: int = 1

    def __post_init__(self) -> None:
        if self.tp <= 0 or self.pp <= 0:
            raise ValueError(f"parallel degrees must be positive, got tp={self.tp} pp={self.pp}")

    @property
    def num_gpus(self) -> int:
        """GPUs one instance with this configuration occupies."""
        return self.tp * self.pp

    def is_valid_for(self, model: ModelArchitecture) -> bool:
        """Whether the model can be partitioned this way."""
        return model.num_heads % self.tp == 0 and model.num_layers >= self.pp

    def __str__(self) -> str:
        return f"tp{self.tp}pp{self.pp}"


@dataclass(frozen=True)
class ExecutionTimes:
    """Latency decomposition of one batch under a parallelism config.

    Attributes:
        request_latency: Seconds from batch entering stage 0 to leaving the
            last stage — what a single request experiences (``Ds``).
        stage_time: Seconds the slowest pipeline stage is occupied
            (``Dm``); the pipeline admits a new batch every ``stage_time``.
    """

    request_latency: float
    stage_time: float

    def __post_init__(self) -> None:
        if self.stage_time < 0 or self.request_latency < 0:
            raise ValueError("times must be non-negative")
        if self.stage_time > self.request_latency + 1e-12:
            raise ValueError("stage_time cannot exceed request_latency")


def tp_allreduce_time_per_layer(
    model: ModelArchitecture,
    num_tokens: int,
    tp: int,
    link: NetworkLink = NVLINK,
) -> float:
    """Per-layer all-reduce cost of ``tp``-way tensor parallelism.

    Each transformer layer all-reduces the activations twice (after
    attention output and after FFN output). A ring all-reduce moves
    ``2 (tp-1)/tp × bytes`` per GPU. This communication is what makes the
    intra-op speedup coefficient ``K`` of Eq. 3 less than ``tp``.
    """
    if tp <= 1:
        return 0.0
    bytes_per = num_tokens * model.hidden_size * model.bytes_per_param
    ring_factor = 2.0 * (tp - 1) / tp
    one_allreduce = link.latency * (tp - 1) + ring_factor * bytes_per / link.bandwidth
    return 2.0 * one_allreduce


def _pipeline_times(
    per_layer_time: float,
    num_layers: int,
    pp: int,
    activation_transfer: float,
    iteration_overhead: float,
) -> ExecutionTimes:
    """Assemble request latency / stage time from a per-layer cost.

    The per-iteration engine overhead (scheduler, sampling, microbatch
    handling) is host-side work every stage performs for every batch: it
    lands once on the stage cadence and ``pp`` times on the request
    latency — deep pipelines pay it at every hop, which is part of why
    real searches stop at modest inter-op degrees.
    """
    layers_slowest = -(-num_layers // pp)
    stage = (
        layers_slowest * per_layer_time
        + (activation_transfer if pp > 1 else 0.0)
        + iteration_overhead
    )
    request = (
        num_layers * per_layer_time
        + (pp - 1) * activation_transfer
        + pp * iteration_overhead
    )
    return ExecutionTimes(request_latency=max(request, stage), stage_time=stage)


def prefill_times(
    model: ModelArchitecture,
    config: ParallelismConfig,
    coeffs: LatencyCoefficients,
    input_lens: "list[int]",
    tp_link: NetworkLink = NVLINK,
    pp_link: NetworkLink = NVLINK,
) -> ExecutionTimes:
    """Execution times of one prefill batch under ``config``.

    Args:
        model: *Full* (un-sharded) model architecture.
        config: Parallelism degrees; must satisfy
            :meth:`ParallelismConfig.is_valid_for`.
        coeffs: Latency coefficients.
        input_lens: Prompt lengths in the batch.
        tp_link: Link used by tensor-parallel all-reduces.
        pp_link: Link used by inter-stage activation sends.
    """
    if not config.is_valid_for(model):
        raise ValueError(f"{config} is invalid for model {model.name}")
    if not input_lens or sum(input_lens) == 0:
        return ExecutionTimes(0.0, 0.0)
    compute_per_layer = prefill_latency(
        model, coeffs, input_lens, num_layers=1, tp=config.tp
    )
    comm_per_layer = tp_allreduce_time_per_layer(model, sum(input_lens), config.tp, tp_link)
    act_transfer = (
        pp_link.time_for(sum(input_lens) * model.activation_bytes_per_token())
        if config.pp > 1
        else 0.0
    )
    return _pipeline_times(
        compute_per_layer + comm_per_layer,
        model.num_layers,
        config.pp,
        act_transfer,
        coeffs.iteration_overhead,
    )


def decode_times(
    model: ModelArchitecture,
    config: ParallelismConfig,
    coeffs: LatencyCoefficients,
    context_lens: "list[int]",
    tp_link: NetworkLink = NVLINK,
    pp_link: NetworkLink = NVLINK,
) -> ExecutionTimes:
    """Execution times of one decoding step under ``config``."""
    if not config.is_valid_for(model):
        raise ValueError(f"{config} is invalid for model {model.name}")
    if not context_lens:
        return ExecutionTimes(0.0, 0.0)
    compute_per_layer = decode_step_latency(
        model, coeffs, context_lens, num_layers=1, tp=config.tp
    )
    comm_per_layer = tp_allreduce_time_per_layer(
        model, len(context_lens), config.tp, tp_link
    )
    act_transfer = (
        pp_link.time_for(len(context_lens) * model.activation_bytes_per_token())
        if config.pp > 1
        else 0.0
    )
    return _pipeline_times(
        compute_per_layer + comm_per_layer,
        model.num_layers,
        config.pp,
        act_transfer,
        coeffs.iteration_overhead,
    )


def intra_op_speedup(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    input_len: int,
    tp: int,
    tp_link: NetworkLink = NVLINK,
) -> float:
    """Measured speedup coefficient ``K`` of Eq. 3 for a prefill request.

    ``K = D / D_s`` where ``D`` is the single-GPU execution time and
    ``D_s`` the time under ``tp``-way intra-op parallelism. Communication
    overhead keeps ``K < tp``.
    """
    base = prefill_times(model, ParallelismConfig(1, 1), coeffs, [input_len])
    par = prefill_times(model, ParallelismConfig(tp, 1), coeffs, [input_len], tp_link)
    if par.request_latency == 0:
        return 1.0
    return base.request_latency / par.request_latency
