"""Analytical latency model (paper Appendix A) and parallelism adjustments."""

from .coefficients import (
    DEFAULT_ATTENTION_BLOCK_SIZE,
    LatencyCoefficients,
    ProfileSample,
    coefficients_from_roofline,
    fit_coefficients,
)
from .comm import kv_cache_bytes, kv_transfer_time, required_bandwidth
from .decode import compute_bound_batch_size, decode_step_latency, decode_throughput
from .parallel import (
    ExecutionTimes,
    ParallelismConfig,
    decode_times,
    intra_op_speedup,
    prefill_times,
    tp_allreduce_time_per_layer,
)
from .memo import DecodeStepTimer, PrefillBatchTimer
from .mixed import mixed_batch_latency
from .prefill import prefill_latency, prefill_throughput, saturation_length

__all__ = [
    "DEFAULT_ATTENTION_BLOCK_SIZE",
    "LatencyCoefficients",
    "ProfileSample",
    "coefficients_from_roofline",
    "fit_coefficients",
    "kv_cache_bytes",
    "kv_transfer_time",
    "required_bandwidth",
    "compute_bound_batch_size",
    "decode_step_latency",
    "decode_throughput",
    "ExecutionTimes",
    "ParallelismConfig",
    "decode_times",
    "intra_op_speedup",
    "prefill_times",
    "tp_allreduce_time_per_layer",
    "DecodeStepTimer",
    "PrefillBatchTimer",
    "mixed_batch_latency",
    "prefill_latency",
    "prefill_throughput",
    "saturation_length",
]
