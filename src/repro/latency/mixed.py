"""Latency of batches mixing prefill and decoding work.

Colocated systems (Orca-style continuous batching, SARATHI chunked
prefill) execute iterations containing both prompt tokens and decode
tokens. Figure 2 measures exactly this: a decoding batch plus one
prefill request. The cost composes from the Appendix A terms:

* one pass of GEMM compute over *all* tokens in the iteration,
* one pass of weight streaming (shared by everyone in the batch),
* prefill-attention traffic for the prompt tokens,
* KV-read traffic for the decode tokens' contexts.
"""

from __future__ import annotations

from .coefficients import (
    LatencyCoefficients,
    attn_term_decode,
    attn_term_prefill,
    gemm_term_decode,
    gemm_term_prefill,
)
from ..models.architecture import ModelArchitecture

__all__ = ["mixed_batch_latency"]


def mixed_batch_latency(
    model: ModelArchitecture,
    coeffs: LatencyCoefficients,
    prefill_lens: "list[int]",
    decode_context_lens: "list[int]",
    num_layers: "int | None" = None,
    tp: int = 1,
) -> float:
    """Execution time of one iteration batching prefills with decodes.

    Args:
        model: Full (un-sharded) architecture.
        coeffs: Calibrated latency coefficients.
        prefill_lens: Prompt lengths of prefill (sub-)requests in the
            batch; chunked-prefill passes chunk lengths here.
        decode_context_lens: Context lengths of decode requests, each
            contributing one new token.
        num_layers: Layers executed (defaults to full model).
        tp: Tensor-parallel degree.

    Returns:
        Wall-clock seconds for the iteration. With an empty
        ``decode_context_lens`` this equals :func:`prefill_latency`; with
        an empty ``prefill_lens`` it equals :func:`decode_step_latency`.
    """
    if any(length < 0 for length in prefill_lens):
        raise ValueError(f"prefill lengths must be >= 0, got {prefill_lens}")
    if any(length < 0 for length in decode_context_lens):
        raise ValueError(f"context lengths must be >= 0, got {decode_context_lens}")
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    layers = model.num_layers if num_layers is None else num_layers
    if layers <= 0:
        raise ValueError(f"num_layers must be positive, got {layers}")

    prefill_tokens = sum(prefill_lens)
    decode_tokens = len(decode_context_lens)
    total_tokens = prefill_tokens + decode_tokens
    if total_tokens == 0:
        return 0.0
    etp = coeffs.effective_tp(tp)

    # Memory traffic shards perfectly across TP ranks; only compute pays
    # the partition-efficiency penalty (see repro.latency.prefill).
    gemm_compute = coeffs.c1 * gemm_term_prefill(model, total_tokens) / etp
    gemm_memory = coeffs.c4 * gemm_term_decode(model) / tp
    gemm = gemm_compute + gemm_memory

    t2 = float(sum(length * length for length in prefill_lens))
    attn_pre_mem = (
        coeffs.c2 * attn_term_prefill(model, t2, coeffs.attention_block_size) / tp
    )
    attn_pre_cmp = coeffs.c1 * 2.0 * model.hidden_size * t2 / etp
    attn_pre = max(attn_pre_mem, attn_pre_cmp)

    attn_dec = (
        coeffs.c5 * attn_term_decode(model, float(sum(decode_context_lens))) / tp
    )

    # Engine iteration overhead is charged once per batch, matching the
    # execution-time wrappers in repro.latency.parallel.
    return layers * (gemm + attn_pre + attn_dec + coeffs.c3) + coeffs.iteration_overhead
