"""SARIF 2.1.0 export for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests; uploading the lint job's output surfaces findings as
inline PR annotations. The export is deterministic — rules sorted by
id, results in engine order (already sorted), no timestamps or absolute
paths — so the artifact is diffable and cache-friendly.

Rule metadata comes from the rule classes themselves: ``summary`` is
the ``shortDescription`` and the class docstring (rationale / example /
suppression) is the ``help`` text, so ``--format sarif`` and
``--explain`` can never drift apart.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path
from typing import Sequence, Type

from .engine import Finding, Rule, all_rules

__all__ = ["findings_to_sarif", "rule_doc"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_INFO_URI = "https://example.invalid/reprolint"  # placeholder, no network


def rule_doc(rule_cls: Type[Rule]) -> str:
    """Cleaned docstring of a rule class (rationale/example/suppression)."""
    doc = inspect.getdoc(rule_cls)
    return doc.strip() if doc else rule_cls.summary


def _rule_descriptor(rule_cls: Type[Rule]) -> "dict[str, object]":
    return {
        "id": rule_cls.name,
        "name": rule_cls.__name__,
        "shortDescription": {"text": rule_cls.summary},
        "help": {"text": rule_doc(rule_cls)},
        "defaultConfiguration": {"level": "error"},
    }


def _artifact_uri(path: str) -> str:
    candidate = Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


def _result(finding: Finding, rule_index: "dict[str, int]") -> "dict[str, object]":
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _artifact_uri(finding.path)},
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def findings_to_sarif(findings: Sequence[Finding]) -> str:
    """Serialize findings as a SARIF 2.1.0 document (deterministic)."""
    registry = all_rules()
    rule_ids = sorted(registry)
    rule_index = {rule_id: idx for idx, rule_id in enumerate(rule_ids)}
    # E999 (syntax error) is emitted by the engine, not a registered rule.
    descriptors: "list[dict[str, object]]" = [
        _rule_descriptor(registry[rule_id]) for rule_id in rule_ids
    ]
    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": _INFO_URI,
                        "rules": descriptors,
                    }
                },
                "results": [
                    _result(finding, rule_index) for finding in sorted(findings)
                ],
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"
