"""The reprolint rule pack: this codebase's determinism invariants.

Each rule encodes one way the simulator's guarantees — golden traces
(PR 1), byte-deterministic metrics exports (PR 2), and the trial-cache
fingerprints / serial-parallel search parity (PR 3) — have historically
broken in systems like this one:

==========  ==========================================================
DET001      wall-clock reads inside ``repro.simulator``/``repro.core``
DET002      module-level or unseeded ``random``/``numpy.random``
DET003      set/dict-view iteration feeding ordering-sensitive sinks
DET004      bare ``sum()`` float accumulation in latency/goodput paths
SIM001      ``Simulation.schedule(_at)`` calls not provably non-past
SIM002      re-entrant scheduler mutation from callbacks
PAR001      unpicklable objects handed to the parallel evaluator
OBS001      comprehensions in profiler/metric per-event hot paths
PERF001     ``sum()`` reductions reachable from the decode step loop
==========  ==========================================================

Scoping is deliberate: rules only fire where the invariant actually
matters (DET001 does not ban ``time`` in benchmarks; DET004 only covers
the hot paths whose floats reach reports), so a finding is a bug or a
decision — never noise to be ignored.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .callgraph import FunctionNode, ProjectGraph

from .engine import (
    ModuleContext,
    Rule,
    call_name,
    call_tail,
    dotted_name,
    receiver_tail,
    register,
)

__all__ = [
    "WallClockRule",
    "UnseededRngRule",
    "UnorderedIterationRule",
    "FloatSumRule",
    "NonPastScheduleRule",
    "ReentrantMutationRule",
    "PicklableTaskRule",
    "HotPathComprehensionRule",
    "DecodeLoopSumRule",
]

_Yield = Iterator[Tuple[ast.AST, str]]


# ----------------------------------------------------------------------
# DET001 — virtual time only
# ----------------------------------------------------------------------

#: Wall-clock sources that must never influence simulation state. The
#: simulator's clock is :attr:`repro.simulator.events.Simulation.now`;
#: anything else makes traces, metrics and cache fingerprints
#: run-dependent.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """No wall-clock reads inside ``repro.simulator`` / ``repro.core``.

    Rationale:
        The simulator's only clock is ``Simulation.now``. Any
        ``time.time()`` / ``datetime.now()`` read that influences
        simulation state makes golden traces, metrics exports, and cache
        fingerprints differ run to run. Bare references passed as
        callbacks (``key=time.time``) are flagged too.

    Example violation:
        started = time.time()   # DET001 (inside repro.simulator)

    Suppression:
        t = time.time()  # reprolint: disable=DET001 -- diagnostics only
    """

    name = "DET001"
    summary = "no wall-clock reads inside repro.simulator / repro.core"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith(
            ("repro.simulator", "repro.core", "repro.scheduling")
        )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        name = call_name(node)
        if name in _WALL_CLOCK:
            yield node, (
                f"wall-clock read `{name}()` in {ctx.module}; simulation "
                "code must use virtual time (Simulation.now) only"
            )

    def visit_Attribute(self, node: ast.Attribute, ctx: ModuleContext) -> _Yield:
        # A bare reference (e.g. `key=time.time` passed as a callback)
        # is just as dangerous as a call. Skip chains already reported
        # via visit_Call and inner links of longer attribute chains.
        parent = ctx.parent()
        if isinstance(parent, ast.Attribute):
            return
        if isinstance(parent, ast.Call) and parent.func is node:
            return
        name = dotted_name(node)
        if name in _WALL_CLOCK:
            yield node, (
                f"wall-clock reference `{name}` in {ctx.module}; simulation "
                "code must use virtual time (Simulation.now) only"
            )


# ----------------------------------------------------------------------
# DET002 — seeded, explicitly threaded randomness
# ----------------------------------------------------------------------

#: numpy.random attributes that are *constructors* of explicit, seedable
#: generator state — everything else on the module is the shared legacy
#: global RNG.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}


@register
class UnseededRngRule(Rule):
    """No module-level or unseeded ``random`` / ``numpy.random``.

    Rationale:
        Stdlib ``random`` and numpy's legacy global RNG are shared
        process state: any import-order or call-order change reshuffles
        every downstream draw. Randomness must be an explicitly seeded
        ``np.random.default_rng(seed)`` Generator threaded through the
        code that uses it, constructed inside a function (module-level
        generators are shared mutable state).

    Example violation:
        rng = np.random.default_rng()   # DET002: no seed, OS entropy

    Suppression:
        import random  # reprolint: disable=DET002 -- CLI demo only
    """

    name = "DET002"
    summary = "no module-level or unseeded random / numpy.random"

    def visit_Import(self, node: ast.Import, ctx: ModuleContext) -> _Yield:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield node, (
                    "stdlib `random` is process-global state; thread a "
                    "seeded numpy Generator through instead"
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: ModuleContext) -> _Yield:
        if node.module == "random":
            yield node, (
                "stdlib `random` is process-global state; thread a "
                "seeded numpy Generator through instead"
            )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        name = call_name(node)
        if name is None:
            return
        parts = name.split(".")
        # random.random(), random.seed(), random.shuffle(), ...
        if parts[0] == "random" and len(parts) > 1:
            yield node, (
                f"`{name}()` uses the process-global stdlib RNG; thread a "
                "seeded numpy Generator through instead"
            )
            return
        # np.random.rand() / numpy.random.seed() / ... — the legacy
        # global-state API; only explicit Generator construction is OK.
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
            if parts[-1] not in _NP_RANDOM_OK:
                yield node, (
                    f"`{name}()` mutates/reads numpy's global RNG; construct "
                    "a Generator via np.random.default_rng(seed) and pass it"
                )
                return
        if parts[-1] == "default_rng":
            if not node.args and not node.keywords:
                yield node, (
                    "`default_rng()` without a seed draws OS entropy — "
                    "every run differs; pass an explicit seed"
                )
            elif not ctx.in_function():
                yield node, (
                    "module-level RNG is shared mutable state; construct "
                    "generators inside the function/workload that uses them"
                )


# ----------------------------------------------------------------------
# DET003 — deterministic iteration into ordering-sensitive sinks
# ----------------------------------------------------------------------

#: Call tails whose argument/effect order changes observable results:
#: heap layout, event scheduling order, and fingerprint/hash digests.
_ORDER_SINKS = {
    "heappush",
    "heapify",
    "heappushpop",
    "schedule",
    "schedule_at",
    "submit",
    "fingerprint",
    "update",  # hashlib's digest.update — order-sensitive by definition
    "write",
}

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
}
_VIEW_METHODS = {"values", "keys", "items"}


def _unordered_source(node: ast.expr) -> "str | None":
    """Describe why iterating ``node`` has no guaranteed stable order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call):
        tail = call_tail(node)
        if tail in _SET_CONSTRUCTORS and isinstance(node.func, ast.Name):
            return f"`{tail}()`"
        if tail in _SET_METHODS:
            return f"a set (`.{tail}()`)"
        if tail in _VIEW_METHODS and isinstance(node.func, ast.Attribute):
            return f"a dict view (`.{tail}()`)"
    return None


def _order_sink_in(body: "list[ast.stmt]") -> "ast.Call | None":
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call) and call_tail(sub) in _ORDER_SINKS:
                return sub
    return None


@register
class UnorderedIterationRule(Rule):
    """No set/dict-view iteration feeding ordering-sensitive sinks.

    Rationale:
        Iterating a set (or, across interpreter versions, a dict view)
        has no guaranteed stable order; feeding it into heap pushes,
        event scheduling, hash updates, or writes makes the observable
        result depend on hash seeding. Sort the iterable (or use an
        insertion-ordered sequence) before it reaches the sink.

    Example violation:
        for req in pending_set:
            heappush(heap, req)   # DET003

    Suppression:
        for x in s:  # reprolint: disable=DET003 -- singleton set
    """

    name = "DET003"
    summary = "no set/dict-view iteration feeding ordering-sensitive sinks"

    def visit_For(self, node: ast.For, ctx: ModuleContext) -> _Yield:
        source = _unordered_source(node.iter)
        if source is None:
            return
        sink = _order_sink_in(node.body)
        if sink is not None:
            yield node, (
                f"iterating {source} feeds ordering-sensitive sink "
                f"`{call_tail(sink)}` (line {sink.lineno}); iterate a "
                "sorted() or insertion-ordered sequence instead"
            )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        # Generator/comprehension piped straight into a sink:
        #   h.update(render(x) for x in some_set)
        #   heap.extend(sorted(...)) is fine — sorted() restores order.
        if call_tail(node) not in _ORDER_SINKS:
            return
        for arg in node.args:
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                for comp in arg.generators:
                    source = _unordered_source(comp.iter)
                    if source is not None:
                        yield arg, (
                            f"comprehension over {source} feeds "
                            f"ordering-sensitive sink `{call_tail(node)}`; "
                            "sort the iterable first"
                        )


# ----------------------------------------------------------------------
# DET004 — order-robust float accumulation in hot reporting paths
# ----------------------------------------------------------------------

#: Modules whose float sums surface in reports/fingerprints, where
#: `sum()`'s left-to-right rounding makes results depend on record
#: order; `math.fsum` is exactly rounded and order-independent.
_HOT_PATH_PREFIXES = ("repro.latency",)
_HOT_PATH_MODULES = {
    "repro.analysis.breakdown",
    "repro.analysis.percentiles",
    "repro.core.goodput",
}

#: Identifier fragments that mark a summand as (seconds-valued) float.
_FLOAT_HINT = re.compile(
    r"(time|latency|queue|exec|transfer|goodput|seconds|frac|util|stall)",
    re.IGNORECASE,
)


def _float_hinted(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and _FLOAT_HINT.search(sub.attr):
            return True
        if isinstance(sub, ast.Name) and _FLOAT_HINT.search(sub.id):
            return True
    return False


def _is_hot_reporting_module(module: str) -> bool:
    return module in _HOT_PATH_MODULES or module.startswith(_HOT_PATH_PREFIXES)


@register
class FloatSumRule(Rule):
    """Float accumulation in hot reporting paths must use ``math.fsum``.

    Rationale:
        ``sum()`` of floats rounds left-to-right, so the total depends on
        record order — which breaks byte-identical metrics exports and
        trial-cache fingerprints. ``math.fsum`` is exactly rounded and
        order-independent. Scope: repro.latency, repro.analysis
        breakdown/percentiles, repro.core.goodput, plus any function
        reachable from those modules through the project call graph
        (helpers whose totals flow back into reports).

    Example violation:
        total = sum(r.exec_time for r in records)   # DET004

    Suppression:
        total = sum(xs)  # reprolint: disable=DET004 -- ints only, exact
    """

    name = "DET004"
    summary = "float accumulation in hot paths must use math.fsum"

    def __init__(self) -> None:
        self._reach: "dict[int, frozenset[str]]" = {}

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.")

    def _reachable(self, project: "ProjectGraph") -> "frozenset[str]":
        key = id(project)
        cached = self._reach.get(key)
        if cached is None:
            seeds = [
                qualname
                for qualname, fn in project.functions.items()
                if _is_hot_reporting_module(fn.module)
            ]
            cached = project.reachable_from(seeds)
            self._reach[key] = cached
        return cached

    def _in_scope(self, ctx: ModuleContext) -> bool:
        if _is_hot_reporting_module(ctx.module):
            return True
        # Cross-module: a helper elsewhere whose sum feeds a hot module.
        if ctx.project is None:
            return False
        return ctx.scope_qualname() in self._reachable(ctx.project)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
            return
        if not node.args:
            return
        if not self._in_scope(ctx):
            return
        arg = node.args[0]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            elt = arg.elt
            # Integer counting (`sum(1 for ...)`, `sum(len(x) ...)`) is exact.
            if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
                return
            if isinstance(elt, ast.Call) and call_tail(elt) == "len":
                return
            if _float_hinted(elt):
                yield node, (
                    "bare sum() of float series accumulates rounding error "
                    "in record order; use math.fsum (exactly rounded, "
                    "order-independent)"
                )
        elif isinstance(arg, ast.Call) and call_tail(arg) in _VIEW_METHODS:
            yield node, (
                "bare sum() over a dict view of floats; use math.fsum so "
                "the reported total is independent of accumulation order"
            )
        elif isinstance(arg, (ast.Name, ast.Attribute)) and _float_hinted(arg):
            yield node, (
                "bare sum() of a float sequence in a hot reporting path; "
                "use math.fsum"
            )


# ----------------------------------------------------------------------
# SIM001 — provably non-past event scheduling
# ----------------------------------------------------------------------

_SIM_RECEIVERS = {"sim", "_sim", "simulation", "_simulation"}

#: Function-call tails we accept as structurally non-negative.
_NONNEG_CALLS = {"len", "abs"}


def _assignments_before(
    func: "ast.FunctionDef | ast.AsyncFunctionDef", lineno: int
) -> "dict[str, ast.expr]":
    """name -> last assigned expression strictly before ``lineno``."""
    table: "dict[str, ast.expr]" = {}
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign) and stmt.lineno < lineno:
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                table[stmt.targets[0].id] = stmt.value
    return table


def _asserted_exprs(
    func: "ast.FunctionDef | ast.AsyncFunctionDef", lineno: int
) -> "Tuple[set[str], set[str]]":
    """(dumps asserted >= 0, dumps asserted >= <sim>.now) before lineno."""
    nonneg: "set[str]" = set()
    nonpast: "set[str]" = set()

    def _record(test: ast.expr) -> None:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                _record(value)
            return
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        if isinstance(op, (ast.GtE, ast.Gt)):
            subject, bound = left, right
        elif isinstance(op, (ast.LtE, ast.Lt)):
            subject, bound = right, left
        else:
            return
        if isinstance(bound, ast.Constant) and isinstance(bound.value, (int, float)):
            if bound.value >= 0:
                nonneg.add(ast.dump(subject))
        else:
            bound_name = dotted_name(bound)
            if bound_name is not None and bound_name.endswith(".now"):
                nonpast.add(ast.dump(subject))

    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assert) and stmt.lineno < lineno:
            _record(stmt.test)
    return nonneg, nonpast


class _Prover:
    """Tiny structural prover for delay >= 0 / time >= now claims."""

    def __init__(
        self,
        assignments: "dict[str, ast.expr]",
        nonneg: "set[str]",
        nonpast: "set[str]",
    ) -> None:
        self._assignments = assignments
        self._nonneg = nonneg
        self._nonpast = nonpast

    def _resolve(self, node: ast.expr, depth: int) -> "ast.expr":
        while depth > 0 and isinstance(node, ast.Name):
            replacement = self._assignments.get(node.id)
            if replacement is None:
                return node
            node = replacement
            depth -= 1
        return node

    def nonneg(self, node: ast.expr, depth: int = 4) -> bool:
        if ast.dump(node) in self._nonneg:
            return True
        node = self._resolve(node, 1)
        if depth <= 0:
            return False
        if ast.dump(node) in self._nonneg:
            return True
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and node.value >= 0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
            return self.nonneg(node.operand, depth - 1)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mult)):
            return self.nonneg(node.left, depth - 1) and self.nonneg(node.right, depth - 1)
        if isinstance(node, ast.Call):
            tail = call_tail(node)
            if tail in _NONNEG_CALLS:
                return True
            if tail == "max" and any(self.nonneg(a, depth - 1) for a in node.args):
                return True
            if tail == "min" and node.args and all(
                self.nonneg(a, depth - 1) for a in node.args
            ):
                return True
        if isinstance(node, ast.IfExp):
            return self.nonneg(node.body, depth - 1) and self.nonneg(
                node.orelse, depth - 1
            )
        return False

    def nonpast(self, node: ast.expr, depth: int = 4) -> bool:
        if ast.dump(node) in self._nonpast:
            return True
        node = self._resolve(node, 1)
        if depth <= 0:
            return False
        if ast.dump(node) in self._nonpast:
            return True
        name = dotted_name(node)
        if name is not None and name.endswith(".now"):
            return True
        if isinstance(node, ast.Call) and call_tail(node) == "max":
            # max(now, anything) >= now regardless of the other args.
            if any(self.nonpast(a, depth - 1) for a in node.args):
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            for past_side, other in ((node.left, node.right), (node.right, node.left)):
                if self.nonpast(past_side, depth - 1) and self.nonneg(other, depth - 1):
                    return True
        if isinstance(node, ast.IfExp):
            return self.nonpast(node.body, depth - 1) and self.nonpast(
                node.orelse, depth - 1
            )
        return False


@register
class NonPastScheduleRule(Rule):
    """``Simulation.schedule`` calls must be provably non-past.

    Rationale:
        Scheduling an event in the virtual past corrupts the event-loop
        invariant that time is monotone. A tiny structural prover checks
        that ``schedule(delay)`` delays are constants/max()/len()-shaped
        non-negatives (or covered by a dominating ``assert delay >= 0``)
        and that ``schedule_at(t)`` times are ``max(now, ...)``-shaped
        (or asserted ``>= sim.now``).

    Example violation:
        sim.schedule(d, cb)   # SIM001: d not provably >= 0

    Suppression:
        sim.schedule(d, cb)  # reprolint: disable=SIM001 -- d validated upstream
    """

    name = "SIM001"
    summary = "Simulation.schedule calls must be provably non-past"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        tail = call_tail(node)
        if tail not in ("schedule", "schedule_at"):
            return
        if receiver_tail(node) not in _SIM_RECEIVERS:
            return
        if not node.args:
            return
        arg = node.args[0]
        func = ctx.enclosing_function()
        if func is not None:
            assignments = _assignments_before(func, node.lineno)
            nonneg, nonpast = _asserted_exprs(func, node.lineno)
        else:
            assignments, nonneg, nonpast = {}, set(), set()
        prover = _Prover(assignments, nonneg, nonpast)
        if tail == "schedule":
            if not prover.nonneg(arg):
                yield node, (
                    "delay is not provably >= 0 (constant-fold failed and no "
                    "dominating `assert delay >= 0`); events must never be "
                    "scheduled in the virtual past"
                )
        else:
            if not prover.nonpast(arg):
                yield node, (
                    "absolute time is not provably >= Simulation.now (no "
                    "max(now, ...) structure or dominating `assert t >= "
                    "sim.now`); events must never be scheduled in the past"
                )


# ----------------------------------------------------------------------
# SIM002 — no re-entrant scheduler mutation from read callbacks
# ----------------------------------------------------------------------

#: Attribute-call tails that mutate shared simulator or container state.
#: A metrics/telemetry read callback invoking any of these re-enters the
#: scheduler (or shifts state mid-event) and breaks replay determinism.
_MUTATORS = {
    "schedule", "schedule_at", "run", "stop",
    "append", "appendleft", "extend", "insert", "add", "discard",
    "remove", "pop", "popleft", "clear", "setdefault",
    "heappush", "heappop", "heapify",
    "allocate", "free", "observe", "inc", "record", "set_value",
}

#: Registration calls whose callable argument must be a pure read.
_CALLBACK_SINKS = {"counter", "gauge", "histogram", "register"}


def _impure_call_in(body: ast.AST) -> "ast.Call | None":
    for sub in ast.walk(body):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in _MUTATORS:
                return sub
    return None


@register
class ReentrantMutationRule(Rule):
    """Metric callbacks and handlers must not mutate scheduler state.

    Rationale:
        Metric read callbacks run during collection passes, in the
        middle of event processing; if one schedules events, mutates
        containers, or re-enters ``Simulation.run``, replay determinism
        breaks in ways that depend on when collection happened. Read
        callbacks must be pure; event callbacks schedule follow-ups
        instead of calling ``run`` re-entrantly.

    Example violation:
        registry.gauge("depth", "d", fn=lambda: self.q.pop())   # SIM002

    Suppression:
        fn=lambda: drain()  # reprolint: disable=SIM002 -- drain is read-only
    """

    name = "SIM002"
    summary = "metric callbacks and handlers must not mutate scheduler state"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        tail = call_tail(node)
        if tail not in _CALLBACK_SINKS:
            return
        callbacks: "list[ast.expr]" = [
            kw.value for kw in node.keywords if kw.arg == "fn"
        ]
        if tail == "register" and len(node.args) >= 2:
            callbacks.append(node.args[1])
        for callback in callbacks:
            if not isinstance(callback, ast.Lambda):
                continue
            for sub in ast.walk(callback.body):
                if isinstance(sub, ast.NamedExpr):
                    yield callback, (
                        "metric callback assigns state (walrus); read "
                        "callbacks must be pure"
                    )
                    break
            impure = _impure_call_in(callback.body)
            if impure is not None:
                yield callback, (
                    f"metric callback calls mutator `{call_tail(impure)}` "
                    f"(line {impure.lineno}); sampling must not mutate "
                    "simulator or container state re-entrantly"
                )

    def visit_Lambda(self, node: ast.Lambda, ctx: ModuleContext) -> _Yield:
        yield from self._check_reentrant_run(node.body, node, ctx)

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> _Yield:
        if ctx.in_function():  # only nested defs are event callbacks
            for stmt in node.body:
                yield from self._check_reentrant_run(stmt, node, ctx)

    def _check_reentrant_run(
        self, body: ast.AST, owner: ast.AST, ctx: ModuleContext
    ) -> _Yield:
        for sub in ast.walk(body):
            if (
                isinstance(sub, ast.Call)
                and call_tail(sub) == "run"
                and receiver_tail(sub) in _SIM_RECEIVERS
            ):
                yield sub, (
                    "callback re-enters Simulation.run; the event loop is "
                    "not re-entrant — schedule follow-up events instead"
                )


# ----------------------------------------------------------------------
# PAR001 — picklable-by-construction parallel tasks
# ----------------------------------------------------------------------

#: Constructors/entry points whose arguments cross the process-pool
#: boundary and therefore must pickle (module-level callables, frozen
#: dataclasses — never lambdas or closures).
_PICKLE_BOUNDARIES = {"GoodputTask", "make_phase_task", "make_joint_task"}
_EVALUATOR_RECEIVERS = {"evaluator", "_evaluator", "pool", "_pool"}


@register
class PicklableTaskRule(Rule):
    """Parallel-evaluator tasks must be picklable by construction.

    Rationale:
        Arguments to ``GoodputTask`` / ``make_phase_task`` /
        ``evaluator.run|map|submit`` cross the process-pool boundary and
        must pickle. Lambdas and functions defined inside another
        function never do — the failure surfaces only when the parallel
        path is exercised, so it is caught statically instead.

    Example violation:
        evaluator.run([lambda: simulate(cfg)])   # PAR001

    Suppression:
        pool.submit(fn)  # reprolint: disable=PAR001 -- thread pool, no pickle
    """

    name = "PAR001"
    summary = "parallel-evaluator tasks must be picklable by construction"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.core")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        tail = call_tail(node)
        crosses = tail in _PICKLE_BOUNDARIES or (
            tail in ("run", "map", "submit")
            and receiver_tail(node) in _EVALUATOR_RECEIVERS
        )
        if not crosses:
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        # Descend one level into literal containers: `evaluator.run([task])`
        # ships every element across the boundary too.
        for value in list(values):
            if isinstance(value, (ast.List, ast.Tuple)):
                values.extend(value.elts)
        for value in values:
            if isinstance(value, ast.Lambda):
                yield value, (
                    f"lambda passed across the process-pool boundary via "
                    f"`{tail}`; lambdas do not pickle — use a module-level "
                    "function or functools.partial over one"
                )
            elif isinstance(value, ast.Name) and value.id in ctx.nested_def_names:
                yield value, (
                    f"`{value.id}` is defined inside a function; nested "
                    f"functions do not pickle across `{tail}` — hoist it "
                    "to module level"
                )


# ----------------------------------------------------------------------
# OBS001 — allocation-light observability hot paths
# ----------------------------------------------------------------------

#: Per-event observability entry points: methods called once per span,
#: metric sample, or profiler event. At trace volume (10^5-10^6 events
#: per run) a comprehension's freshly-allocated list/dict per call is
#: measurable overhead — the <5% profiler budget in
#: benchmarks/bench_profile_overhead.py depends on these staying
#: append-only. Names are matched exactly, plus any method whose name
#: starts with ``record``.
_HOT_EVENT_METHODS = {
    "begin_pending",
    "end_pending",
    "note_pending",
    "span",
    "instant",
    "observe",
    "observe_arrival",
    "observe_completion",
    "inc",
    "dec",
    "set",
}

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

_COMP_LABEL = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}


def _is_hot_event_method(name: str) -> bool:
    return name in _HOT_EVENT_METHODS or name.startswith("record")


def _own_body(fn: ast.AST, include_lambdas: bool) -> "Iterator[ast.AST]":
    """Walk a function body without descending into nested defs.

    Nested defs are separate call-graph nodes judged by their own
    reachability; lambdas have no node of their own, so callers choose
    whether to attribute them to the enclosing function.
    """
    stack: "list[ast.AST]" = list(ast.iter_child_nodes(fn))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(sub, ast.Lambda) and not include_lambdas:
            continue
        stack.extend(ast.iter_child_nodes(sub))
        yield sub


@register
class HotPathComprehensionRule(Rule):
    """No comprehensions in profiler/metric per-event hot paths.

    Rationale:
        Per-event observability entry points (``record*``, ``span``,
        ``observe``, ``inc``, ...) run 10^5-10^6 times per trace; a
        comprehension allocates a fresh container every call, which is
        measurable against the <5% profiler-overhead budget. The rule
        flags comprehensions in those methods *and* in every function
        the project call graph shows they reach — a helper in another
        module called from ``record_exec`` is just as hot. Metric read
        callbacks (``fn=lambda: ...`` and callables handed to
        counter/gauge/histogram/register) are hot for the same reason.

    Example violation:
        def record_exec(self, batch):
            self.events.append([r.id for r in batch])   # OBS001

    Suppression:
        xs = [f(e) for e in evs]  # reprolint: disable=OBS001 -- cold branch
    """

    name = "OBS001"
    summary = "no comprehensions in profiler/metric per-event hot paths"

    def __init__(self) -> None:
        self._reach: "dict[int, frozenset[str]]" = {}

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.")

    @staticmethod
    def _is_seed(fn: "FunctionNode") -> bool:
        return (
            fn.cls is not None
            and _is_hot_event_method(fn.name)
            and fn.module.startswith(
                ("repro.simulator", "repro.serving", "repro.scheduling")
            )
        )

    def _reachable(self, project: "ProjectGraph") -> "frozenset[str]":
        key = id(project)
        cached = self._reach.get(key)
        if cached is None:
            seeds = [
                qualname
                for qualname, fn in project.functions.items()
                if self._is_seed(fn)
            ]
            # Callables registered as metric read callbacks run on every
            # collection pass — same budget as the record methods.
            seeds.extend(
                arg.callee
                for arg in project.callable_args
                if arg.sink in _CALLBACK_SINKS
            )
            cached = project.reachable_from(seeds)
            self._reach[key] = cached
        return cached

    def visit_Module(self, node: ast.Module, ctx: ModuleContext) -> _Yield:
        project = ctx.project
        if project is None:
            return
        hot = self._reachable(project)
        for fn in project.functions_in_module(ctx.module):
            if fn.qualname not in hot or fn.node is None:
                continue
            where = (
                f"per-event hot path `{fn.name}`"
                if self._is_seed(fn)
                else f"`{fn.name}`, reachable from a per-event hot path"
            )
            for sub in _own_body(fn.node, include_lambdas=False):
                if isinstance(sub, _COMPREHENSIONS):
                    yield sub, (
                        f"{_COMP_LABEL[type(sub)]} in {where}; this runs "
                        "once per span/metric/profiler event — append "
                        "plain tuples or use an explicit loop instead of "
                        "allocating a fresh container per call"
                    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> _Yield:
        # Metric read callbacks (`fn=lambda: ...`) run on every
        # collection pass — same per-event budget as the record methods.
        tail = call_tail(node)
        if tail not in _CALLBACK_SINKS:
            return
        callbacks: "list[ast.expr]" = [
            kw.value for kw in node.keywords if kw.arg == "fn"
        ]
        if tail == "register" and len(node.args) >= 2:
            callbacks.append(node.args[1])
        for callback in callbacks:
            if not isinstance(callback, ast.Lambda):
                continue
            for sub in ast.walk(callback.body):
                if isinstance(sub, _COMPREHENSIONS):
                    yield sub, (
                        f"{_COMP_LABEL[type(sub)]} in metric read "
                        "callback; collection samples every child each "
                        "pass — precompute or loop without allocating "
                        "per call"
                    )


# ----------------------------------------------------------------------
# PERF001 — O(1) work per decode step
# ----------------------------------------------------------------------

#: Entry points of the decode step loop: the per-step reference path,
#: the macro-run planner/finisher, and every helper the fast-forward
#: kernel (DESIGN.md §4h) calls while a run is in flight. Anything these
#: reach transitively runs once per decode step (or per macro run on a
#: batch of B requests), so an O(B) ``sum(...)`` reduction there undoes
#: the kernel's incremental bookkeeping.
_DECODE_LOOP_ROOTS = frozenset({
    "_run_step",
    "_finish_step",
    "_advance_decodes",
    "_run_fast",
    "_finish_fast_run",
    "_materialize",
    "_sync_to_now",
    "_kv_safe_steps",
})

#: Scheduling-policy entry points (repro.scheduling): every one runs
#: inside the batch-formation / admission path, once per scheduling
#: round, so the same O(B)-reduction discipline as the decode loop
#: applies to everything they reach.
_SCHED_LOOP_ROOTS = frozenset({
    "form_prefill",
    "reorder",
    "admit_decode",
    "select",
})


@register
class DecodeLoopSumRule(Rule):
    """No ``sum()`` reductions reachable from the decode step loop.

    Rationale:
        The decode step loop (``_run_step`` and the fast-forward kernel
        helpers, DESIGN.md §4h) runs once per decode step; an O(batch)
        ``sum(...)`` there undoes the kernel's incremental bookkeeping.
        Reachability is computed on the whole-program call graph, so a
        sum in ``repro.latency`` called from ``_run_step`` is flagged
        even though it lives outside the simulator package.

    Example violation:
        def _run_step(self):
            return sum(s.context_len for s in self._active)   # PERF001

    Suppression:
        t = sum(xs)  # reprolint: disable=PERF001 -- cold failure branch
    """

    name = "PERF001"
    summary = "no sum() reductions reachable from the decode step loop"

    def __init__(self) -> None:
        self._reach: "dict[int, frozenset[str]]" = {}

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.")

    def _reachable(self, project: "ProjectGraph") -> "frozenset[str]":
        key = id(project)
        cached = self._reach.get(key)
        if cached is None:
            seeds = [
                qualname
                for qualname, fn in project.functions.items()
                if (
                    fn.name in _DECODE_LOOP_ROOTS
                    and fn.module.startswith("repro.simulator")
                )
                or (
                    fn.name in _SCHED_LOOP_ROOTS
                    and fn.module.startswith("repro.scheduling")
                )
            ]
            cached = project.reachable_from(seeds)
            self._reach[key] = cached
        return cached

    def visit_Module(self, node: ast.Module, ctx: ModuleContext) -> _Yield:
        project = ctx.project
        if project is None:
            return
        reachable = self._reachable(project)
        for fn in project.functions_in_module(ctx.module):
            if fn.qualname not in reachable or fn.node is None:
                continue
            # Lambdas run inline on the step path, so they count as part
            # of the enclosing function; nested defs are their own nodes.
            for sub in _own_body(fn.node, include_lambdas=True):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "sum"
                ):
                    yield sub, (
                        f"sum() in `{fn.name}`, reachable from the "
                        "decode step loop; this is O(batch) work "
                        "per step — maintain the total "
                        "incrementally or hoist it out of the loop "
                        "(DESIGN.md §4h)"
                    )
