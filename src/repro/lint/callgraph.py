"""Project-wide call graph shared by whole-program lint rules.

Every reachability-based rule before this module reasoned about one
file at a time, so an ``O(batch)`` reduction two modules away from the
decode loop — or a ``free()`` reached through a serving-layer callback
— was invisible. :class:`ProjectGraph` indexes every function, method
and class across all linted files once per run and resolves call edges
through the constructs this tree actually uses:

* **aliased imports** — ``from ..latency.parallel import decode_times``
  and ``import repro.latency.parallel as lp; lp.decode_times(...)``
  both resolve to ``repro.latency.parallel.decode_times``;
* **method calls through attribute types** — ``self._timer =
  DecodeStepTimer(...)`` (or an ``x: KVBlockManager`` annotation) types
  the attribute, so ``self._timer.step_latency_fn(...)`` resolves to
  the method, including through single-level local aliases
  (``timer = self._timer``) and annotated parameters;
* **decorators** — ``@register`` application is an edge from the
  module's top-level pseudo-node to the decorator, and calls to the
  decorated name keep resolving to the decorated function;
* **first-order callables** — a function passed *as an argument*
  (``sim.schedule_at(end, _complete)``, tasks handed to
  ``ParallelEvaluator.run``, ``fn=self._pending_pull_depth``) creates
  an edge from the enclosing function to the callable, recorded with
  the sink's name so rules can treat callback registries as roots.

Unresolvable dynamic calls fall back to a *unique-name* match: if
exactly one project function has the called method name, the edge is
added (deterministic, and only widens reachability); ambiguous names
create no edge. Known blind spots are documented in DESIGN.md §4i.

Builds are cached two ways: an in-process memo keyed on the content
hash of every source file (so repeated engine runs in one process are
free), and an optional on-disk JSON cache (``--cache-dir``) storing the
resolved edges keyed on the same hash for CI reuse.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CallRecord",
    "CallableArg",
    "ClassInfo",
    "FunctionNode",
    "MODULE_NODE",
    "ProjectGraph",
    "build_from_sources",
    "build_project",
]

#: Name of the pseudo-function holding a module's top-level statements.
MODULE_NODE = "<module>"

#: Method names shared with builtin containers/strings/files: a project
#: class defining one of these uniquely must NOT capture every
#: ``list.append`` / ``dict.get`` in the tree via the unique-name
#: fallback, so these never resolve without a typed receiver.
_BUILTIN_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "close", "copy", "count",
    "discard", "extend", "format", "get", "index", "insert", "items",
    "join", "keys", "pop", "popleft", "read", "remove", "setdefault",
    "sort", "split", "strip", "update", "values", "write",
})


@dataclass(frozen=True)
class FunctionNode:
    """One function, method, or module pseudo-node in the graph."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]  # enclosing class qualname, if a method
    lineno: int
    path: str
    node: Optional[ast.AST] = field(compare=False, repr=False, default=None)


@dataclass(frozen=True)
class ClassInfo:
    """A project class: its methods, bases, and typed attributes."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    #: ``self.<attr>`` name -> class qualname inferred from constructor
    #: assignments, annotations, or annotated-parameter stores.
    attr_types: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallRecord:
    """One resolved call site inside a function body."""

    line: int
    col: int
    callees: Tuple[str, ...]
    receiver_class: Optional[str]
    #: True when resolved through a bound receiver (``obj.m()``), so the
    #: callee's leading ``self`` parameter is already consumed.
    bound: bool


@dataclass(frozen=True)
class CallableArg:
    """A first-order callable passed as an argument to some call."""

    caller: str
    sink: str  # tail name of the call receiving the callable
    callee: str


# ----------------------------------------------------------------------
# Per-module symbol tables (build-time only)
# ----------------------------------------------------------------------


class _ModuleIndex:
    def __init__(self, module: str, path: str, tree: ast.Module) -> None:
        self.module = module
        self.path = path
        self.tree = tree
        #: local binding -> absolute dotted target
        self.imports: Dict[str, str] = {}
        #: local class name -> class qualname
        self.local_classes: Dict[str, str] = {}


def _collect_imports(index: _ModuleIndex) -> None:
    package = index.module.rsplit(".", 1)[0] if "." in index.module else ""
    for node in ast.walk(index.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                index.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = index.module.split(".")
                # level=1 is the containing package of this module.
                anchor = anchor[: len(anchor) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            elif not base:
                base = package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                index.imports[bound] = f"{base}.{alias.name}" if base else alias.name


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------


class ProjectGraph:
    """Functions, classes, and resolved call edges over a set of modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.trees: Dict[str, ast.Module] = {}
        self.module_paths: Dict[str, str] = {}
        self.edges: Dict[str, Tuple[str, ...]] = {}
        self.callable_args: Tuple[CallableArg, ...] = ()
        self.call_records: Dict[str, Dict[Tuple[int, int], CallRecord]] = {}
        self.source_hash: str = ""
        self._reach_cache: "Dict[frozenset[str], frozenset[str]]" = {}

    # -- queries -------------------------------------------------------
    def functions_in_module(self, module: str) -> List[FunctionNode]:
        return sorted(
            (fn for fn in self.functions.values() if fn.module == module),
            key=lambda fn: fn.qualname,
        )

    def functions_named(self, name: str) -> List[FunctionNode]:
        return sorted(
            (fn for fn in self.functions.values() if fn.name == name),
            key=lambda fn: fn.qualname,
        )

    def reachable_from(self, seeds: Iterable[str]) -> "frozenset[str]":
        """Qualnames transitively reachable from ``seeds`` (inclusive)."""
        key = frozenset(seed for seed in seeds if seed in self.functions)
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        seen: "set[str]" = set()
        frontier: List[str] = sorted(key)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    frontier.append(callee)
        result = frozenset(seen)
        self._reach_cache[key] = result
        return result

    def calls_in(self, qualname: str) -> Dict[Tuple[int, int], CallRecord]:
        return self.call_records.get(qualname, {})


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------


class _Builder:
    def __init__(self, entries: Sequence[Tuple[str, str, str]]) -> None:
        # entries: (module, path, source) — deterministic order.
        self.graph = ProjectGraph()
        self.indexes: Dict[str, _ModuleIndex] = {}
        self.attr_types: Dict[str, Dict[str, str]] = {}
        self._edges: Dict[str, "set[str]"] = {}
        self._callable_args: List[CallableArg] = []
        hasher = hashlib.sha256()
        for module, path, source in entries:
            hasher.update(module.encode())
            hasher.update(b"\x00")
            hasher.update(source.encode("utf-8", "replace"))
            hasher.update(b"\x01")
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue  # the engine reports E999 for this file
            self.graph.trees[module] = tree
            self.graph.module_paths[module] = path
            self.indexes[module] = _ModuleIndex(module, path, tree)
        self.graph.source_hash = hasher.hexdigest()

    # -- pass A: indexing ---------------------------------------------
    def index(self) -> None:
        for module in sorted(self.indexes):
            index = self.indexes[module]
            _collect_imports(index)
            self._index_scope(index, index.tree, [], None)
            pseudo = f"{module}.{MODULE_NODE}"
            self.graph.functions[pseudo] = FunctionNode(
                qualname=pseudo,
                module=module,
                name=MODULE_NODE,
                cls=None,
                lineno=1,
                path=index.path,
                node=index.tree,
            )

    def _index_scope(
        self,
        index: _ModuleIndex,
        node: ast.AST,
        scope: List[str],
        cls: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = ".".join([index.module] + scope + [child.name])
                methods = tuple(
                    sub.name
                    for sub in child.body
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                bases = tuple(
                    name
                    for name in (_dotted(b) for b in child.bases)
                    if name is not None
                )
                self.graph.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=index.module,
                    name=child.name,
                    bases=bases,
                    methods=methods,
                )
                index.local_classes.setdefault(child.name, qualname)
                self._index_scope(index, child, scope + [child.name], qualname)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join([index.module] + scope + [child.name])
                self.graph.functions[qualname] = FunctionNode(
                    qualname=qualname,
                    module=index.module,
                    name=child.name,
                    cls=cls if isinstance(node, ast.ClassDef) else None,
                    lineno=child.lineno,
                    path=index.path,
                    node=child,
                )
                self._index_scope(index, child, scope + [child.name], None)
            else:
                self._index_scope(index, child, scope, cls)

    # -- name resolution helpers --------------------------------------
    def _resolve_class_name(
        self, index: _ModuleIndex, dotted: Optional[str]
    ) -> Optional[str]:
        """Resolve a (possibly aliased) dotted name to a class qualname."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        candidates = []
        local = index.local_classes.get(head)
        if local is not None and not rest:
            candidates.append(local)
        imported = index.imports.get(head)
        if imported is not None:
            candidates.append(f"{imported}.{rest}" if rest else imported)
        candidates.append(dotted)
        for candidate in candidates:
            if candidate in self.graph.classes:
                return candidate
        return None

    def _annotation_class(
        self, index: _ModuleIndex, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            text = annotation.value.strip()
            if text.isidentifier() or all(
                part.isidentifier() for part in text.split(".")
            ):
                return self._resolve_class_name(index, text)
            return None
        return self._resolve_class_name(index, _dotted(annotation))

    def _method_on(self, class_qual: str, name: str) -> Optional[str]:
        """Look up a method on a class or its project bases."""
        seen: "set[str]" = set()
        stack = [class_qual]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.graph.classes:
                continue
            seen.add(current)
            info = self.graph.classes[current]
            if name in info.methods:
                return f"{current}.{name}"
            index = self.indexes.get(info.module)
            if index is not None:
                for base in info.bases:
                    resolved = self._resolve_class_name(index, base)
                    if resolved is not None:
                        stack.append(resolved)
        return None

    # -- pass B: attribute typing -------------------------------------
    def type_attributes(self) -> None:
        for class_qual in sorted(self.graph.classes):
            info = self.graph.classes[class_qual]
            index = self.indexes.get(info.module)
            if index is None:
                continue
            attr_types: Dict[str, str] = {}
            for method in info.methods:
                fn = self.graph.functions.get(f"{class_qual}.{method}")
                if fn is None or fn.node is None:
                    continue
                assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
                params = self._param_types(index, fn.node)
                for sub in ast.walk(fn.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target, value = sub.targets[0], sub.value
                    elif isinstance(sub, ast.AnnAssign):
                        target, value = sub.target, sub.value
                        annotated = self._annotation_class(index, sub.annotation)
                        if (
                            annotated is not None
                            and _is_self_attr(target)
                            and isinstance(target, ast.Attribute)
                        ):
                            attr_types.setdefault(target.attr, annotated)
                            continue
                    if not (
                        target is not None
                        and _is_self_attr(target)
                        and isinstance(target, ast.Attribute)
                    ):
                        continue
                    inferred = self._value_class(index, value, params)
                    if inferred is not None:
                        attr_types.setdefault(target.attr, inferred)
            self.attr_types[class_qual] = attr_types
            self.graph.classes[class_qual] = ClassInfo(
                qualname=info.qualname,
                module=info.module,
                name=info.name,
                bases=info.bases,
                methods=info.methods,
                attr_types=dict(sorted(attr_types.items())),
            )

    def _param_types(
        self,
        index: _ModuleIndex,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Dict[str, str]:
        out: Dict[str, str] = {}
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        )
        for arg in args:
            resolved = self._annotation_class(index, arg.annotation)
            if resolved is not None:
                out[arg.arg] = resolved
        return out

    def _value_class(
        self,
        index: _ModuleIndex,
        value: Optional[ast.expr],
        params: Mapping[str, str],
    ) -> Optional[str]:
        """Class qualname produced by evaluating ``value``, if inferable."""
        if value is None:
            return None
        if isinstance(value, ast.Call):
            return self._resolve_class_name(index, _dotted(value.func))
        if isinstance(value, ast.Name):
            return params.get(value.id)
        return None

    # -- pass C: edges -------------------------------------------------
    def build_edges(self) -> None:
        unique_methods = self._unique_method_names()
        for qualname in sorted(self.graph.functions):
            fn = self.graph.functions[qualname]
            index = self.indexes.get(fn.module)
            if index is None or fn.node is None:
                continue
            self._edges.setdefault(qualname, set())
            records: Dict[Tuple[int, int], CallRecord] = {}
            scope = _FnScope(self, index, fn)
            for call in scope.owned_calls():
                callees, receiver_class, bound = scope.resolve_call(
                    call, unique_methods
                )
                for callee in callees:
                    self._edges[qualname].add(callee)
                if callees or receiver_class is not None:
                    records[(call.lineno, call.col_offset)] = CallRecord(
                        line=call.lineno,
                        col=call.col_offset,
                        callees=tuple(sorted(callees)),
                        receiver_class=receiver_class,
                        bound=bound,
                    )
                sink = _tail(call.func)
                if sink is not None:
                    for target in scope.callable_arguments(call):
                        self._edges[qualname].add(target)
                        self._callable_args.append(
                            CallableArg(caller=qualname, sink=sink, callee=target)
                        )
            if records:
                self.graph.call_records[qualname] = records
            if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Module pseudo-node: decorator applications anywhere in the
            # module run at import time, from module-level code.
            for sub in ast.walk(fn.node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    for decorator in sub.decorator_list:
                        expr = (
                            decorator.func
                            if isinstance(decorator, ast.Call)
                            else decorator
                        )
                        target = scope.resolve_function_name(_dotted(expr))
                        if target is not None:
                            self._edges[qualname].add(target)
        self.graph.edges = {
            caller: tuple(sorted(callees))
            for caller, callees in sorted(self._edges.items())
            if callees
        }
        self.graph.callable_args = tuple(
            sorted(
                self._callable_args,
                key=lambda record: (record.caller, record.sink, record.callee),
            )
        )

    def _unique_method_names(self) -> Dict[str, str]:
        """Bare name -> qualname, for names defined exactly once."""
        counts: Dict[str, List[str]] = {}
        for qualname, fn in self.graph.functions.items():
            if fn.name != MODULE_NODE:
                counts.setdefault(fn.name, []).append(qualname)
        return {
            name: quals[0]
            for name, quals in counts.items()
            if len(quals) == 1
            and not name.startswith("__")
            and name not in _BUILTIN_METHODS
        }

    def finish(self) -> ProjectGraph:
        return self.graph


def _dotted(node: Optional[ast.AST]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _tail(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class _FnScope:
    """Resolution context for one function body."""

    def __init__(
        self, builder: _Builder, index: _ModuleIndex, fn: FunctionNode
    ) -> None:
        self._builder = builder
        self._index = index
        self._fn = fn
        self._param_types: Dict[str, str] = {}
        self._var_types: Dict[str, str] = {}
        self._var_callables: Dict[str, str] = {}
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._param_types = builder._param_types(index, node)
            self._collect_locals(node)

    # -- body iteration ------------------------------------------------
    def owned_calls(self) -> List[ast.Call]:
        """Calls in this function's own body (lambdas included, nested
        defs excluded — they are their own graph nodes)."""
        calls: List[ast.Call] = []
        node = self._fn.node
        if node is None:
            return calls
        roots = list(ast.iter_child_nodes(node))
        while roots:
            current = roots.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(current, ast.Call):
                calls.append(current)
            roots.extend(ast.iter_child_nodes(current))
        calls.sort(key=lambda call: (call.lineno, call.col_offset))
        return calls

    def _collect_locals(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        stack = list(ast.iter_child_nodes(node))
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(current))
            if not (
                isinstance(current, ast.Assign)
                and len(current.targets) == 1
                and isinstance(current.targets[0], ast.Name)
            ):
                continue
            name = current.targets[0].id
            value = current.value
            if isinstance(value, ast.Call):
                inferred = self._builder._resolve_class_name(
                    self._index, _dotted(value.func)
                )
                if inferred is not None:
                    self._var_types.setdefault(name, inferred)
            elif isinstance(value, ast.Name):
                typed = self._param_types.get(value.id)
                if typed is not None:
                    self._var_types.setdefault(name, typed)
            elif isinstance(value, ast.Attribute):
                # ``timer = self._timer`` keeps the attribute's type;
                # ``inner = engine.submit`` captures a bound method.
                recv_type = self.type_of(value.value)
                if recv_type is not None:
                    attr_class = self._builder.attr_types.get(recv_type, {})
                    typed_attr = attr_class.get(value.attr)
                    if typed_attr is not None:
                        self._var_types.setdefault(name, typed_attr)
                        continue
                    method = self._builder._method_on(recv_type, value.attr)
                    if method is not None:
                        self._var_callables.setdefault(name, method)

    # -- typing --------------------------------------------------------
    def type_of(self, expr: ast.expr) -> Optional[str]:
        """Class qualname of an expression's value, if inferable."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self._fn.cls is not None:
                return self._fn.cls
            return self._var_types.get(expr.id) or self._param_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is not None:
                typed = self._builder.attr_types.get(base, {}).get(expr.attr)
                if typed is not None:
                    return typed
            resolved = self._builder._resolve_class_name(self._index, _dotted(expr))
            return resolved
        if isinstance(expr, ast.Call):
            return self._builder._resolve_class_name(
                self._index, _dotted(expr.func)
            )
        return None

    # -- call resolution -----------------------------------------------
    def resolve_function_name(self, dotted: Optional[str]) -> Optional[str]:
        """Resolve a dotted callable name to a project function/ctor."""
        if not dotted:
            return None
        graph = self._builder.graph
        head, _, rest = dotted.partition(".")
        candidates: List[str] = []
        if not rest:
            # A def nested directly inside this function, then sibling
            # defs walking outward through the enclosing scopes.
            candidates.append(f"{self._fn.qualname}.{head}")
            scope = self._fn.qualname
            while "." in scope:
                scope = scope.rsplit(".", 1)[0]
                candidates.append(f"{scope}.{head}")
            candidates.append(f"{self._index.module}.{head}")
        imported = self._index.imports.get(head)
        if imported is not None:
            candidates.append(f"{imported}.{rest}" if rest else imported)
        candidates.append(dotted)
        for candidate in candidates:
            if candidate in graph.functions:
                return candidate
            if candidate in graph.classes:
                init = f"{candidate}.__init__"
                return init if init in graph.functions else None
        return None

    def resolve_call(
        self, call: ast.Call, unique_methods: Mapping[str, str]
    ) -> Tuple[List[str], Optional[str], bool]:
        """(callee qualnames, receiver class, bound?) for one call."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self._var_callables.get(func.id)
            if local is not None:
                return [local], None, True
            target = self.resolve_function_name(func.id)
            return ([target] if target else []), None, False
        if not isinstance(func, ast.Attribute):
            return [], None, False
        # Fully-qualified (possibly aliased) module function.
        direct = self.resolve_function_name(_dotted(func))
        if direct is not None:
            return [direct], None, False
        receiver_class = self.type_of(func.value)
        if receiver_class is not None:
            method = self._builder._method_on(receiver_class, func.attr)
            if method is not None:
                return [method], receiver_class, True
            return [], receiver_class, True
        # ``self.m()`` on a class that doesn't define m (mixins, dynamic
        # assignment): over-approximate with same-module methods.
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            matches = [
                fn.qualname
                for fn in self._builder.graph.functions_in_module(
                    self._index.module
                )
                if fn.name == func.attr and fn.cls is not None
            ]
            if matches:
                return matches, None, True
        unique = unique_methods.get(func.attr)
        if unique is not None:
            return [unique], None, True
        return [], None, True

    def callable_arguments(self, call: ast.Call) -> List[str]:
        """Project functions passed (not called) as arguments."""
        out: List[str] = []
        values: List[ast.expr] = list(call.args) + [
            kw.value for kw in call.keywords
        ]
        for value in list(values):
            if isinstance(value, (ast.List, ast.Tuple)):
                values.extend(value.elts)
        for value in values:
            if isinstance(value, ast.Name):
                target = self.resolve_function_name(value.id)
                if target is not None:
                    out.append(target)
            elif isinstance(value, ast.Attribute):
                recv_type = self.type_of(value.value)
                if recv_type is not None:
                    method = self._builder._method_on(recv_type, value.attr)
                    if method is not None:
                        out.append(method)
                        continue
                target = self.resolve_function_name(_dotted(value))
                if target is not None:
                    out.append(target)
        return sorted(set(out))


# ----------------------------------------------------------------------
# Build entry points + caching
# ----------------------------------------------------------------------

_MEMO: Dict[str, ProjectGraph] = {}


def build_project(
    entries: Sequence[Tuple[str, str, str]],
    cache_dir: "str | Path | None" = None,
) -> ProjectGraph:
    """Build (or reuse) the graph for ``(module, path, source)`` entries."""
    builder = _Builder(entries)
    cached = _MEMO.get(builder.graph.source_hash)
    if cached is not None:
        return cached
    builder.index()
    builder.type_attributes()
    disk = _load_disk_cache(cache_dir, builder.graph.source_hash)
    if disk is not None:
        _apply_disk_cache(builder.graph, disk)
    else:
        builder.build_edges()
        _write_disk_cache(cache_dir, builder.graph)
    graph = builder.finish()
    _MEMO.clear()  # keep at most one graph alive
    _MEMO[graph.source_hash] = graph
    return graph


def build_from_sources(sources: Mapping[str, str]) -> ProjectGraph:
    """Convenience builder for in-memory fixtures: module name -> source."""
    entries = [
        (module, f"<{module}>", source) for module, source in sorted(sources.items())
    ]
    return build_project(entries)


def _cache_path(cache_dir: "str | Path | None", source_hash: str) -> Optional[Path]:
    if cache_dir is None:
        return None
    return Path(cache_dir) / f"callgraph-{source_hash[:32]}.json"


def _load_disk_cache(
    cache_dir: "str | Path | None", source_hash: str
) -> "dict[str, object] | None":
    path = _cache_path(cache_dir, source_hash)
    if path is None or not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("hash") != source_hash:
        return None
    return payload


def _apply_disk_cache(graph: ProjectGraph, payload: "dict[str, object]") -> None:
    edges = payload.get("edges")
    if isinstance(edges, dict):
        graph.edges = {
            str(caller): tuple(str(c) for c in callees)
            for caller, callees in sorted(edges.items())
            if isinstance(callees, list)
        }
    callable_args = payload.get("callable_args")
    if isinstance(callable_args, list):
        graph.callable_args = tuple(
            CallableArg(caller=str(r[0]), sink=str(r[1]), callee=str(r[2]))
            for r in callable_args
            if isinstance(r, list) and len(r) == 3
        )
    records = payload.get("call_records")
    if isinstance(records, dict):
        out: Dict[str, Dict[Tuple[int, int], CallRecord]] = {}
        for qualname, table in records.items():
            if not isinstance(table, dict):
                continue
            parsed: Dict[Tuple[int, int], CallRecord] = {}
            for key, raw in table.items():
                line_text, _, col_text = str(key).partition(":")
                if not isinstance(raw, dict):
                    continue
                receiver = raw.get("receiver_class")
                parsed[(int(line_text), int(col_text))] = CallRecord(
                    line=int(line_text),
                    col=int(col_text),
                    callees=tuple(str(c) for c in raw.get("callees", [])),
                    receiver_class=str(receiver) if receiver is not None else None,
                    bound=bool(raw.get("bound", False)),
                )
            out[str(qualname)] = parsed
        graph.call_records = out


def _write_disk_cache(cache_dir: "str | Path | None", graph: ProjectGraph) -> None:
    path = _cache_path(cache_dir, graph.source_hash)
    if path is None:
        return
    payload = {
        "hash": graph.source_hash,
        "edges": {
            caller: list(callees) for caller, callees in sorted(graph.edges.items())
        },
        "callable_args": [
            [record.caller, record.sink, record.callee]
            for record in graph.callable_args
        ],
        "call_records": {
            qualname: {
                f"{line}:{col}": {
                    "callees": list(record.callees),
                    "receiver_class": record.receiver_class,
                    "bound": record.bound,
                }
                for (line, col), record in sorted(table.items())
            }
            for qualname, table in sorted(graph.call_records.items())
        },
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=0, sort_keys=True), encoding="utf-8")
    except OSError:
        pass  # caching is best-effort; the build already succeeded
