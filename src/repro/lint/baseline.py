"""Findings baseline ratchet: land rules warn-only, tighten in CI.

A baseline is a committed snapshot of known findings. ``--baseline
write`` records the current findings; ``--baseline check`` fails only
on findings *not* in the snapshot, so a new rule can ship before every
pre-existing hit is fixed, while CI still blocks regressions. Shrink
the file over time; an empty baseline is the steady state (and what
this tree commits).

Entries are keyed ``(rule, path, stripped source line text)`` rather
than line *numbers*, so unrelated edits above a known finding don't
churn the baseline. The trade-off: two identical offending lines in one
file collapse into one entry — acceptable for a ratchet, which only
ever needs to over-match the old findings, never under-match new ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from .engine import Finding

__all__ = [
    "DEFAULT_BASELINE_FILE",
    "filter_findings",
    "load_baseline",
    "write_baseline",
]

DEFAULT_BASELINE_FILE = "LINT_BASELINE.json"

_Key = Tuple[str, str, str]


def _normalize_path(path: str) -> str:
    candidate = Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


def _line_text(finding: Finding) -> str:
    """Stripped source text at the finding's line ('' if unreadable)."""
    try:
        lines = Path(finding.path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return ""
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""


def _key(finding: Finding) -> _Key:
    return (finding.rule, _normalize_path(finding.path), _line_text(finding))


def write_baseline(findings: Sequence[Finding], path: "str | Path") -> int:
    """Snapshot findings to ``path``; returns the entry count."""
    entries = sorted({_key(f) for f in findings})
    payload = {
        "tool": "reprolint-baseline",
        "version": 1,
        "entries": [
            {"rule": rule, "path": rel_path, "text": text}
            for rule, rel_path, text in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: "str | Path") -> "Set[_Key]":
    """Load a baseline file; a missing file is an empty baseline."""
    target = Path(path)
    if not target.exists():
        return set()
    payload = json.loads(target.read_text(encoding="utf-8"))
    entries = payload.get("entries", [])
    return {
        (str(e.get("rule", "")), str(e.get("path", "")), str(e.get("text", "")))
        for e in entries
    }


def filter_findings(
    findings: Sequence[Finding], baseline: "Set[_Key]"
) -> "List[Finding]":
    """Findings not covered by the baseline (the ones that fail CI)."""
    return [f for f in findings if _key(f) not in baseline]
