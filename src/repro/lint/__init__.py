"""reprolint: determinism & simulation-invariant static analysis.

The placement search trusts the simulator; the simulator is only
trustworthy because a handful of invariants hold everywhere: virtual
time is the *only* clock, randomness is always seeded and threaded
explicitly, iteration orders feeding schedulers/fingerprints are
deterministic, float accumulation in reported metrics is
order-robust, events never fire in the virtual past, and objects
crossing the process-pool boundary pickle by construction.

:mod:`repro.lint` machine-checks those invariants over the AST so they
stop being tribal knowledge. Since PR 7 the engine builds one
whole-program call graph (:mod:`repro.lint.callgraph`) shared by every
reachability rule, checks resource protocols interprocedurally
(:mod:`repro.lint.typestate`: KV-block lifecycle TS001, transfer-handle
protocol TS002), and infers unit dimensions (:mod:`repro.lint.units`:
UNIT001, seconds-vs-ms-vs-tokens mixing). Run it via::

    python -m repro.cli lint src tests
    python -m repro.cli lint --format json --select DET001,SIM001 src
    python -m repro.cli lint --explain TS001
    python -m repro.cli lint --baseline check src tests

Suppress a deliberate exception on the offending line (with a reason)::

    t0 = time.perf_counter()  # reprolint: disable=DET001 -- wall-clock stats only

See DESIGN.md "Correctness tooling" for the rule-by-rule rationale.
"""

from .engine import (
    Finding,
    LintEngine,
    Rule,
    all_rules,
    findings_to_json,
    format_findings,
    lint_paths,
    lint_source,
    lint_sources,
    register,
    rule_names,
)
from . import rules as _rules  # noqa: F401  (imports register the rule pack)
from . import typestate as _typestate  # noqa: F401  (registers TS001/TS002)
from . import units as _units  # noqa: F401  (registers UNIT001)

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "all_rules",
    "findings_to_json",
    "format_findings",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "register",
    "rule_names",
]
