"""reprolint engine: rule registry, AST dispatch, suppressions, output.

The engine is rule-agnostic. Each :class:`Rule` subclass declares a
``name``/``summary`` and implements ``visit_<NodeType>`` methods; the
engine parses each file once, walks the tree once, and dispatches every
node to every selected rule that handles its type. Rules receive a
:class:`ModuleContext` carrying the dotted module name, source lines,
parent links, and the enclosing-function stack, so they can scope
themselves (e.g. "only inside ``repro.simulator``") and reason about
surrounding statements (e.g. "was this delay asserted non-negative?").

Suppressions are line-scoped comments, checked on the finding's line and
on an immediately preceding comment-only line::

    risky()  # reprolint: disable=DET001 -- justification
    # reprolint: disable=SIM001,SIM002 -- justification
    also_risky()

A file-level escape hatch (``# reprolint: disable-file=RULE``) exists
for generated code; nothing in this tree uses it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .callgraph import ProjectGraph

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "all_rules",
    "findings_to_json",
    "format_findings",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "register",
    "rule_names",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_, ]+|all)")
_FILE_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_, ]+|all)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> "dict[str, object]":
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (e.g. ``"DET001"``) and ``summary``, then
    implement any ``visit_<NodeType>(self, node, ctx)`` methods they
    need, each yielding ``(node_for_location, message)`` pairs. The
    engine turns those into :class:`Finding` objects and applies
    suppressions, so rules never deal with comments or paths.
    """

    name: str = ""
    summary: str = ""

    def applies_to(self, ctx: "ModuleContext") -> bool:
        """Whether this rule runs at all for the given module."""
        return True


_REGISTRY: "dict[str, Type[Rule]]" = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> "dict[str, Type[Rule]]":
    """The registered rule classes, keyed by rule name."""
    return dict(_REGISTRY)


def rule_names() -> "list[str]":
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Module context
# ----------------------------------------------------------------------

@dataclass
class ModuleContext:
    """Per-file state shared by every rule during one walk."""

    path: str
    module: str
    tree: ast.Module
    lines: "list[str]"
    #: Ancestor chain of the node currently being visited (outermost
    #: first); maintained by the walker, read via :meth:`parent`.
    stack: "list[ast.AST]" = field(default_factory=list)
    #: Names of functions defined *inside* another function anywhere in
    #: the module (their qualnames contain ``<locals>`` — not picklable).
    nested_def_names: "set[str]" = field(default_factory=set)
    #: Whole-program call graph over every file in this lint run (a
    #: single-module graph when linting one source blob). Shared by all
    #: reachability/typestate rules; None only for hand-built contexts.
    project: "ProjectGraph | None" = None

    def parent(self) -> "ast.AST | None":
        """Parent of the node currently being visited."""
        return self.stack[-2] if len(self.stack) >= 2 else None

    def enclosing_function(self) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        for node in reversed(self.stack[:-1]):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def in_function(self) -> bool:
        return self.enclosing_function() is not None

    def in_nested_callable(self) -> bool:
        """Whether the current node sits inside a lambda or nested def."""
        seen_callable = 0
        for node in self.stack[:-1]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                seen_callable += 1
        return seen_callable >= 2

    def scope_qualname(self) -> str:
        """Project-graph qualname of the enclosing function scope.

        Matches :mod:`repro.lint.callgraph` naming exactly:
        ``module.Class.method``, ``module.func.inner`` for nested defs,
        and ``module.<module>`` for module-level (or class-body-level)
        code — lambdas attribute to their enclosing def, like the graph.
        """
        parts: "list[str]" = []
        for node in self.stack[:-1]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                parts.append(node.name)
        # Trim a trailing run of class names: code directly in a class
        # body executes at import time, which the graph attributes to
        # the module pseudo-node.
        defs = [
            node
            for node in self.stack[:-1]
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        while defs and isinstance(defs[-1], ast.ClassDef):
            defs.pop()
            parts.pop()
        if not parts:
            return f"{self.module}.<module>"
        return f"{self.module}.{'.'.join(parts)}"


# ----------------------------------------------------------------------
# Shared AST helpers (used by the rule pack; centralized here so every
# rule resolves names identically)
# ----------------------------------------------------------------------

def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> "str | None":
    """Dotted name of a call target (``time.time`` for ``time.time()``)."""
    return dotted_name(node.func)


def call_tail(node: ast.Call) -> "str | None":
    """Last component of the call target (``schedule`` for ``x.y.schedule()``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def receiver_tail(node: ast.Call) -> "str | None":
    """Last component of the call receiver (``_sim`` for ``self._sim.f()``)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    recv = func.value
    if isinstance(recv, ast.Attribute):
        return recv.attr
    if isinstance(recv, ast.Name):
        return recv.id
    return None


# ----------------------------------------------------------------------
# Walker
# ----------------------------------------------------------------------

class _Walker:
    """Single-pass AST walk dispatching each node to interested rules."""

    def __init__(self, rules: Sequence[Rule], ctx: ModuleContext) -> None:
        self._ctx = ctx
        self.findings: "list[Finding]" = []
        # Pre-bind (node-type -> [(rule name, bound handler)]) lazily.
        self._rules = rules
        self._dispatch: "dict[str, list]" = {}

    def _handlers_for(self, type_name: str) -> "list":
        handlers = self._dispatch.get(type_name)
        if handlers is None:
            handlers = [
                (rule.name, getattr(rule, "visit_" + type_name))
                for rule in self._rules
                if hasattr(rule, "visit_" + type_name)
            ]
            self._dispatch[type_name] = handlers
        return handlers

    def walk(self, node: ast.AST) -> None:
        ctx = self._ctx
        ctx.stack.append(node)
        for rule_name, handler in self._handlers_for(type(node).__name__):
            for loc_node, message in handler(node, ctx):
                self.findings.append(
                    Finding(
                        path=ctx.path,
                        line=getattr(loc_node, "lineno", 0),
                        col=getattr(loc_node, "col_offset", 0),
                        rule=rule_name,
                        message=message,
                    )
                )
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        ctx.stack.pop()


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def _parse_rule_list(raw: str) -> "set[str]":
    return {part.strip() for part in raw.split(",") if part.strip()}


def _line_suppressions(lines: Sequence[str]) -> "dict[int, set[str]]":
    """1-based line -> set of rule names (or {'all'}) suppressed there."""
    table: "dict[int, set[str]]" = {}
    for idx, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            table[idx] = _parse_rule_list(match.group(1))
    return table


def _file_suppressions(lines: Sequence[str]) -> "set[str]":
    out: "set[str]" = set()
    for line in lines:
        match = _FILE_SUPPRESS_RE.search(line)
        if match:
            out |= _parse_rule_list(match.group(1))
    return out


def _is_suppressed(
    finding: Finding,
    line_table: "dict[int, set[str]]",
    file_rules: "set[str]",
    lines: Sequence[str],
) -> bool:
    if "all" in file_rules or finding.rule in file_rules:
        return True
    for candidate in (finding.line, finding.line - 1):
        rules = line_table.get(candidate)
        if rules is None:
            continue
        if candidate != finding.line:
            # A preceding-line suppression only counts if that line is a
            # comment-only line (otherwise it belongs to other code).
            text = lines[candidate - 1] if candidate - 1 < len(lines) else ""
            if not text.lstrip().startswith("#"):
                continue
        if "all" in rules or finding.rule in rules:
            return True
    return False


# ----------------------------------------------------------------------
# Module naming & file discovery
# ----------------------------------------------------------------------

def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at src/ or a package root.

    ``src/repro/simulator/events.py`` -> ``repro.simulator.events``;
    ``tests/test_lint.py`` -> ``tests.test_lint``; anything else falls
    back to progressively shorter suffixes ending at the stem.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src",):
        if anchor in parts:
            tail = parts[parts.index(anchor) + 1:]
            if tail:
                return ".".join(tail)
    for anchor in ("repro", "tests", "examples", "benchmarks"):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return parts[-1] if parts else ""


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    seen: "set[Path]" = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

class LintEngine:
    """Configured lint run: selected rules over files or source text."""

    def __init__(
        self,
        select: "Sequence[str] | None" = None,
        cache_dir: "str | Path | None" = None,
    ) -> None:
        registry = all_rules()
        if select:
            unknown = [name for name in select if name not in registry]
            if unknown:
                raise ValueError(
                    f"unknown rule(s): {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(registry))}"
                )
            names = [name for name in sorted(registry) if name in set(select)]
        else:
            names = sorted(registry)
        self.rules: "list[Rule]" = [registry[name]() for name in names]
        self._cache_dir = cache_dir

    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", module: "str | None" = None
    ) -> "list[Finding]":
        """Lint one blob of Python source (single-module call graph)."""
        if module is None:
            module = module_name_for(Path(path))
        return self.lint_sources({module: source}, paths={module: path})

    def lint_sources(
        self,
        sources: "Mapping[str, str]",
        paths: "Mapping[str, str] | None" = None,
    ) -> "list[Finding]":
        """Lint in-memory modules together, sharing one project graph.

        ``sources`` maps dotted module names to source text; rules that
        consume the call graph see edges *across* the given modules, so
        cross-module fixtures are testable without touching disk.
        """
        from .callgraph import build_project

        entries = [
            (
                module,
                (paths or {}).get(module, f"<{module}>"),
                sources[module],
            )
            for module in sorted(sources)
        ]
        project = build_project(entries, cache_dir=self._cache_dir)
        findings: "list[Finding]" = []
        for module, path, source in entries:
            findings.extend(self._lint_one(source, path, module, project))
        return sorted(findings)

    def _lint_one(
        self,
        source: str,
        path: str,
        module: str,
        project: "ProjectGraph | None",
    ) -> "list[Finding]":
        tree: "ast.Module | None" = None
        if project is not None and project.module_paths.get(module) == path:
            tree = project.trees.get(module)
        if tree is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                return [
                    Finding(
                        path=path,
                        line=exc.lineno or 0,
                        col=exc.offset or 0,
                        rule="E999",
                        message=f"syntax error: {exc.msg}",
                    )
                ]
        lines = source.splitlines()
        ctx = ModuleContext(
            path=path,
            module=module,
            tree=tree,
            lines=lines,
            nested_def_names=_collect_nested_defs(tree),
            project=project,
        )
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        walker = _Walker(active, ctx)
        walker.walk(tree)
        line_table = _line_suppressions(lines)
        file_rules = _file_suppressions(lines)
        kept = {
            f for f in walker.findings
            if not _is_suppressed(f, line_table, file_rules, lines)
        }
        return sorted(kept)

    def lint_file(self, path: Path) -> "list[Finding]":
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, path=str(path))

    def lint_paths(self, paths: Iterable[str]) -> "Tuple[list[Finding], int]":
        """Lint files/directories; returns (findings, files_checked).

        All files are indexed into one shared project call graph before
        any rule runs, so reachability/typestate rules see cross-module
        edges. Parse trees are built once and reused by the rules.
        """
        from .callgraph import build_project

        entries: "list[Tuple[str, str, str]]" = []
        for file_path in iter_python_files(paths):
            entries.append(
                (
                    module_name_for(file_path),
                    str(file_path),
                    file_path.read_text(encoding="utf-8"),
                )
            )
        project = build_project(entries, cache_dir=self._cache_dir)
        findings: "list[Finding]" = []
        for module, path, source in entries:
            findings.extend(self._lint_one(source, path, module, project))
        return sorted(findings), len(entries)


def _collect_nested_defs(tree: ast.Module) -> "set[str]":
    """Names of def statements nested inside another function."""
    nested: "set[str]" = set()

    def _scan(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth > 0:
                    nested.add(child.name)
                child_depth = depth + 1
            elif isinstance(child, ast.Lambda):
                child_depth = depth + 1
            _scan(child, child_depth)

    _scan(tree, 0)
    return nested


# ----------------------------------------------------------------------
# Convenience API + output formats
# ----------------------------------------------------------------------

def lint_source(
    source: str,
    path: str = "<string>",
    module: "str | None" = None,
    select: "Sequence[str] | None" = None,
) -> "list[Finding]":
    return LintEngine(select=select).lint_source(source, path=path, module=module)


def lint_sources(
    sources: "Mapping[str, str]",
    select: "Sequence[str] | None" = None,
) -> "list[Finding]":
    """Lint several in-memory modules against one shared call graph."""
    return LintEngine(select=select).lint_sources(sources)


def lint_paths(
    paths: Iterable[str], select: "Sequence[str] | None" = None
) -> "Tuple[list[Finding], int]":
    return LintEngine(select=select).lint_paths(paths)


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    out = [f.format() for f in findings]
    if findings:
        counts: "dict[str, int]" = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        out.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    else:
        out.append("reprolint: clean")
    return "\n".join(out)


def findings_to_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Deterministic JSON report (stable ordering, no timestamps)."""
    counts: "dict[str, int]" = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    payload = {
        "tool": "reprolint",
        "version": 1,
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in sorted(findings)],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
