"""Interprocedural typestate protocols: static twin of SimSanitizer.

Two resource protocols ship with the linter, mirroring the runtime
checks in :mod:`repro.simulator.sanitizer`:

* **TS001 — KV-block lifecycle** (``allocate → (append | transfer_out |
  transfer_in)* → free``): flags double-free, free/use of a key that
  was never allocated, use-after-free, double-allocate, and — inside
  ``repro.simulator`` — KV blocks allocated under a locally-born key
  that are provably never freed on any path (the static analogue of the
  sanitizer's ``kv-leak`` quiesce audit).
* **TS002 — transfer-handle protocol** (``submit → complete``): flags
  double-submit, double-complete, and complete-without-submit — the
  static analogue of the sanitizer's ``transfer-double-submit`` /
  ``transfer-double-complete`` violations.

The analysis is path-insensitive but branch-aware: every tracked key
holds a *set* of possible states, a conditional event unions the
post-state in instead of replacing it, and an error is reported only
when **every** state in the set errors — i.e. the violation holds on
all paths, never "might hold on some path". It is interprocedural via
per-function summaries propagated over the shared project call graph:
``prefill.release_kv(rid)`` counts as a must-free of ``rid`` because
``PrefillInstance.release_kv`` unconditionally frees its parameter, and
the protocol classes' own methods (``KVBlockManager.allocate``,
``TransferEngine.submit``, ...) seed the summary table, so any call the
graph resolves to them is an event even when the receiver is named
something unhinted.

Receivers are matched three ways: by resolved class
(``self._kv: KVBlockManager``), by call-graph resolution (bound-method
aliases, unique project methods), and by a conservative name hint
(``kv``/``transfer`` in the receiver name) so single-module fixtures
without the class definition still check. Known blind spots (dict-held
keys, cross-object aliasing, exception edges) are listed in DESIGN.md
§4i.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .callgraph import FunctionNode, ProjectGraph
from .engine import ModuleContext, Rule, register

__all__ = [
    "KVLifecycleRule",
    "TransferProtocolRule",
    "Protocol",
]

_Yield = Iterator[Tuple[ast.AST, str]]

# Event kinds -----------------------------------------------------------
_ACQUIRE = "acquire"
_USE = "use"
_RELEASE = "release"

# Abstract states -------------------------------------------------------
_UNKNOWN = "unknown"    # key came from outside (parameter, attribute, ...)
_LOCAL = "local"        # key was born in this function, nothing acquired
_ACQUIRED = "acquired"
_RELEASED = "released"


@dataclass(frozen=True)
class Protocol:
    """One resource protocol checked by the typestate engine."""

    rule: str
    noun: str
    ops: Mapping[str, str]  # method name -> event kind
    key_kw: str
    receiver_hint: "re.Pattern[str]"
    receiver_classes: Tuple[str, ...]
    verbs: Mapping[str, str]  # event kind -> verb used in messages
    check_leak: bool = False
    leak_prefixes: Tuple[str, ...] = ()


_KV_PROTOCOL = Protocol(
    rule="TS001",
    noun="KV block",
    ops={
        "allocate": _ACQUIRE,
        "free": _RELEASE,
        "append": _USE,
        "transfer_out": _USE,
        "transfer_in": _USE,
    },
    key_kw="request_id",
    receiver_hint=re.compile(r"kv", re.IGNORECASE),
    receiver_classes=("KVBlockManager",),
    verbs={_ACQUIRE: "allocate", _USE: "use", _RELEASE: "free"},
    check_leak=True,
    leak_prefixes=("repro.simulator", "repro.scheduling"),
)

_TRANSFER_PROTOCOL = Protocol(
    rule="TS002",
    noun="transfer handle",
    ops={"submit": _ACQUIRE, "complete": _RELEASE},
    key_kw="request_id",
    receiver_hint=re.compile(r"transfer|xfer", re.IGNORECASE),
    receiver_classes=("TransferEngine",),
    verbs={_ACQUIRE: "submit", _USE: "use", _RELEASE: "complete"},
)


@dataclass(frozen=True)
class _Event:
    kind: str
    op: str
    key: str
    must: bool
    node: ast.AST = field(compare=False, repr=False)


#: (state, kind) -> (next state, error label or None). Errors carry the
#: label used to build the finding message; the state still advances so
#: one bug yields one finding, not a cascade.
_TRANSITIONS: "Dict[Tuple[str, str], Tuple[str, Optional[str]]]" = {
    (_LOCAL, _ACQUIRE): (_ACQUIRED, None),
    (_UNKNOWN, _ACQUIRE): (_ACQUIRED, None),
    (_RELEASED, _ACQUIRE): (_ACQUIRED, None),
    (_ACQUIRED, _ACQUIRE): (_ACQUIRED, "re-acquire"),
    (_LOCAL, _USE): (_LOCAL, "use-unacquired"),
    (_UNKNOWN, _USE): (_UNKNOWN, None),
    (_ACQUIRED, _USE): (_ACQUIRED, None),
    (_RELEASED, _USE): (_RELEASED, "use-after-release"),
    (_LOCAL, _RELEASE): (_RELEASED, "release-unacquired"),
    (_UNKNOWN, _RELEASE): (_RELEASED, None),
    (_ACQUIRED, _RELEASE): (_RELEASED, None),
    (_RELEASED, _RELEASE): (_RELEASED, "double-release"),
}


# ----------------------------------------------------------------------
# Summaries: qualname -> param -> event kind -> must?
# ----------------------------------------------------------------------

_Summary = Dict[str, Dict[str, bool]]


def _seed_summaries(graph: ProjectGraph, protocol: Protocol) -> "Dict[str, _Summary]":
    summaries: "Dict[str, _Summary]" = {}
    for class_qual in sorted(graph.classes):
        info = graph.classes[class_qual]
        if info.name not in protocol.receiver_classes:
            continue
        for op, kind in sorted(protocol.ops.items()):
            qualname = f"{class_qual}.{op}"
            if qualname in graph.functions:
                summaries[qualname] = {protocol.key_kw: {kind: True}}
    return summaries


def _merge_summary(
    summaries: "Dict[str, _Summary]", qualname: str, events: Sequence[_Event]
) -> bool:
    """Fold param-keyed events into the summary table; True if changed."""
    changed = False
    for event in events:
        if not event.key.isidentifier():
            continue
        per_fn = summaries.setdefault(qualname, {})
        per_param = per_fn.setdefault(event.key, {})
        prior = per_param.get(event.kind)
        if prior is None or (event.must and not prior):
            per_param[event.kind] = event.must or bool(prior)
            changed = True
    return changed


def _param_names(fn: FunctionNode, bound: bool) -> List[str]:
    node = fn.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    params = [a.arg for a in list(node.args.posonlyargs) + list(node.args.args)]
    if bound and params and params[0] in ("self", "cls"):
        params = params[1:]
    return params


# ----------------------------------------------------------------------
# Event extraction (branch-aware, in source order)
# ----------------------------------------------------------------------


class _Extractor:
    def __init__(
        self,
        graph: ProjectGraph,
        protocol: Protocol,
        summaries: "Dict[str, _Summary]",
        fn: FunctionNode,
    ) -> None:
        self._graph = graph
        self._protocol = protocol
        self._summaries = summaries
        self._fn = fn
        self._records = graph.calls_in(fn.qualname)
        self.events: List[_Event] = []
        #: id() of Name nodes consumed as protocol keys (escape analysis)
        self.key_node_ids: "set[int]" = set()

    def run(self) -> List[_Event]:
        node = self._fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_stmts(node.body, must=True)
        return self.events

    # -- statement walk ------------------------------------------------
    def _walk_stmts(self, stmts: Sequence[ast.stmt], must: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, must)
                self._walk_stmts(stmt.body, False)
                self._walk_stmts(stmt.orelse, False)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, must)
                self._walk_stmts(stmt.body, False)
                self._walk_stmts(stmt.orelse, False)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, must)
                self._walk_stmts(stmt.body, False)
                self._walk_stmts(stmt.orelse, False)
            elif isinstance(stmt, ast.Try):
                self._walk_stmts(stmt.body, False)
                for handler in stmt.handlers:
                    self._walk_stmts(handler.body, False)
                self._walk_stmts(stmt.orelse, False)
                self._walk_stmts(stmt.finalbody, must)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, must)
                self._walk_stmts(stmt.body, must)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # separate graph nodes, analyzed on their own
            else:
                self._scan_expr(stmt, must)

    def _scan_expr(self, node: ast.AST, must: bool) -> None:
        """Collect protocol events from one statement/expression."""
        calls: List[ast.Call] = []
        stack: List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(current, ast.Call):
                calls.append(current)
            stack.extend(ast.iter_child_nodes(current))
        calls.sort(key=lambda call: (call.lineno, call.col_offset))
        for call in calls:
            self._handle_call(call, must)

    # -- per-call handling ---------------------------------------------
    def _handle_call(self, call: ast.Call, must: bool) -> None:
        record = self._records.get((call.lineno, call.col_offset))
        direct = self._direct_event(call, record)
        if direct is not None:
            op, kind = direct
            key_node = self._key_argument(call)
            if key_node is not None:
                self._emit(kind, op, key_node, must, call)
            return
        if record is None:
            return
        for callee in record.callees:
            summary = self._summaries.get(callee)
            callee_fn = self._graph.functions.get(callee)
            if summary is None or callee_fn is None:
                continue
            params = _param_names(callee_fn, record.bound)
            mapping: Dict[str, ast.expr] = {}
            for position, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred):
                    break
                if position < len(params):
                    mapping[params[position]] = arg
            for keyword in call.keywords:
                if keyword.arg is not None:
                    mapping[keyword.arg] = keyword.value
            for param in sorted(summary):
                arg_expr = mapping.get(param)
                if arg_expr is None:
                    continue
                for kind in (_ACQUIRE, _USE, _RELEASE):
                    kind_must = summary[param].get(kind)
                    if kind_must is None:
                        continue
                    self._emit(
                        kind,
                        self._protocol.verbs[kind],
                        arg_expr,
                        must and kind_must,
                        call,
                    )

    def _direct_event(
        self, call: ast.Call, record: "object | None"
    ) -> "Tuple[str, str] | None":
        """(op name, kind) when the call itself is a protocol op."""
        protocol = self._protocol
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        op = func.attr
        kind = protocol.ops.get(op)
        if kind is None:
            return None
        receiver = func.value
        receiver_name = None
        if isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        elif isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        if receiver_name is not None and protocol.receiver_hint.search(
            receiver_name
        ):
            return op, kind
        receiver_class = getattr(record, "receiver_class", None)
        if isinstance(receiver_class, str):
            bare = receiver_class.rsplit(".", 1)[-1]
            if bare in protocol.receiver_classes:
                return op, kind
        callees = getattr(record, "callees", ())
        for callee in callees:
            parts = callee.rsplit(".", 2)
            if (
                len(parts) == 3
                and parts[1] in protocol.receiver_classes
                and parts[2] == op
            ):
                return op, kind
        return None

    def _key_argument(self, call: ast.Call) -> "ast.expr | None":
        for keyword in call.keywords:
            if keyword.arg == self._protocol.key_kw:
                return keyword.value
        if call.args and not isinstance(call.args[0], ast.Starred):
            return call.args[0]
        return None

    def _emit(
        self, kind: str, op: str, key_node: ast.expr, must: bool, call: ast.Call
    ) -> None:
        if isinstance(key_node, ast.Name):
            self.key_node_ids.add(id(key_node))
        try:
            key = ast.unparse(key_node)
        except ValueError:  # pragma: no cover - defensive
            return
        self.events.append(
            _Event(kind=kind, op=op, key=key, must=must, node=call)
        )


# ----------------------------------------------------------------------
# Per-function FSM check
# ----------------------------------------------------------------------


def _constant_locals(fn: FunctionNode) -> "set[str]":
    """Names assigned only constant literals (and never parameters)."""
    node = fn.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    params = {
        a.arg
        for a in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
    }
    constant: "set[str]" = set()
    tainted: "set[str]" = set()
    for sub in ast.walk(node):
        targets: List[ast.expr] = []
        value: "ast.expr | None" = None
        if isinstance(sub, ast.Assign):
            targets, value = list(sub.targets), sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        elif isinstance(sub, (ast.AugAssign, ast.For, ast.AsyncFor)):
            target = sub.target
            if isinstance(target, ast.Name):
                tainted.add(target.id)
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Constant):
                constant.add(target.id)
            else:
                tainted.add(target.id)
    return constant - tainted - params


def _is_literal_key(key: str) -> bool:
    try:
        parsed = ast.parse(key, mode="eval")
    except SyntaxError:
        return False
    return isinstance(parsed.body, ast.Constant)


def _escaped_names(
    fn: FunctionNode, key_node_ids: "set[int]"
) -> "set[str]":
    """Local names whose value leaves this function some other way."""
    node = fn.node
    escaped: "set[str]" = set()
    if node is None:
        return escaped
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Name):
            continue
        if id(sub) in key_node_ids:
            continue
        if isinstance(sub.ctx, ast.Load):
            escaped.add(sub.id)
    return escaped


def _check_function(
    fn: FunctionNode,
    protocol: Protocol,
    events: Sequence[_Event],
    key_node_ids: "set[int]",
) -> "List[Tuple[ast.AST, str]]":
    if not events:
        return []
    findings: "List[Tuple[ast.AST, str]]" = []
    const_locals = _constant_locals(fn)
    escaped = _escaped_names(fn, key_node_ids)
    local_keys = {key for key in const_locals if key not in escaped}
    states: "Dict[str, set[str]]" = {}
    first_acquire: "Dict[str, _Event]" = {}
    reported: "set[Tuple[str, str]]" = set()
    for event in events:
        current = states.get(event.key)
        if current is None:
            born_local = _is_literal_key(event.key) or event.key in local_keys
            current = {_LOCAL if born_local else _UNKNOWN}
        next_states: "set[str]" = set()
        errors: "List[str]" = []
        for state in sorted(current):
            next_state, error = _TRANSITIONS[(state, event.kind)]
            next_states.add(next_state)
            if error is not None:
                errors.append(error)
        if errors and len(errors) == len(current):
            label = sorted(errors)[0]
            if (event.key, label) not in reported:
                reported.add((event.key, label))
                findings.append(
                    (event.node, _message(protocol, event, label))
                )
        if event.must:
            states[event.key] = next_states
        else:
            states[event.key] = current | next_states
        if event.kind == _ACQUIRE and event.must:
            first_acquire.setdefault(event.key, event)
    if protocol.check_leak and fn.module.startswith(protocol.leak_prefixes):
        for key in sorted(states):
            if states[key] != {_ACQUIRED} or key not in first_acquire:
                continue
            if not (_is_literal_key(key) or key in local_keys):
                continue
            event = first_acquire[key]
            findings.append(
                (
                    event.node,
                    f"{protocol.noun}s allocated for locally-born key "
                    f"`{key}` are never freed on any path out of this "
                    f"function and the key does not escape — leaked "
                    f"(runtime twin: SimSanitizer kv-leak)",
                )
            )
    return findings


_PAST_TENSE = {"submit": "submitted", "free": "freed"}


def _past(verb: str) -> str:
    return _PAST_TENSE.get(verb, verb + ("d" if verb.endswith("e") else "ed"))


def _message(protocol: Protocol, event: _Event, label: str) -> str:
    noun, key = protocol.noun, event.key
    acquire, release = protocol.verbs[_ACQUIRE], protocol.verbs[_RELEASE]
    if label == "double-release":
        return (
            f"double {release} of {noun} `{key}`: already "
            f"{_past(release)} on every path reaching this call (runtime twin: "
            f"SimSanitizer)"
        )
    if label == "release-unacquired":
        return (
            f"{release} of {noun} `{key}` that was never {_past(acquire)}: the "
            f"key is locally born and unacquired on every path"
        )
    if label == "use-after-release":
        return (
            f"`{event.op}` on {noun} `{key}` after {release} on every "
            f"path reaching this call (use-after-{release})"
        )
    if label == "use-unacquired":
        return (
            f"`{event.op}` on {noun} `{key}` before any {acquire}: the "
            f"key is locally born and unacquired on every path"
        )
    # label == "re-acquire"
    return (
        f"double {acquire} of {noun} `{key}`: already {_past(acquire)} on "
        f"every path reaching this call (no intervening {release})"
    )


# ----------------------------------------------------------------------
# Whole-project analysis, cached per graph
# ----------------------------------------------------------------------

_FIXPOINT_ROUNDS = 3


def _analyze(
    graph: ProjectGraph, protocol: Protocol
) -> "Dict[str, List[Tuple[ast.AST, str]]]":
    """module -> findings, for every repro module in the graph."""
    summaries = _seed_summaries(graph, protocol)
    relevant = [
        graph.functions[qualname]
        for qualname in sorted(graph.functions)
        if isinstance(
            graph.functions[qualname].node,
            (ast.FunctionDef, ast.AsyncFunctionDef),
        )
    ]
    extracted: "Dict[str, _Extractor]" = {}
    for _ in range(_FIXPOINT_ROUNDS):
        changed = False
        extracted = {}
        for fn in relevant:
            extractor = _Extractor(graph, protocol, summaries, fn)
            events = extractor.run()
            extracted[fn.qualname] = extractor
            if fn.qualname not in summaries:  # never overwrite seeds
                if _merge_summary(summaries, fn.qualname, events):
                    changed = True
        if not changed:
            break
    per_module: "Dict[str, List[Tuple[ast.AST, str]]]" = {}
    for fn in relevant:
        extractor = extracted[fn.qualname]
        found = _check_function(fn, protocol, extractor.events, extractor.key_node_ids)
        if found:
            per_module.setdefault(fn.module, []).extend(found)
    return per_module


class _TypestateRule(Rule):
    """Shared machinery for the two protocol rules."""

    protocol: Protocol

    def __init__(self) -> None:
        self._cache: "Dict[int, Tuple[ProjectGraph, Dict[str, List[Tuple[ast.AST, str]]]]]" = {}

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro.")

    def visit_Module(self, node: ast.Module, ctx: ModuleContext) -> _Yield:
        project = ctx.project
        if project is None:
            return
        cached = self._cache.get(id(project))
        if cached is None or cached[0] is not project:
            cached = (project, _analyze(project, self.protocol))
            self._cache = {id(project): cached}
        for loc, message in cached[1].get(ctx.module, []):
            yield loc, message


@register
class KVLifecycleRule(_TypestateRule):
    """KV blocks must follow allocate → use* → free, on every path.

    Rationale:
        Goodput verdicts depend on KV accounting: a double-free lets two
        requests share blocks, a leak starves admission, and both skew
        the paper's Figure-12 placements. SimSanitizer catches these at
        runtime for one seed; TS001 proves them absent on every path the
        linter can see, across function and module boundaries (a helper
        that unconditionally frees its argument counts as a free at
        every call site).

    Example violation:
        kv.allocate(rid, need)
        kv.free(rid)
        kv.free(rid)   # TS001: double free of KV block `rid`

    Suppression:
        kv.free(rid)  # reprolint: disable=TS001 -- <why this is safe>
    """

    name = "TS001"
    summary = "KV-block lifecycle: allocate -> use* -> free on every path"
    protocol = _KV_PROTOCOL


@register
class TransferProtocolRule(_TypestateRule):
    """Transfer handles must follow submit → complete, exactly once.

    Rationale:
        The transfer engine serializes KV migrations over a shared link;
        a double submit double-books link bandwidth and a completion
        without a submit corrupts the in-flight accounting that decode
        admission trusts. These are the static twins of SimSanitizer's
        transfer-double-submit / transfer-double-complete runtime
        violations, checked interprocedurally over the project graph.

    Example violation:
        transfers.submit(request_id=rid, num_bytes=b, link=l)
        transfers.submit(request_id=rid, num_bytes=b, link=l)  # TS002

    Suppression:
        transfers.submit(...)  # reprolint: disable=TS002 -- <why>
    """

    name = "TS002"
    summary = "transfer handles: submit -> complete, no double transitions"
    protocol = _TRANSFER_PROTOCOL
