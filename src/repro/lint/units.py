"""UNIT001: dimension analysis over naming conventions + annotations.

Latency math in this tree is all plain ``float``s, so nothing stops
``ttft_ms + queue_time`` (milliseconds plus seconds — off by 1000x) or
``batch_tokens > max_blocks`` (tokens compared to blocks — off by
``block_size``) from type-checking. UNIT001 infers a dimension for each
name from its snake_case segments — ``seconds``, ``milliseconds``,
``tokens``, ``blocks``, ``bytes``, ``requests`` — plus explicit
:mod:`repro.quantities` annotations (``Seconds``, ``Milliseconds``,
...), and flags ``+``/``-``/comparisons whose two sides have *known,
different* dimensions. Unknown stays silent: a name without a
dimension hint never fires, so the rule reports unit bugs, not style.

Inference rules (applied to the identifier's snake_case segments):

* disqualifiers first — a segment like ``id``/``idx``/``per``/``rate``/
  ``frac``/``util`` makes the whole name dimensionless (``request_id``
  is not requests; ``tokens_per_s`` is a rate, not tokens);
* time beats counts — ``request_latency`` is seconds, not requests;
* milliseconds beats seconds — the ``ms`` segment is explicit;
* two different count dimensions cancel to unknown (``token_blocks``).

Expression typing propagates through ``+``/``-`` (the known side wins),
unary minus, ``min``/``max``/``abs``/``float``/``fsum``/``sum``,
subscripts, conditional expressions, and constant multiplication;
``*``/``/`` otherwise erase the dimension (they legitimately change
it). Scope: ``repro.latency``, ``repro.simulator``, ``repro.core`` —
the modules whose arithmetic reaches goodput verdicts.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Tuple

from .engine import ModuleContext, Rule, call_tail, register

__all__ = ["UnitDimensionRule", "dimension_of_name"]

_Yield = Iterator[Tuple[ast.AST, str]]

SECONDS = "seconds"
MILLISECONDS = "milliseconds"
TOKENS = "tokens"
BLOCKS = "blocks"
BYTES = "bytes"
REQUESTS = "requests"

#: Segments that make a name dimensionless no matter what else it says.
_DISQUALIFIERS = frozenset({
    "id", "ids", "idx", "index", "indices", "key", "keys", "name",
    "names", "kind", "seed", "per", "rate", "rates", "ratio", "frac",
    "fraction", "util", "pct", "percent", "share", "factor", "scale",
    "speedup", "weight", "prob", "probability",
})

_SEGMENTS: "Dict[str, frozenset[str]]" = {
    MILLISECONDS: frozenset({
        "ms", "msec", "msecs", "millis", "millisecond", "milliseconds",
    }),
    SECONDS: frozenset({
        "s", "sec", "secs", "second", "seconds", "time", "times",
        "latency", "latencies", "duration", "durations", "ttft", "tpot",
        "deadline", "deadlines", "elapsed", "delay", "delays",
        "timeout", "stall", "interval", "now",
    }),
    TOKENS: frozenset({
        "token", "tokens", "tok", "toks", "len", "lens", "length",
        "lengths",
    }),
    BLOCKS: frozenset({"block", "blocks"}),
    BYTES: frozenset({"byte", "bytes", "nbytes"}),
    REQUESTS: frozenset({"request", "requests", "req", "reqs"}),
}

_COUNT_DIMS = (TOKENS, BLOCKS, BYTES, REQUESTS)

#: Annotation names (from repro.quantities) that pin a dimension.
_ANNOTATIONS = {
    "Seconds": SECONDS,
    "Milliseconds": MILLISECONDS,
    "Tokens": TOKENS,
    "Blocks": BLOCKS,
    "Bytes": BYTES,
    "Requests": REQUESTS,
}

_SPLIT = re.compile(r"[^a-z0-9]+")

#: Calls that return their argument's dimension unchanged.
_PASSTHROUGH_CALLS = frozenset({
    "abs", "min", "max", "float", "round", "fsum", "sum", "sorted",
})


def dimension_of_name(identifier: str) -> Optional[str]:
    """Dimension inferred from one identifier, or None."""
    segments = [
        segment
        for segment in _SPLIT.split(identifier.lower())
        if segment
    ]
    if not segments or any(segment in _DISQUALIFIERS for segment in segments):
        return None
    hits = [
        dim
        for dim in (MILLISECONDS, SECONDS) + _COUNT_DIMS
        if any(segment in _SEGMENTS[dim] for segment in segments)
    ]
    if not hits:
        return None
    if MILLISECONDS in hits:
        return MILLISECONDS
    if SECONDS in hits:
        return SECONDS
    counts = [dim for dim in hits if dim in _COUNT_DIMS]
    if len(counts) == 1:
        return counts[0]
    return None  # tokens-vs-blocks in one name: genuinely ambiguous


def _annotation_dimension(annotation: "ast.expr | None") -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return _ANNOTATIONS.get(annotation.id)
    if isinstance(annotation, ast.Attribute):
        return _ANNOTATIONS.get(annotation.attr)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return _ANNOTATIONS.get(annotation.value.strip())
    return None


class _Bindings:
    """Annotation-pinned dimensions visible at the current node."""

    def __init__(self, ctx: ModuleContext) -> None:
        self._by_name: Dict[str, str] = {}
        fn = ctx.enclosing_function()
        scopes: "list[ast.AST]" = [ctx.tree]
        if fn is not None:
            scopes.append(fn)
            args = (
                list(fn.args.posonlyargs)
                + list(fn.args.args)
                + list(fn.args.kwonlyargs)
            )
            for arg in args:
                dim = _annotation_dimension(arg.annotation)
                if dim is not None:
                    self._by_name[arg.arg] = dim
        for scope in scopes:
            for sub in ast.walk(scope):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if scope is ctx.tree and sub is not fn:
                        continue
                if isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    dim = _annotation_dimension(sub.annotation)
                    if dim is not None:
                        self._by_name.setdefault(sub.target.id, dim)

    def get(self, name: str) -> Optional[str]:
        return self._by_name.get(name)


def _dimension(expr: ast.expr, bindings: _Bindings) -> Optional[str]:
    """Dimension of an expression, or None when unknown/dimensionless."""
    if isinstance(expr, ast.Constant):
        return None
    if isinstance(expr, ast.Name):
        pinned = bindings.get(expr.id)
        if pinned is not None:
            return pinned
        return dimension_of_name(expr.id)
    if isinstance(expr, ast.Attribute):
        return dimension_of_name(expr.attr)
    if isinstance(expr, ast.UnaryOp) and isinstance(
        expr.op, (ast.USub, ast.UAdd)
    ):
        return _dimension(expr.operand, bindings)
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            left = _dimension(expr.left, bindings)
            right = _dimension(expr.right, bindings)
            return left if left is not None else right
        if isinstance(expr.op, ast.Mult):
            # Constant scaling keeps the dimension; anything else (e.g.
            # tokens * seconds_per_token) legitimately changes it.
            if isinstance(expr.left, ast.Constant):
                return _dimension(expr.right, bindings)
            if isinstance(expr.right, ast.Constant):
                return _dimension(expr.left, bindings)
        return None
    if isinstance(expr, ast.IfExp):
        body = _dimension(expr.body, bindings)
        orelse = _dimension(expr.orelse, bindings)
        return body if body is not None else orelse
    if isinstance(expr, ast.Subscript):
        return _dimension(expr.value, bindings)
    if isinstance(expr, ast.Call):
        tail = call_tail(expr)
        if tail in _PASSTHROUGH_CALLS and expr.args:
            known = [
                dim
                for dim in (
                    _dimension(arg, bindings)
                    for arg in expr.args
                    if not isinstance(arg, ast.Starred)
                )
                if dim is not None
            ]
            if known and all(dim == known[0] for dim in known):
                return known[0]
        return None
    if isinstance(expr, (ast.GeneratorExp, ast.ListComp)):
        return _dimension(expr.elt, bindings)
    return None


_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


@register
class UnitDimensionRule(Rule):
    """No cross-dimension addition, subtraction, or comparison.

    Rationale:
        All latency/goodput math is plain floats; adding milliseconds to
        seconds is off by 1000x and comparing tokens to blocks is off by
        block_size, yet both type-check. UNIT001 infers dimensions from
        snake_case naming (``_ms``, ``latency``, ``tokens``, ``blocks``,
        ``bytes``, ``requests``) and repro.quantities annotations, and
        flags mixed-dimension `+`/`-`/comparisons in repro.latency,
        repro.simulator, and repro.core. Names without a recognizable
        dimension never fire.

    Example violation:
        total = ttft_ms + queue_time   # UNIT001: milliseconds + seconds

    Suppression:
        x = a_ms + b  # reprolint: disable=UNIT001 -- b is also ms, from ...
    """

    name = "UNIT001"
    summary = "no mixed-dimension arithmetic/comparison in latency math"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith(
            ("repro.latency", "repro.simulator", "repro.core",
             "repro.scheduling")
        )

    def visit_BinOp(self, node: ast.BinOp, ctx: ModuleContext) -> _Yield:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        bindings = _Bindings(ctx)
        left = _dimension(node.left, bindings)
        right = _dimension(node.right, bindings)
        if left is not None and right is not None and left != right:
            phrase = (
                f"adding {right} to {left}"
                if isinstance(node.op, ast.Add)
                else f"subtracting {right} from {left}"
            )
            yield node, (
                f"{phrase}: "
                f"`{ast.unparse(node.left)}` is {left} but "
                f"`{ast.unparse(node.right)}` is {right}; convert "
                "explicitly or rename the mismatched quantity"
            )

    def visit_AugAssign(self, node: ast.AugAssign, ctx: ModuleContext) -> _Yield:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        bindings = _Bindings(ctx)
        left = _dimension(node.target, bindings)
        right = _dimension(node.value, bindings)
        if left is not None and right is not None and left != right:
            yield node, (
                f"accumulating {right} into {left}: "
                f"`{ast.unparse(node.target)}` is {left} but "
                f"`{ast.unparse(node.value)}` is {right}; convert "
                "explicitly or rename the mismatched quantity"
            )

    def visit_Compare(self, node: ast.Compare, ctx: ModuleContext) -> _Yield:
        bindings = _Bindings(ctx)
        operands = [node.left] + list(node.comparators)
        for position, op in enumerate(node.ops):
            if not isinstance(op, _COMPARE_OPS):
                continue
            left = _dimension(operands[position], bindings)
            right = _dimension(operands[position + 1], bindings)
            if left is not None and right is not None and left != right:
                yield node, (
                    f"comparing {left} with {right}: "
                    f"`{ast.unparse(operands[position])}` is {left} but "
                    f"`{ast.unparse(operands[position + 1])}` is {right}; "
                    "the comparison is off by a unit conversion"
                )
