"""Admission-order (queue) policies.

A :class:`QueuePolicy` reorders an instance's waiting queue just before
batch formation. FCFS is the paper's §4.3 default and is a strict no-op
(the deque object is returned untouched, so the default path performs
zero extra work and stays bitwise-identical to the pre-refactor code).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from ..quantities import Seconds, TokensPerSecond
from .config import QUEUE_POLICIES

if TYPE_CHECKING:  # annotation-only: avoids a package import cycle
    from ..simulator.request import RequestState

__all__ = [
    "QueuePolicy",
    "FCFSQueue",
    "SJFQueue",
    "EDFQueue",
    "make_queue_policy",
]


class QueuePolicy:
    """Orders waiting requests before each batch-formation pass."""

    name = ""

    def reorder(
        self, queue: "Deque[RequestState]", now: Seconds
    ) -> "Deque[RequestState]":
        """Return the queue in admission order (may be the same object)."""
        raise NotImplementedError


class FCFSQueue(QueuePolicy):
    """First-come-first-served (§4.3 default): identity, zero cost."""

    name = "fcfs"

    def reorder(
        self, queue: "Deque[RequestState]", now: Seconds
    ) -> "Deque[RequestState]":
        return queue


class SJFQueue(QueuePolicy):
    """Shortest-prompt-first with wait-time aging.

    Effective rank = prompt length - aging * wait; a long prompt that
    has waited ``input_len / aging`` seconds outranks a fresh short one,
    bounding starvation. ``enqueue_stamp`` names the timestamp that
    marks when the request joined this queue ("prefill_enqueue" on the
    prefill side, "decode_enqueue" on the decode side).
    """

    name = "sjf"

    def __init__(
        self,
        aging: TokensPerSecond = 2000.0,
        enqueue_stamp: str = "prefill_enqueue",
    ) -> None:
        if aging < 0:
            raise ValueError(f"sjf_aging must be >= 0, got {aging}")
        self._aging = aging
        self._stamp = enqueue_stamp

    def reorder(
        self, queue: "Deque[RequestState]", now: Seconds
    ) -> "Deque[RequestState]":
        if len(queue) <= 1:
            return queue
        ordered = sorted(
            queue,
            key=lambda s: s.prefill_len
            - self._aging * (now - s.timestamps.get(self._stamp, now)),
        )
        return deque(ordered)


class EDFQueue(QueuePolicy):
    """Earliest-deadline-first: SLO-aware admission order.

    A request's deadline is ``state.deadline`` when set, else
    ``arrival_time + default_deadline``. Python's sort is stable, so
    requests sharing a deadline keep FCFS order.
    """

    name = "edf"

    def __init__(self, default_deadline: Seconds = 10.0) -> None:
        if default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self._default = default_deadline

    def _deadline(self, state: RequestState) -> Seconds:
        if state.deadline is not None:
            return state.deadline
        return state.request.arrival_time + self._default

    def reorder(
        self, queue: "Deque[RequestState]", now: Seconds
    ) -> "Deque[RequestState]":
        if len(queue) <= 1:
            return queue
        return deque(sorted(queue, key=self._deadline))


def make_queue_policy(
    policy: str,
    sjf_aging: TokensPerSecond = 2000.0,
    edf_default_deadline: Seconds = 10.0,
    enqueue_stamp: str = "prefill_enqueue",
) -> QueuePolicy:
    """Build the named queue policy with its knobs bound."""
    if policy == "fcfs":
        return FCFSQueue()
    if policy == "sjf":
        return SJFQueue(aging=sjf_aging, enqueue_stamp=enqueue_stamp)
    if policy == "edf":
        return EDFQueue(default_deadline=edf_default_deadline)
    raise ValueError(
        f"unknown queue_policy {policy!r}; expected one of {QUEUE_POLICIES}"
    )
