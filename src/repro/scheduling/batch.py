"""Batch-formation (shaping) policies.

A prefill :class:`BatchPolicy` pops work off the (already reordered)
waiting queue into a batch, owning the KV admission decision: a request
enters the batch only once its full prompt's KV blocks are allocated
(§4.3 "prefill memory as queuing buffer"). The policy returns
:class:`PrefillChunk` entries rather than raw states so the ``chunked``
variant can describe partial prompts; under the default
``token_budget`` policy every chunk is whole (``first and final``) and
the formation loop is operation-for-operation identical to the
pre-refactor ``PrefillInstance._form_batch``.

On the decode side the policy only gates admission count
(``max_batch_size`` capping), which :meth:`BatchPolicy.admit_decode`
expresses as a predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List

from ..quantities import Requests, Tokens
from .config import BATCH_POLICIES

if TYPE_CHECKING:  # annotation-only: avoids a package import cycle
    from ..simulator.kvcache import KVBlockManager
    from ..simulator.request import RequestState

__all__ = [
    "PrefillChunk",
    "BatchPolicy",
    "TokenBudgetBatch",
    "ChunkedBatch",
    "make_batch_policy",
]


@dataclass
class PrefillChunk:
    """One batch entry: ``tokens`` of ``state``'s prompt.

    ``first`` marks the chunk that opens the request's exec span;
    ``final`` marks the chunk whose completion finishes the prefill
    (first token, phase transition, completion callback). Whole prompts
    are a single chunk with both flags set.
    """

    state: RequestState
    tokens: Tokens
    first: bool = True
    final: bool = True


class BatchPolicy:
    """Forms prefill batches and caps decode admission."""

    name = ""

    def form_prefill(
        self,
        queue: "Deque[RequestState]",
        kv: KVBlockManager,
        limit: Tokens,
    ) -> "List[PrefillChunk]":
        """Pop a prefix of ``queue`` into a batch within ``limit`` tokens.

        Allocates KV for every admitted request on ``kv``; a request the
        pool cannot hold stays at the head (retry on KV release).
        """
        raise NotImplementedError

    def admit_decode(self, active: Requests, cap: Requests) -> bool:
        """Whether the decode loop may admit one more active request."""
        return active < cap

    def reset(self) -> None:
        """Drop partial-progress state (instance failure/teardown)."""


class TokenBudgetBatch(BatchPolicy):
    """§4.3 L_m shaping: batch whole prompts until the budget is hit.

    Requests longer than the budget run alone (the first admit ignores
    the limit, exactly as the pre-refactor loop did).
    """

    name = "token_budget"

    def form_prefill(
        self,
        queue: "Deque[RequestState]",
        kv: KVBlockManager,
        limit: Tokens,
    ) -> "List[PrefillChunk]":
        batch: "List[PrefillChunk]" = []
        total = 0
        while queue:
            head = queue[0]
            need = head.prefill_len
            if batch and total + need > limit:
                break
            if not kv.can_allocate(need):
                break
            kv.allocate(head.request_id, need)
            queue.popleft()
            batch.append(PrefillChunk(state=head, tokens=need))
            total += need
        return batch


class ChunkedBatch(BatchPolicy):
    """Chunked-prefill shaping: split oversized prompts across batches.

    Every batch's token sum is bounded by the budget, including for
    prompts longer than the budget — the head prompt contributes a
    partial chunk filling the remaining room and stays at the queue head
    until its final chunk is issued. KV for the *full* prompt is
    allocated at the first chunk (the cache grows monotonically during
    prefill, so reserving up front keeps admission decisions identical
    to whole-prompt shaping).
    """

    name = "chunked"

    def __init__(self) -> None:
        #: request_id -> prompt tokens already issued in earlier chunks.
        self._progress: "dict[int, int]" = {}

    def form_prefill(
        self,
        queue: "Deque[RequestState]",
        kv: KVBlockManager,
        limit: Tokens,
    ) -> "List[PrefillChunk]":
        batch: "List[PrefillChunk]" = []
        total = 0
        while queue and total < limit:
            head = queue[0]
            need = head.prefill_len
            done = self._progress.get(head.request_id, 0)
            if done == 0:
                if not kv.can_allocate(need):
                    break
                kv.allocate(head.request_id, need)
            take = min(need - done, limit - total)
            first = done == 0
            final = done + take >= need
            batch.append(
                PrefillChunk(state=head, tokens=take, first=first, final=final)
            )
            total += take
            if final:
                self._progress.pop(head.request_id, None)
                queue.popleft()
            else:
                self._progress[head.request_id] = done + take
                break  # partially prefilled prompt keeps the queue head
        return batch

    def reset(self) -> None:
        self._progress.clear()


def make_batch_policy(policy: str) -> BatchPolicy:
    """Build the named batch policy."""
    if policy == "token_budget":
        return TokenBudgetBatch()
    if policy == "chunked":
        return ChunkedBatch()
    raise ValueError(
        f"unknown batch_policy {policy!r}; expected one of {BATCH_POLICIES}"
    )
