"""Pluggable scheduling layer: queue, batch-shaping, and dispatch.

DistServe §4.3 hard-codes one scheduling recipe — FCFS admission, L_m
token-budget batch shaping, least-loaded dispatch. This package makes
each axis a policy interface so ablations land in one place instead of
touching every engine:

* :class:`QueuePolicy` — admission order (``fcfs``, ``sjf``, ``edf``)
* :class:`BatchPolicy` — batch formation (``token_budget``, ``chunked``)
* :class:`DispatchPolicy` — cross-instance routing (``least_loaded``,
  ``round_robin``, ``random``, ``power_of_two``)

A single frozen :class:`SchedulingConfig` names the triple plus its
knobs and threads through the simulator engines, serving modes, and the
placement search (where non-default configs enter trial fingerprints).
The default triple is bitwise-identical to the pre-refactor behavior.
"""

from .batch import (
    BatchPolicy,
    ChunkedBatch,
    PrefillChunk,
    TokenBudgetBatch,
    make_batch_policy,
)
from .config import (
    BATCH_POLICIES,
    DEFAULT_SCHEDULING,
    DISPATCH_POLICIES,
    QUEUE_POLICIES,
    SchedulingConfig,
)
from .dispatch import (
    DispatchPolicy,
    LeastLoadedDispatch,
    PowerOfTwoDispatch,
    RandomDispatch,
    RoundRobinDispatch,
    make_dispatch_policy,
)
from .queue import EDFQueue, FCFSQueue, QueuePolicy, SJFQueue, make_queue_policy

__all__ = [
    "SchedulingConfig",
    "DEFAULT_SCHEDULING",
    "QUEUE_POLICIES",
    "BATCH_POLICIES",
    "DISPATCH_POLICIES",
    "QueuePolicy",
    "FCFSQueue",
    "SJFQueue",
    "EDFQueue",
    "make_queue_policy",
    "BatchPolicy",
    "TokenBudgetBatch",
    "ChunkedBatch",
    "PrefillChunk",
    "make_batch_policy",
    "DispatchPolicy",
    "LeastLoadedDispatch",
    "RoundRobinDispatch",
    "RandomDispatch",
    "PowerOfTwoDispatch",
    "make_dispatch_policy",
]
