"""Cross-instance dispatch (routing) policies.

§4.3: requests are "dispatched to the prefill instance with the
shortest queue ... followed by dispatch to the least loaded decoding
instance" — :class:`LeastLoadedDispatch`, the default. Round-robin and
random serve the dispatch-policy ablation; power-of-two-choices samples
two instances and routes to the less loaded one, the classic
balls-into-bins result that collapses tail queue depth versus random
at the cost of one extra load probe.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from .config import DISPATCH_POLICIES

__all__ = [
    "DispatchPolicy",
    "LeastLoadedDispatch",
    "RoundRobinDispatch",
    "RandomDispatch",
    "PowerOfTwoDispatch",
    "make_dispatch_policy",
]

T = TypeVar("T")


class DispatchPolicy:
    """Chooses a target instance for one request."""

    name = ""

    def select(self, instances: "Sequence[T]") -> T:
        """Pick one instance from a non-empty pool."""
        raise NotImplementedError


class LeastLoadedDispatch(DispatchPolicy):
    """Route to the minimum-load instance (ties break by pool order)."""

    name = "least_loaded"

    def __init__(self, load_fn: "Callable[[T], float]") -> None:
        self._load_fn = load_fn

    def select(self, instances: "Sequence[T]") -> T:
        return min(instances, key=self._load_fn)


class RoundRobinDispatch(DispatchPolicy):
    """Cycle through the pool; the modulo keeps the cursor valid even
    when the pool shrinks mid-run (instance failure)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, instances: "Sequence[T]") -> T:
        chosen = instances[self._next % len(instances)]
        self._next += 1
        return chosen


class RandomDispatch(DispatchPolicy):
    """Uniform-random routing from the shared seeded generator."""

    name = "random"

    def __init__(self, rng: "np.random.Generator") -> None:
        self._rng = rng

    def select(self, instances: "Sequence[T]") -> T:
        idx = int(self._rng.integers(0, len(instances)))
        return instances[idx]


class PowerOfTwoDispatch(DispatchPolicy):
    """Power-of-two-choices: sample two, keep the less loaded.

    Draws two indices (always exactly two rng calls, so the stream
    stays aligned across runs regardless of load); ties — including the
    two draws landing on the same instance — keep the first draw, which
    makes the choice deterministic given the rng stream.
    """

    name = "power_of_two"

    def __init__(
        self, load_fn: "Callable[[T], float]", rng: "np.random.Generator"
    ) -> None:
        self._load_fn = load_fn
        self._rng = rng

    def select(self, instances: "Sequence[T]") -> T:
        n = len(instances)
        first = instances[int(self._rng.integers(0, n))]
        second = instances[int(self._rng.integers(0, n))]
        if self._load_fn(second) < self._load_fn(first):
            return second
        return first


def make_dispatch_policy(
    policy: str,
    load_fn: "Callable[[T], float]",
    rng: "np.random.Generator | None" = None,
) -> DispatchPolicy:
    """Build the named dispatch policy.

    Raises:
        ValueError: on an unknown policy name, or when ``random`` /
            ``power_of_two`` is requested without an rng.
    """
    if policy not in DISPATCH_POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {DISPATCH_POLICIES}"
        )
    if policy == "least_loaded":
        return LeastLoadedDispatch(load_fn)
    if policy == "round_robin":
        return RoundRobinDispatch()
    if rng is None:
        raise ValueError(f"{policy} dispatch requires an rng")
    if policy == "random":
        return RandomDispatch(rng)
    return PowerOfTwoDispatch(load_fn, rng)
