"""Frozen scheduling configuration threaded through every layer.

One :class:`SchedulingConfig` value describes the full policy triple —
admission order, batch shaping, and cross-instance dispatch — plus the
knobs each policy reads. It is a frozen dataclass so the search layer
can fingerprint it (``repro.core.search._canonical`` iterates dataclass
fields); the default triple reproduces the paper's §4.3 recipe exactly
and is deliberately *omitted* from trial fingerprints so warm
``TrialCache`` entries stay valid across the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..quantities import Seconds, Tokens, TokensPerSecond

__all__ = [
    "SchedulingConfig",
    "DEFAULT_SCHEDULING",
    "QUEUE_POLICIES",
    "BATCH_POLICIES",
    "DISPATCH_POLICIES",
]

#: Admission-order policies (§4.3 FCFS default; ``sjf`` is the
#: convoy-effect mitigation the paper defers to future work; ``edf``
#: orders by SLO deadline).
QUEUE_POLICIES = ("fcfs", "sjf", "edf")

#: Batch-formation policies (``token_budget`` is the L_m shaper;
#: ``chunked`` splits oversized prompts across consecutive batches).
BATCH_POLICIES = ("token_budget", "chunked")

#: Cross-instance routing policies (§4.3 shortest-queue default).
DISPATCH_POLICIES = ("least_loaded", "round_robin", "random", "power_of_two")


@dataclass(frozen=True)
class SchedulingConfig:
    """The policy triple plus per-policy knobs.

    Args:
        queue_policy: One of :data:`QUEUE_POLICIES`.
        batch_policy: One of :data:`BATCH_POLICIES`.
        dispatch_policy: One of :data:`DISPATCH_POLICIES`.
        sjf_aging: Tokens of rank credit per second of queue wait under
            ``sjf``; a prompt that waited ``input_len / sjf_aging``
            seconds outranks a fresh zero-length one, bounding
            starvation.
        batch_token_limit: Override for the L_m batch-shaping budget
            (defaults to the profiled saturation length per instance).
        edf_default_deadline: Deadline assumed for a request with no
            explicit ``deadline`` under ``edf``: arrival + this.
    """

    queue_policy: str = "fcfs"
    batch_policy: str = "token_budget"
    dispatch_policy: str = "least_loaded"
    sjf_aging: TokensPerSecond = 2000.0
    batch_token_limit: "Tokens | None" = None
    edf_default_deadline: Seconds = 10.0

    def __post_init__(self) -> None:
        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue_policy {self.queue_policy!r}; "
                f"expected one of {QUEUE_POLICIES}"
            )
        if self.batch_policy not in BATCH_POLICIES:
            raise ValueError(
                f"unknown batch_policy {self.batch_policy!r}; "
                f"expected one of {BATCH_POLICIES}"
            )
        if self.dispatch_policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch_policy {self.dispatch_policy!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        if self.sjf_aging < 0:
            raise ValueError(f"sjf_aging must be >= 0, got {self.sjf_aging}")
        if self.batch_token_limit is not None and self.batch_token_limit <= 0:
            raise ValueError(
                f"batch_token_limit must be positive, got {self.batch_token_limit}"
            )
        if self.edf_default_deadline <= 0:
            raise ValueError(
                f"edf_default_deadline must be positive, "
                f"got {self.edf_default_deadline}"
            )

    def is_default(self) -> bool:
        """Whether this is the paper-default triple with default knobs.

        Default configs are dropped from trial fingerprints so the
        refactor never invalidates warm :class:`TrialCache` entries.
        """
        return self == DEFAULT_SCHEDULING


#: The paper's §4.3 recipe: FCFS + L_m token budget + least-loaded.
DEFAULT_SCHEDULING = SchedulingConfig()
