"""Memory budgeting for model weights and KV cache.

Decoding batch size is ultimately bounded by the KV cache space left on the
GPUs after weights are loaded (§3.2). This module computes those budgets
for a given (model, parallelism, GPU) combination, and validates that a
parallel configuration fits at all — the ``G.size / (inter_op * intra_op)
< C`` feasibility check of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from .architecture import ModelArchitecture

__all__ = ["MemoryBudget", "compute_memory_budget", "max_kv_tokens", "fits_in_memory"]

#: Fraction of GPU memory reserved for activations, workspace, fragmentation.
DEFAULT_MEMORY_OVERHEAD_FRACTION = 0.10


@dataclass(frozen=True)
class MemoryBudget:
    """Per-GPU memory accounting for one instance configuration.

    Attributes:
        gpu_memory_bytes: Physical capacity of one GPU.
        weight_bytes_per_gpu: Model weight shard resident on each GPU.
        reserved_bytes: Workspace/activation/fragmentation reserve.
        kv_budget_bytes: Bytes available for KV cache on each GPU.
        kv_bytes_per_token_per_gpu: KV bytes one token occupies on one GPU.
    """

    gpu_memory_bytes: int
    weight_bytes_per_gpu: int
    reserved_bytes: int
    kv_budget_bytes: int
    kv_bytes_per_token_per_gpu: int

    @property
    def max_kv_tokens(self) -> int:
        """Maximum number of tokens whose KV cache fits on one GPU."""
        if self.kv_bytes_per_token_per_gpu <= 0:
            return 0
        return max(0, self.kv_budget_bytes // self.kv_bytes_per_token_per_gpu)


def compute_memory_budget(
    model: ModelArchitecture,
    gpu_memory_bytes: int,
    tp_degree: int = 1,
    pp_degree: int = 1,
    overhead_fraction: float = DEFAULT_MEMORY_OVERHEAD_FRACTION,
) -> MemoryBudget:
    """Compute the per-GPU memory budget for an instance configuration.

    Weights are split across ``tp_degree * pp_degree`` GPUs; the KV cache of
    a token is likewise sharded (TP splits heads, PP splits layers), so the
    per-GPU KV bytes per token shrink by the same factor.

    Raises:
        ValueError: if the weights alone exceed GPU capacity.
    """
    if not 0.0 <= overhead_fraction < 1.0:
        raise ValueError(f"overhead_fraction must be in [0, 1), got {overhead_fraction}")
    num_gpus = tp_degree * pp_degree
    if num_gpus <= 0:
        raise ValueError("parallel degrees must be positive")
    weight_per_gpu = model.weight_bytes // num_gpus
    reserved = int(gpu_memory_bytes * overhead_fraction)
    kv_budget = gpu_memory_bytes - weight_per_gpu - reserved
    if kv_budget < 0:
        raise ValueError(
            f"model {model.name} shard ({weight_per_gpu / 1e9:.1f} GB) does not fit "
            f"in {gpu_memory_bytes / 1e9:.1f} GB GPU with tp={tp_degree}, pp={pp_degree}"
        )
    kv_per_token_per_gpu = model.kv_bytes_per_token // num_gpus
    return MemoryBudget(
        gpu_memory_bytes=gpu_memory_bytes,
        weight_bytes_per_gpu=weight_per_gpu,
        reserved_bytes=reserved,
        kv_budget_bytes=kv_budget,
        kv_bytes_per_token_per_gpu=kv_per_token_per_gpu,
    )


def max_kv_tokens(
    model: ModelArchitecture,
    gpu_memory_bytes: int,
    tp_degree: int = 1,
    pp_degree: int = 1,
) -> int:
    """Total KV-token capacity of the whole instance (all its GPUs)."""
    budget = compute_memory_budget(model, gpu_memory_bytes, tp_degree, pp_degree)
    # Each of the tp_degree GPUs in a stage holds a distinct shard of the same
    # tokens, so instance capacity equals a single GPU's token count times the
    # number of pipeline stages only when stages are balanced; we use the
    # conservative single-stage figure multiplied by pp (layers split evenly).
    return budget.max_kv_tokens


def fits_in_memory(
    model: ModelArchitecture,
    gpu_memory_bytes: int,
    tp_degree: int,
    pp_degree: int,
) -> bool:
    """Algorithm 1 feasibility test: does the weight shard fit on each GPU?"""
    num_gpus = tp_degree * pp_degree
    return model.weight_bytes / num_gpus < gpu_memory_bytes
