"""Registry of model architectures used in the paper's evaluation.

The paper evaluates the OPT family (13B, 66B, 175B; Table 1) and mentions
LLaMA support. Architecture hyperparameters follow the published OPT and
LLaMA papers. Use :func:`get_model` to look one up by name.
"""

from __future__ import annotations

from .architecture import ModelArchitecture

__all__ = ["MODEL_REGISTRY", "get_model", "register_model", "list_models"]


def _opt(name: str, layers: int, hidden: int, heads: int) -> ModelArchitecture:
    # OPT uses an FFN expansion factor of 4 and a 50272-token vocabulary.
    return ModelArchitecture(
        name=name,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        ffn_size=4 * hidden,
        vocab_size=50272,
        max_seq_len=2048,
    )


def _llama(name: str, layers: int, hidden: int, heads: int, ffn: int) -> ModelArchitecture:
    # LLaMA's SwiGLU FFN has three h-by-ffn matrices where the Appendix A
    # polynomial (2hm) assumes two; registering the effective size 1.5*ffn
    # keeps both the parameter count and the FLOPs/bytes accounting exact.
    return ModelArchitecture(
        name=name,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        ffn_size=(3 * ffn) // 2,
        vocab_size=32000,
        max_seq_len=2048,
    )


MODEL_REGISTRY: "dict[str, ModelArchitecture]" = {
    m.name: m
    for m in [
        _opt("opt-1.3b", 24, 2048, 32),
        _opt("opt-2.7b", 32, 2560, 32),
        _opt("opt-6.7b", 32, 4096, 32),
        _opt("opt-13b", 40, 5120, 40),
        _opt("opt-30b", 48, 7168, 56),
        _opt("opt-66b", 64, 9216, 72),
        _opt("opt-175b", 96, 12288, 96),
        _llama("llama-7b", 32, 4096, 32, 11008),
        _llama("llama-13b", 40, 5120, 40, 13824),
        _llama("llama-33b", 60, 6656, 52, 17920),
        _llama("llama-65b", 80, 8192, 64, 22016),
    ]
}


def get_model(name: str) -> ModelArchitecture:
    """Look up a model architecture by case-insensitive name.

    Raises:
        KeyError: with the list of known names if ``name`` is not registered.
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_REGISTRY[key]


def register_model(model: ModelArchitecture, overwrite: bool = False) -> None:
    """Add a custom architecture to the registry.

    Args:
        model: The architecture to register (must be un-sharded).
        overwrite: Allow replacing an existing entry of the same name.
    """
    if model.tp_degree != 1:
        raise ValueError("only un-sharded models may be registered")
    key = model.name.lower()
    if key in MODEL_REGISTRY and not overwrite:
        raise ValueError(f"model {model.name!r} already registered")
    MODEL_REGISTRY[key] = model


def list_models() -> "list[str]":
    """Return the sorted list of registered model names."""
    return sorted(MODEL_REGISTRY)
