"""Model architecture descriptions, registry, and memory accounting."""

from .architecture import BYTES_PER_PARAM_FP16, ModelArchitecture
from .memory import (
    MemoryBudget,
    compute_memory_budget,
    fits_in_memory,
    max_kv_tokens,
)
from .registry import MODEL_REGISTRY, get_model, list_models, register_model

__all__ = [
    "BYTES_PER_PARAM_FP16",
    "ModelArchitecture",
    "MemoryBudget",
    "compute_memory_budget",
    "fits_in_memory",
    "max_kv_tokens",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "register_model",
]
