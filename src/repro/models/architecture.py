"""Transformer architecture descriptions used by the latency model.

The DistServe latency model (paper Appendix A) characterizes a decoder-only
transformer with four symbols:

* ``h`` — hidden size
* ``n`` — number of attention heads
* ``s`` — head size (``h = n * s``)
* ``m`` — FFN intermediate size

plus the number of layers, which scales every per-layer cost. This module
defines :class:`ModelArchitecture`, a frozen value object holding those
parameters together with the derived quantities the rest of the system
needs: weight bytes, KV-cache bytes per token, and per-phase FLOPs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["ModelArchitecture", "BYTES_PER_PARAM_FP16"]

#: FP16 precision, as used in all paper experiments (§6.1).
BYTES_PER_PARAM_FP16 = 2


@dataclass(frozen=True)
class ModelArchitecture:
    """Static description of a decoder-only transformer LLM.

    All sizes are *full-model* values; tensor parallelism is expressed by
    :meth:`shard` which divides the per-GPU view of ``hidden_size``,
    ``num_heads`` and ``ffn_size`` as prescribed in Appendix A.

    Attributes:
        name: Human-readable identifier, e.g. ``"opt-13b"``.
        num_layers: Number of transformer blocks.
        hidden_size: Model (embedding) dimension ``h``.
        num_heads: Attention head count ``n``.
        ffn_size: FFN intermediate dimension ``m``.
        vocab_size: Vocabulary size (used only for weight sizing).
        max_seq_len: Maximum supported sequence length.
        bytes_per_param: Storage bytes per parameter (2 for FP16).
        tp_degree: Tensor-parallel degree this view has been sharded to.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    ffn_size: int
    vocab_size: int = 50272
    max_seq_len: int = 2048
    bytes_per_param: int = BYTES_PER_PARAM_FP16
    tp_degree: int = 1

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size <= 0 or self.ffn_size <= 0:
            raise ValueError("hidden_size and ffn_size must be positive")
        if self.num_heads <= 0:
            raise ValueError(f"num_heads must be positive, got {self.num_heads}")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.tp_degree <= 0:
            raise ValueError(f"tp_degree must be positive, got {self.tp_degree}")

    # ------------------------------------------------------------------
    # Derived dimensions
    # ------------------------------------------------------------------
    @property
    def head_size(self) -> int:
        """Per-head dimension ``s = h / n``."""
        return self.hidden_size // self.num_heads

    @property
    def num_params(self) -> int:
        """Approximate total parameter count.

        Per layer: QKV projection (3h^2), attention output (h^2), two FFN
        matmuls (2hm), plus embedding and LM head (tied counted once here,
        untied for OPT — we count both to match published sizes closely).
        """
        per_layer = 4 * self.hidden_size**2 + 2 * self.hidden_size * self.ffn_size
        embedding = 2 * self.vocab_size * self.hidden_size
        return self.num_layers * per_layer + embedding

    @property
    def weight_bytes(self) -> int:
        """Total weight footprint in bytes at the configured precision."""
        return self.num_params * self.bytes_per_param

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes stored per token across all layers.

        Two tensors (K and V) of ``hidden_size`` elements per layer.
        For OPT-66B with 512 tokens this evaluates to ~1.1 GB per request,
        matching the paper's §3.3 example.
        """
        return 2 * self.num_layers * self.hidden_size * self.bytes_per_param

    # ------------------------------------------------------------------
    # FLOPs accounting (full model, un-sharded)
    # ------------------------------------------------------------------
    def prefill_flops(self, num_tokens: int) -> float:
        """Total FLOPs to prefill ``num_tokens`` tokens of one sequence.

        GEMM terms follow Appendix A.2: per layer ``2 * t * (4h^2 + 2hm)``
        multiply-accumulates counted as 2 FLOPs each, plus quadratic
        attention ``2 * 2 * t^2 * h`` (QK^T and PV).
        """
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
        t = float(num_tokens)
        h, m = float(self.hidden_size), float(self.ffn_size)
        gemm = 2.0 * t * (4.0 * h * h + 2.0 * h * m)
        attn = 4.0 * t * t * h
        return self.num_layers * (gemm + attn)

    def decode_flops(self, batch_size: int, context_lens: "list[int] | None" = None) -> float:
        """Total FLOPs for one decoding step over a batch.

        Each request contributes one new token: GEMMs of a single token
        plus attention over its current context length.
        """
        if batch_size < 0:
            raise ValueError(f"batch_size must be >= 0, got {batch_size}")
        h, m = float(self.hidden_size), float(self.ffn_size)
        gemm = 2.0 * batch_size * (4.0 * h * h + 2.0 * h * m)
        total_ctx = float(sum(context_lens)) if context_lens else 0.0
        attn = 4.0 * total_ctx * h
        return self.num_layers * (gemm + attn)

    # ------------------------------------------------------------------
    # Parallelism views
    # ------------------------------------------------------------------
    def shard(self, tp_degree: int) -> "ModelArchitecture":
        """Return the per-GPU view under ``tp_degree``-way tensor parallelism.

        Appendix A: "If tensor parallelism is used, h, n, and m should be
        divided by the tensor parallelism size." Layers are unchanged; the
        relationship ``h = n * s`` is preserved by keeping head size fixed.
        """
        if tp_degree <= 0:
            raise ValueError(f"tp_degree must be positive, got {tp_degree}")
        if self.tp_degree != 1:
            raise ValueError("model is already sharded; shard from the full model")
        if tp_degree == 1:
            return self
        if self.num_heads % tp_degree != 0:
            raise ValueError(
                f"num_heads {self.num_heads} not divisible by tp_degree {tp_degree}"
            )
        return dataclasses.replace(
            self,
            hidden_size=self.hidden_size // tp_degree,
            num_heads=self.num_heads // tp_degree,
            ffn_size=self.ffn_size // tp_degree,
            tp_degree=tp_degree,
        )

    def layers_per_stage(self, pp_degree: int) -> int:
        """Number of layers assigned to each pipeline stage (ceil split)."""
        if pp_degree <= 0:
            raise ValueError(f"pp_degree must be positive, got {pp_degree}")
        return -(-self.num_layers // pp_degree)

    def activation_bytes_per_token(self) -> int:
        """Bytes of hidden activation shipped between pipeline stages."""
        return self.hidden_size * self.tp_degree * self.bytes_per_param
