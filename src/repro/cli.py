"""Command-line interface: plan placements, serve traces, inspect models.

Mirrors the operational surface of the original system's tooling::

    python -m repro.cli models
    python -m repro.cli plan --model opt-13b --application chatbot
    python -m repro.cli serve --model opt-13b --rate 3.0 --requests 300
    python -m repro.cli analyze --model opt-66b --input-len 512
    python -m repro.cli trace --model opt-13b --rate 2.0 --requests 100 \
        --out /tmp/trace.json
    python -m repro.cli metrics --model opt-13b --rate 3.0 --requests 300 \
        --prom-out /tmp/metrics.prom
    python -m repro.cli lint src tests --format json
    python -m repro.cli trace --sanitize --model opt-13b --rate 2.0 \
        --requests 100 --out /tmp/trace.json
    python -m repro.cli profile --model opt-13b --rate 2.0 --requests 100 \
        --json-out /tmp/profile.json --html-out /tmp/profile.html
    python -m repro.cli profile --diff /tmp/colocated.json /tmp/disagg.json

Exit codes (shared by every subcommand):

* 0 — success.
* 1 — the run surfaced findings: sanitizer violations under
  ``--sanitize`` (even in lenient mode, where the run completes first),
  lint findings, or a failed check.
* 2 — usage errors (bad flags, unknown rules, missing paths).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

from .analysis import (
    build_profile,
    diff_profiles,
    format_profile,
    format_profile_diff,
    format_series,
    latency_breakdown_from_spans,
    latency_summary,
    phase_utilization,
    profile_to_html,
    profile_to_json,
    request_breakdowns,
    slo_attainment,
    write_metrics_json,
    write_prometheus_text,
)
from .core import PlacementSearchStats, build_system, place_high_affinity, place_low_affinity
from .hardware import get_gpu, paper_testbed
from .latency import (
    ParallelismConfig,
    coefficients_from_roofline,
    intra_op_speedup,
    prefill_times,
    saturation_length,
)
from .models import get_model, list_models
from .scheduling import (
    BATCH_POLICIES,
    DISPATCH_POLICIES,
    QUEUE_POLICIES,
    SchedulingConfig,
)
from .serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from .simulator import (
    InstanceSpec,
    MetricsRegistry,
    Profiler,
    SimSanitizer,
    Simulation,
    SloMonitor,
    TelemetryRecorder,
    Tracer,
    write_chrome_trace,
    write_jsonl,
)
from .workload import SLO, generate_trace, get_dataset, get_workload

__all__ = ["main", "EXIT_OK", "EXIT_FINDINGS", "EXIT_USAGE"]

#: Exit-code semantics, documented in ``--help`` (see module docstring).
EXIT_OK = 0
#: Findings were collected: sanitizer violations (lenient ``--sanitize``
#: runs complete, then still exit nonzero), lint findings, failed checks.
EXIT_FINDINGS = 1
#: Usage errors (argparse also uses 2 for unparseable flags).
EXIT_USAGE = 2


def _cmd_models(_args: argparse.Namespace) -> int:
    for name in list_models():
        model = get_model(name)
        print(f"{name:12s} {model.num_params / 1e9:7.1f}B params  "
              f"{model.weight_bytes / 1e9:7.1f} GB fp16  "
              f"{model.num_layers:3d} layers  h={model.hidden_size}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    workload = get_workload(args.application, args.model)
    model = get_model(args.model)
    dataset = get_dataset(workload.dataset_name)
    cluster = paper_testbed()
    stats = PlacementSearchStats()
    search = place_high_affinity if args.high_affinity else place_low_affinity
    kwargs = {} if args.high_affinity else {"joint_sim_candidates": args.candidates}
    placement = search(
        model, cluster, dataset, workload.slo,
        traffic_rate=args.traffic or None,
        num_requests=args.trial_requests,
        stats=stats,
        workers=args.workers,
        fast_kernel=not args.no_fast_kernel,
        scheduling=_scheduling_from_args(args),
        **kwargs,
    )
    print(placement.describe())
    print(f"(searched {stats.configs_evaluated} configs, "
          f"{stats.simulation_trials} simulation trials)")
    if args.search_stats:
        print(f"search wall time: {stats.wall_time_s:.2f}s "
              f"({stats.workers} worker{'s' if stats.workers != 1 else ''})")
        print(f"trial cache: {stats.cache_hits} hits / "
              f"{stats.cache_misses} misses ({stats.cache_hit_rate:.1%} hit rate)")
        print(f"pruned {stats.configs_pruned} config simulations; "
              f"{stats.trials_aborted} trials early-aborted, "
              f"{stats.trials_truncated} truncated")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    prefill_spec = InstanceSpec(
        model=model, config=ParallelismConfig(args.prefill_tp, args.prefill_pp)
    )
    decode_spec = InstanceSpec(
        model=model, config=ParallelismConfig(args.decode_tp, args.decode_pp)
    )
    sim = Simulation()
    scheduling = _scheduling_from_args(args)
    system = DisaggregatedSystem(
        sim, prefill_spec, decode_spec,
        num_prefill=args.num_prefill, num_decode=args.num_decode,
        scheduling=scheduling, rng=_dispatch_rng(scheduling, args.seed),
    )
    trace = generate_trace(
        get_dataset(args.dataset), rate=args.rate, num_requests=args.requests,
        rng=np.random.default_rng(args.seed),
    )
    result = simulate_trace(system, trace)
    print(f"{result.completed}/{len(trace)} requests on {result.num_gpus} GPUs "
          f"in {result.sim_time:.1f}s simulated")
    summary = latency_summary(result.records)
    print(f"TTFT p50/p90/p99: {summary['ttft_p50']:.3f} / "
          f"{summary['ttft_p90']:.3f} / {summary['ttft_p99']:.3f} s")
    print(f"TPOT p50/p90/p99: {summary['tpot_p50']:.4f} / "
          f"{summary['tpot_p90']:.4f} / {summary['tpot_p99']:.4f} s")
    if args.ttft and args.tpot:
        slo = SLO(ttft=args.ttft, tpot=args.tpot)
        report = slo_attainment(result.records, slo, num_expected=len(trace))
        print(f"SLO attainment: {report.total:.1%}")
    return 0


def _scheduling_from_args(args: argparse.Namespace) -> "SchedulingConfig | None":
    """The policy triple selected by the shared scheduling flags.

    Returns ``None`` when every flag is at its default so default runs
    construct systems exactly as before (byte-identical traces, stable
    search fingerprints).
    """
    cfg = SchedulingConfig(
        queue_policy=getattr(args, "queue_policy", "fcfs"),
        batch_policy=getattr(args, "batch_policy", "token_budget"),
        dispatch_policy=getattr(args, "dispatch_policy", "least_loaded"),
    )
    return None if cfg.is_default() else cfg


def _dispatch_rng(
    cfg: "SchedulingConfig | None", seed: int
) -> "np.random.Generator | None":
    """A dedicated dispatch RNG for the randomized policies.

    Kept separate from the trace RNG so the workload a seed generates
    never depends on the dispatch policy.
    """
    if cfg is not None and cfg.dispatch_policy in ("random", "power_of_two"):
        return np.random.default_rng(seed)
    return None


def _make_sim(args: argparse.Namespace) -> "tuple[Simulation, SimSanitizer | None]":
    """A fresh simulation, sanitized when ``--sanitize`` was passed.

    Lenient (collecting) mode: the run completes and every violation is
    reported at the end, turning the exit code nonzero.
    """
    if getattr(args, "sanitize", False):
        sanitizer = SimSanitizer(strict=False)
        return sanitizer.simulation(), sanitizer
    return Simulation(), None


def _finish_sanitize(sanitizer: "SimSanitizer | None") -> int:
    """Quiesce checks + report; returns the exit status contribution.

    Lenient (collecting) sanitizer runs complete before reporting, but
    any collected violation still turns the exit code to
    :data:`EXIT_FINDINGS` — a "passing" run means a *clean* run.
    """
    if sanitizer is None:
        return EXIT_OK
    sanitizer.check_quiesce()
    print(sanitizer.report())
    return EXIT_OK if sanitizer.ok else EXIT_FINDINGS


def _build_system(
    args: argparse.Namespace,
    sim: Simulation,
    tracer: "Tracer | None" = None,
    profiler: "Profiler | None" = None,
):
    """Construct the serving system described by the shared run flags."""
    model = get_model(args.model)
    scheduling = _scheduling_from_args(args)
    rng = _dispatch_rng(scheduling, getattr(args, "seed", 0))
    if args.mode == "disaggregated":
        prefill_spec = InstanceSpec(
            model=model, config=ParallelismConfig(args.prefill_tp, args.prefill_pp)
        )
        decode_spec = InstanceSpec(
            model=model, config=ParallelismConfig(args.decode_tp, args.decode_pp)
        )
        return DisaggregatedSystem(
            sim, prefill_spec, decode_spec,
            num_prefill=args.num_prefill, num_decode=args.num_decode,
            tracer=tracer, profiler=profiler,
            scheduling=scheduling, rng=rng,
        )
    spec = InstanceSpec(
        model=model, config=ParallelismConfig(args.prefill_tp, args.prefill_pp)
    )
    return ColocatedSystem(
        sim, spec, num_replicas=args.num_prefill, tracer=tracer,
        profiler=profiler, scheduling=scheduling, rng=rng,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    sim, sanitizer = _make_sim(args)
    tracer = Tracer()
    system = _build_system(args, sim, tracer=tracer)
    if sanitizer is not None:
        sanitizer.watch_system(system)
    trace = generate_trace(
        get_dataset(args.dataset), rate=args.rate, num_requests=args.requests,
        rng=np.random.default_rng(args.seed),
    )
    result = simulate_trace(system, trace)
    write_chrome_trace(args.out, result.spans)
    if args.jsonl_out:
        write_jsonl(args.jsonl_out, result.spans)
    print(f"{result.completed}/{len(trace)} requests, "
          f"{len(result.spans)} spans in {result.sim_time:.1f}s simulated")
    print(f"Chrome trace written to {args.out} "
          f"(open in Perfetto or chrome://tracing)")
    if args.jsonl_out:
        print(f"JSON-lines trace written to {args.jsonl_out}")
    breakdown = latency_breakdown_from_spans(result.spans)
    for stage, frac in breakdown.fractions().items():
        print(f"  {stage:14s} {frac:6.1%}")
    # Reconciliation: per-request stage sums vs record end-to-end latency.
    by_id = {r.request_id: r.end_to_end_latency for r in result.records}
    worst = max(
        (abs(b.stage_sum - by_id[b.request_id])
         for b in request_breakdowns(result.spans) if b.request_id in by_id),
        default=0.0,
    )
    summary = latency_summary(result.records)
    print(f"e2e mean/p99: {summary['e2e_mean']:.3f} / {summary['e2e_p99']:.3f} s; "
          f"max |span-sum - e2e| = {worst:.2e} s")
    return _finish_sanitize(sanitizer)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a seeded workload with full instrumentation and report it."""
    sim, sanitizer = _make_sim(args)
    system = _build_system(args, sim)
    if sanitizer is not None:
        sanitizer.watch_system(system)
    slo = SLO(ttft=args.ttft, tpot=args.tpot)
    registry = MetricsRegistry()
    monitor = SloMonitor(sim, slo, window=args.window, registry=registry)
    system.attach_monitor(monitor)
    system.instrument(registry)
    trace = generate_trace(
        get_dataset(args.dataset), rate=args.rate, num_requests=args.requests,
        rng=np.random.default_rng(args.seed),
    )
    # Time-series view: sample the windowed gauges on a fixed cadence
    # for the whole arrival span plus drain slack.
    recorder = TelemetryRecorder(sim, interval=args.interval)
    recorder.register("attain_total", lambda: monitor.windowed_attainment().total)
    recorder.register("attain_ttft", lambda: monitor.windowed_attainment().ttft_only)
    recorder.register("attain_tpot", lambda: monitor.windowed_attainment().tpot_only)
    recorder.register("goodput_rps", lambda: monitor.windowed_goodput()["total"])
    recorder.register("in_flight", lambda: float(system.unfinished))
    recorder.register(
        "utilization",
        lambda: sum(phase_utilization(registry).values())
        / max(1, len(phase_utilization(registry))),
    )
    recorder.start(until=trace.duration + 2.0 * args.window)
    result = simulate_trace(system, trace)

    times = recorder.series("attain_total").times
    print(format_series(
        "t(s)", [f"{t:.0f}" for t in times],
        {name: recorder.series(name).values for name in (
            "attain_total", "attain_ttft", "attain_tpot",
            "goodput_rps", "in_flight", "utilization",
        )},
        title=f"windowed SLO attainment & utilization "
              f"(window={args.window:g}s, interval={args.interval:g}s)",
    ))
    print()
    print(monitor.describe())
    cum = monitor.cumulative_attainment()
    offline = slo_attainment(result.records, slo)
    print(f"cumulative attainment: total={cum.total:.3%} "
          f"ttft={cum.ttft_only:.3%} tpot={cum.tpot_only:.3%} "
          f"(n={cum.num_requests}; offline check: {offline.total:.3%})")
    util = phase_utilization(registry)
    if util:
        print("per-phase utilization: "
              + "  ".join(f"{phase}={value:.1%}" for phase, value in util.items()))
    print(f"{result.completed}/{len(trace)} requests on {result.num_gpus} GPUs "
          f"in {result.sim_time:.1f}s simulated")
    if args.prom_out:
        write_prometheus_text(args.prom_out, registry)
        print(f"Prometheus text export written to {args.prom_out}")
    if args.json_out:
        write_metrics_json(args.json_out, registry)
        print(f"JSON metrics snapshot written to {args.json_out}")
    return _finish_sanitize(sanitizer)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Critical-path profile of one run, or a diff of two saved runs."""
    if args.diff:
        try:
            report_a = json.loads(pathlib.Path(args.diff[0]).read_text())
            report_b = json.loads(pathlib.Path(args.diff[1]).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro profile: cannot read report: {exc}", file=sys.stderr)
            return EXIT_USAGE
        try:
            report = diff_profiles(report_a, report_b)
        except (ValueError, KeyError) as exc:
            print(f"repro profile: bad report: {exc}", file=sys.stderr)
            return EXIT_USAGE
        rendered = (
            profile_to_json(report) if args.format == "json"
            else format_profile_diff(report)
        )
        sys.stdout.write(rendered)
        sanitizer = None
    else:
        sim, sanitizer = _make_sim(args)
        tracer = Tracer()
        profiler = Profiler()
        system = _build_system(args, sim, tracer=tracer, profiler=profiler)
        if sanitizer is not None:
            sanitizer.watch_system(system)
        trace = generate_trace(
            get_dataset(args.dataset), rate=args.rate,
            num_requests=args.requests, rng=np.random.default_rng(args.seed),
        )
        result = simulate_trace(system, trace)
        slo = (args.ttft, args.tpot) if args.ttft > 0 and args.tpot > 0 else None
        report = build_profile(
            tracer.spans,
            profiler=profiler,
            sim_time=result.sim_time,
            slo=slo,
            meta={
                "mode": args.mode,
                "model": args.model,
                "dataset": args.dataset,
                "rate": args.rate,
                "requests": args.requests,
                "seed": args.seed,
            },
            num_gpus=result.num_gpus,
        )
        rendered = (
            profile_to_json(report) if args.format == "json"
            else format_profile(report)
        )
        sys.stdout.write(rendered)
    if args.json_out:
        pathlib.Path(args.json_out).write_text(profile_to_json(report))
        print(f"JSON profile written to {args.json_out}", file=sys.stderr)
    if args.html_out:
        pathlib.Path(args.html_out).write_text(profile_to_html(report))
        print(f"HTML profile written to {args.html_out}", file=sys.stderr)
    return _finish_sanitize(sanitizer)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint over the given paths; exit 1 on findings."""
    from .lint import LintEngine, findings_to_json, format_findings, rule_names

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        engine = LintEngine(select=select, cache_dir=args.cache_dir or None)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.list_rules:
        from .lint import all_rules

        for name, cls in sorted(all_rules().items()):
            print(f"{name}  {cls.summary}")
        return EXIT_OK
    if args.explain:
        from .lint import all_rules
        from .lint.sarif import rule_doc

        registry = all_rules()
        rule = args.explain.strip().upper()
        if rule not in registry:
            print(
                f"repro lint: unknown rule {rule}; "
                f"known: {', '.join(rule_names())}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        cls = registry[rule]
        print(f"{rule} — {cls.summary}")
        print()
        print(rule_doc(cls))
        return EXIT_OK
    if not args.paths:
        print("repro lint: no paths given (try: src tests)", file=sys.stderr)
        return EXIT_USAGE
    findings, checked = engine.lint_paths(args.paths)
    if args.baseline == "write":
        from .lint.baseline import write_baseline

        count = write_baseline(findings, args.baseline_file)
        print(
            f"repro lint: baseline written to {args.baseline_file} "
            f"({count} entr{'y' if count == 1 else 'ies'})",
            file=sys.stderr,
        )
        return EXIT_OK
    if args.baseline == "check":
        from .lint.baseline import filter_findings, load_baseline

        known = load_baseline(args.baseline_file)
        new = filter_findings(findings, known)
        suppressed = len(findings) - len(new)
        findings = new
        if suppressed:
            print(
                f"repro lint: {suppressed} finding(s) covered by baseline "
                f"{args.baseline_file}",
                file=sys.stderr,
            )
    if args.format == "sarif":
        from .lint.sarif import findings_to_sarif

        sys.stdout.write(findings_to_sarif(findings))
    elif args.format == "json":
        sys.stdout.write(findings_to_json(findings, checked))
    else:
        print(format_findings(findings))
        print(f"({checked} file(s) checked, rules: {', '.join(rule_names())})")
    return EXIT_FINDINGS if findings else EXIT_OK


def _cmd_analyze(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    gpu = get_gpu(args.gpu)
    coeffs = coefficients_from_roofline(gpu)
    print(f"{model.name} on {gpu.name}")
    print(f"  saturation length L_m: {saturation_length(model, coeffs)} tokens")
    for tp in (1, 2, 4, 8):
        if model.num_heads % tp:
            continue
        times = prefill_times(
            model, ParallelismConfig(tp, 1), coeffs, [args.input_len]
        )
        k = intra_op_speedup(model, coeffs, args.input_len, tp) if tp > 1 else 1.0
        print(f"  prefill({args.input_len} tok) tp={tp}: "
              f"{times.request_latency * 1e3:7.1f} ms  (K = {k:.2f})")
    return 0


def _add_scheduling_flags(p: argparse.ArgumentParser) -> None:
    """Shared ``repro.scheduling`` policy flags (defaults = paper §4.3)."""
    p.add_argument("--queue-policy", choices=QUEUE_POLICIES, default="fcfs",
                   help="admission order of waiting requests")
    p.add_argument("--batch-policy", choices=BATCH_POLICIES,
                   default="token_budget",
                   help="prefill batch shaping (chunked splits oversized "
                        "prompts across consecutive batches)")
    p.add_argument("--dispatch-policy", choices=DISPATCH_POLICIES,
                   default="least_loaded",
                   help="cross-instance routing (random/power_of_two draw "
                        "from a dedicated RNG seeded by --seed)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DistServe reproduction toolkit",
        epilog=(
            "exit codes: 0 success; 1 findings (sanitizer violations under "
            "--sanitize — even in lenient mode — or lint findings); "
            "2 usage errors (bad arguments, unreadable inputs)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list known model architectures")

    plan = sub.add_parser("plan", help="search a goodput-optimal placement")
    plan.add_argument("--model", default="opt-13b")
    plan.add_argument("--application", default="chatbot")
    plan.add_argument("--traffic", type=float, default=0.0,
                      help="target rate (req/s); 0 sizes one deployment unit")
    plan.add_argument("--high-affinity", action="store_true",
                      help="use Algorithm 1 (fast cross-node fabric)")
    plan.add_argument("--candidates", type=int, default=3)
    plan.add_argument("--trial-requests", type=int, default=150)
    plan.add_argument("--workers", type=int, default=1,
                      help="simulation worker processes (<=1 runs in-process; "
                           "the placement found is identical either way)")
    plan.add_argument("--search-stats", action="store_true",
                      help="print cache hit rate, pruned configs and wall time")
    plan.add_argument("--no-fast-kernel", action="store_true",
                      help="force the per-step reference simulation path "
                           "(the fast-forward kernel is bit-identical, so "
                           "this only changes speed, never the placement)")
    _add_scheduling_flags(plan)

    serve = sub.add_parser("serve", help="simulate serving a trace")
    serve.add_argument("--model", default="opt-13b")
    serve.add_argument("--dataset", default="sharegpt")
    serve.add_argument("--rate", type=float, default=2.0)
    serve.add_argument("--requests", type=int, default=300)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--num-prefill", type=int, default=1)
    serve.add_argument("--num-decode", type=int, default=1)
    serve.add_argument("--prefill-tp", type=int, default=1)
    serve.add_argument("--prefill-pp", type=int, default=1)
    serve.add_argument("--decode-tp", type=int, default=1)
    serve.add_argument("--decode-pp", type=int, default=1)
    serve.add_argument("--ttft", type=float, default=0.0)
    serve.add_argument("--tpot", type=float, default=0.0)
    _add_scheduling_flags(serve)

    trace_p = sub.add_parser(
        "trace", help="simulate a synthetic trace and dump the span timeline"
    )
    trace_p.add_argument("--model", default="opt-13b")
    trace_p.add_argument("--dataset", default="sharegpt")
    trace_p.add_argument("--mode", choices=("disaggregated", "colocated"),
                         default="disaggregated")
    trace_p.add_argument("--rate", type=float, default=2.0)
    trace_p.add_argument("--requests", type=int, default=100)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument("--num-prefill", type=int, default=1,
                         help="prefill instances (replicas in colocated mode)")
    trace_p.add_argument("--num-decode", type=int, default=1)
    trace_p.add_argument("--prefill-tp", type=int, default=1)
    trace_p.add_argument("--prefill-pp", type=int, default=1)
    trace_p.add_argument("--decode-tp", type=int, default=1)
    trace_p.add_argument("--decode-pp", type=int, default=1)
    trace_p.add_argument("--out", default="/tmp/trace.json",
                         help="Chrome trace_event output path")
    trace_p.add_argument("--jsonl-out", default="",
                         help="optional JSON-lines span dump path")
    trace_p.add_argument("--sanitize", action="store_true",
                         help="run under SimSanitizer (monotonic time, "
                              "request conservation, KV-leak and transfer "
                              "double-free checks); exit 1 on violations")

    _add_scheduling_flags(trace_p)

    metrics = sub.add_parser(
        "metrics",
        help="serve a trace with full instrumentation; report/export metrics",
    )
    metrics.add_argument("--model", default="opt-13b")
    metrics.add_argument("--dataset", default="sharegpt")
    metrics.add_argument("--mode", choices=("disaggregated", "colocated"),
                         default="disaggregated")
    metrics.add_argument("--rate", type=float, default=2.0)
    metrics.add_argument("--requests", type=int, default=300)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--num-prefill", type=int, default=1,
                         help="prefill instances (replicas in colocated mode)")
    metrics.add_argument("--num-decode", type=int, default=1)
    metrics.add_argument("--prefill-tp", type=int, default=1)
    metrics.add_argument("--prefill-pp", type=int, default=1)
    metrics.add_argument("--decode-tp", type=int, default=1)
    metrics.add_argument("--decode-pp", type=int, default=1)
    metrics.add_argument("--ttft", type=float, default=4.0,
                         help="TTFT SLO in seconds")
    metrics.add_argument("--tpot", type=float, default=0.2,
                         help="TPOT SLO in seconds")
    metrics.add_argument("--window", type=float, default=30.0,
                         help="sliding-window span for online attainment (s)")
    metrics.add_argument("--interval", type=float, default=10.0,
                         help="time-series sampling cadence (s)")
    metrics.add_argument("--prom-out", default="",
                         help="Prometheus text-format export path")
    metrics.add_argument("--json-out", default="",
                         help="JSON metrics snapshot path")
    metrics.add_argument("--sanitize", action="store_true",
                         help="run under SimSanitizer; exit 1 on violations")
    _add_scheduling_flags(metrics)

    profile = sub.add_parser(
        "profile",
        help="critical-path profile: per-phase latency attribution, "
             "utilization timelines, and differential run comparison",
    )
    profile.add_argument("--model", default="opt-13b")
    profile.add_argument("--dataset", default="sharegpt")
    profile.add_argument("--mode", choices=("disaggregated", "colocated"),
                         default="disaggregated")
    profile.add_argument("--rate", type=float, default=2.0)
    profile.add_argument("--requests", type=int, default=100)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--num-prefill", type=int, default=1,
                         help="prefill instances (replicas in colocated mode)")
    profile.add_argument("--num-decode", type=int, default=1)
    profile.add_argument("--prefill-tp", type=int, default=1)
    profile.add_argument("--prefill-pp", type=int, default=1)
    profile.add_argument("--decode-tp", type=int, default=1)
    profile.add_argument("--decode-pp", type=int, default=1)
    profile.add_argument("--ttft", type=float, default=0.0,
                         help="TTFT SLO in seconds (0 disables goodput)")
    profile.add_argument("--tpot", type=float, default=0.0,
                         help="TPOT SLO in seconds (0 disables goodput)")
    profile.add_argument("--format", choices=("human", "json"),
                         default="human")
    profile.add_argument("--json-out", default="",
                         help="machine-readable profile report path")
    profile.add_argument("--html-out", default="",
                         help="self-contained HTML report path")
    profile.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                         help="compare two saved --json-out reports instead "
                              "of running a simulation")
    profile.add_argument("--sanitize", action="store_true",
                         help="run under SimSanitizer; exit 1 on violations")
    _add_scheduling_flags(profile)

    lint = sub.add_parser(
        "lint",
        help="reprolint: determinism & simulation-invariant static analysis",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (e.g. src tests)")
    lint.add_argument("--format", choices=("human", "json", "sarif"),
                      default="human")
    lint.add_argument("--select", default="",
                      help="comma-separated rule subset (e.g. DET001,SIM001)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--explain", default="", metavar="RULE",
                      help="print a rule's rationale, example violation, "
                           "and suppression syntax, then exit")
    lint.add_argument("--baseline", choices=("write", "check"), default="",
                      help="write: snapshot current findings; check: fail "
                           "only on findings not in the snapshot")
    lint.add_argument("--baseline-file", default="LINT_BASELINE.json",
                      help="baseline snapshot path (default: "
                           "LINT_BASELINE.json)")
    lint.add_argument("--cache-dir", default="",
                      help="directory for the call-graph disk cache, keyed "
                           "on a source hash (e.g. .lint-cache)")

    analyze = sub.add_parser("analyze", help="latency-model analysis of a model")
    analyze.add_argument("--model", default="opt-13b")
    analyze.add_argument("--gpu", default="a100-80gb")
    analyze.add_argument("--input-len", type=int, default=512)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "plan": _cmd_plan,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "profile": _cmd_profile,
        "analyze": _cmd_analyze,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
