"""Synthetic datasets matching the paper's three applications (Figure 7).

Offline we cannot ship ShareGPT / HumanEval / LongBench, so each dataset
is a pair of length distributions fitted to the marginals in Figure 7:

* **ShareGPT** (chatbot): moderate prompts with a heavy tail (conversations
  accumulate context), outputs of a few hundred tokens.
* **HumanEval** (code completion): short prompts (function signature +
  docstring), short-to-moderate completions.
* **LongBench** (summarization): *much* longer inputs than the others —
  thousands of tokens — with short summaries out.

:func:`generate_trace` combines a dataset with an arrival process to
produce a simulator-ready :class:`~repro.workload.trace.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arrivals import gamma_arrivals, poisson_arrivals, uniform_arrivals
from .distributions import (
    FixedLength,
    LengthDistribution,
    LognormalLength,
    MixtureLength,
)
from .trace import Request, Trace

__all__ = [
    "SyntheticDataset",
    "SHAREGPT",
    "HUMANEVAL",
    "LONGBENCH",
    "DATASETS",
    "get_dataset",
    "fixed_length_dataset",
    "generate_trace",
]


@dataclass(frozen=True)
class SyntheticDataset:
    """A named pair of (input, output) length distributions."""

    name: str
    input_dist: LengthDistribution
    output_dist: LengthDistribution

    def sample_lengths(
        self, rng: np.random.Generator, size: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Draw ``size`` (input_len, output_len) pairs."""
        return self.input_dist.sample(rng, size), self.output_dist.sample(rng, size)


SHAREGPT = SyntheticDataset(
    name="sharegpt",
    # Bimodal prompts: fresh questions (short) plus multi-turn context
    # (a moderate tail within the 2k window), matching Figure 7(a):
    # mean ~240 tokens, p90 ~550, p99 ~1.1k.
    input_dist=MixtureLength(
        components=(
            LognormalLength(median=100, sigma=0.75, low=4, high=1024),
            LognormalLength(median=350, sigma=0.5, low=32, high=1536),
        ),
        weights=(0.6, 0.4),
    ),
    output_dist=LognormalLength(median=190, sigma=0.7, low=2, high=1024),
)

HUMANEVAL = SyntheticDataset(
    name="humaneval",
    input_dist=LognormalLength(median=120, sigma=0.45, low=16, high=1024),
    output_dist=LognormalLength(median=60, sigma=0.6, low=4, high=512),
)

LONGBENCH = SyntheticDataset(
    name="longbench",
    # Long-document summarization: inputs an order of magnitude beyond
    # the chat workloads (truncated toward the serving context window,
    # as the paper's OPT models require), short summaries out.
    input_dist=LognormalLength(median=1800, sigma=0.5, low=256, high=6000),
    output_dist=LognormalLength(median=180, sigma=0.5, low=8, high=1024),
)

DATASETS: "dict[str, SyntheticDataset]" = {
    d.name: d for d in (SHAREGPT, HUMANEVAL, LONGBENCH)
}


def get_dataset(name: str) -> SyntheticDataset:
    """Look up a dataset by case-insensitive name."""
    key = name.lower()
    if key not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return DATASETS[key]


def fixed_length_dataset(input_len: int, output_len: int) -> SyntheticDataset:
    """A dataset of identical requests (used by Figure 1's synthetic workload)."""
    return SyntheticDataset(
        name=f"fixed-{input_len}x{output_len}",
        input_dist=FixedLength(input_len),
        output_dist=FixedLength(output_len),
    )


def generate_trace(
    dataset: SyntheticDataset,
    rate: float,
    num_requests: int,
    rng: np.random.Generator,
    arrival_process: str = "poisson",
    burst_cv: float = 1.0,
) -> Trace:
    """Sample a trace: lengths from ``dataset``, arrivals from the process.

    Args:
        dataset: Length distributions to draw from.
        rate: Mean arrival rate, requests/second.
        num_requests: Trace length.
        rng: Seeded generator — identical seeds yield identical traces.
        arrival_process: ``"poisson"``, ``"gamma"``, or ``"uniform"``.
        burst_cv: Coefficient of variation for the gamma process.
    """
    if arrival_process == "poisson":
        times = poisson_arrivals(rate, num_requests, rng)
    elif arrival_process == "gamma":
        times = gamma_arrivals(rate, num_requests, burst_cv, rng)
    elif arrival_process == "uniform":
        times = uniform_arrivals(rate, num_requests)
    else:
        raise ValueError(
            f"unknown arrival_process {arrival_process!r}; "
            "expected 'poisson', 'gamma', or 'uniform'"
        )
    inputs, outputs = dataset.sample_lengths(rng, num_requests)
    requests = [
        Request(
            request_id=i,
            arrival_time=float(times[i]),
            input_len=int(inputs[i]),
            output_len=int(outputs[i]),
        )
        for i in range(num_requests)
    ]
    return Trace(requests=requests)
