"""Token-length distributions for synthetic workload generation.

The paper samples requests from ShareGPT, HumanEval and LongBench; we
have no dataset files offline, so we reproduce the input/output length
*marginals* shown in Figure 7 with parametric distributions (clipped
lognormals and mixtures). Every distribution draws from an explicit
``numpy.random.Generator`` — no global RNG state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LengthDistribution",
    "FixedLength",
    "UniformLength",
    "LognormalLength",
    "MixtureLength",
    "EmpiricalLength",
]


class LengthDistribution(abc.ABC):
    """A distribution over positive integer token counts."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` integer lengths (dtype int64, all >= 1)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected length (after clipping)."""

    def min_length(self) -> "int | None":
        """Smallest length this distribution can emit, if known.

        ``None`` means "unknown" — subclasses that cannot bound their
        support (e.g. user extensions) inherit this default, and callers
        such as the placement search's SLO-infeasibility pruning must
        then treat the distribution as unbounded below and skip the
        prune rather than guess.
        """
        return None


@dataclass(frozen=True)
class FixedLength(LengthDistribution):
    """Every request has exactly ``length`` tokens."""

    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.length, dtype=np.int64)

    def mean(self) -> float:
        return float(self.length)

    def min_length(self) -> int:
        return self.length


@dataclass(frozen=True)
class UniformLength(LengthDistribution):
    """Uniform integer lengths in ``[low, high]`` inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not 1 <= self.low <= self.high:
            raise ValueError(f"need 1 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=size, dtype=np.int64)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def min_length(self) -> int:
        return self.low


@dataclass(frozen=True)
class LognormalLength(LengthDistribution):
    """Clipped lognormal — the canonical fit for LLM prompt lengths.

    Attributes:
        median: Median token count (``exp(mu)``).
        sigma: Log-space standard deviation (tail heaviness).
        low: Minimum length after clipping.
        high: Maximum length after clipping.
    """

    median: float
    sigma: float
    low: int = 1
    high: int = 32768

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")
        if not 1 <= self.low <= self.high:
            raise ValueError(f"need 1 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raw = rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=size)
        return np.clip(np.rint(raw), self.low, self.high).astype(np.int64)

    def mean(self) -> float:
        # Analytic lognormal mean, a good approximation when clipping is mild.
        return float(
            np.clip(self.median * np.exp(self.sigma**2 / 2.0), self.low, self.high)
        )

    def min_length(self) -> int:
        return self.low


@dataclass(frozen=True)
class MixtureLength(LengthDistribution):
    """Weighted mixture of component length distributions."""

    components: "tuple[LengthDistribution, ...]"
    weights: "tuple[float, ...]"

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ValueError("components and weights must be non-empty, same length")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")

    def _probs(self) -> np.ndarray:
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choices = rng.choice(len(self.components), size=size, p=self._probs())
        out = np.empty(size, dtype=np.int64)
        for idx, comp in enumerate(self.components):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(rng, count)
        return out

    def mean(self) -> float:
        probs = self._probs()
        return float(sum(p * c.mean() for p, c in zip(probs, self.components)))

    def min_length(self) -> "int | None":
        mins = [c.min_length() for c in self.components]
        if any(m is None for m in mins):
            return None
        return min(mins)


@dataclass(frozen=True)
class EmpiricalLength(LengthDistribution):
    """Resampling distribution over observed lengths (used by replanning).

    DistServe "fits a distribution from the history request traces and
    resamples new traces" (§4.1); bootstrap resampling of the empirical
    length histogram is the simplest faithful realization.
    """

    observations: "tuple[int, ...]"

    def __post_init__(self) -> None:
        if not self.observations:
            raise ValueError("observations must be non-empty")
        if any(obs < 1 for obs in self.observations):
            raise ValueError("observed lengths must be >= 1")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        data = np.asarray(self.observations, dtype=np.int64)
        return rng.choice(data, size=size, replace=True)

    def mean(self) -> float:
        return float(np.mean(self.observations))

    def min_length(self) -> int:
        return min(self.observations)
