"""Arrival-process generators.

The paper generates arrival times "using Poisson distribution with
different request rates" (§6.1). We provide Poisson arrivals plus a
Gamma-process variant whose coefficient of variation dials in burstiness
(used by the pull-vs-push KV transfer ablation, §4.3 "Combat burstiness"),
and deterministic arrivals for queueing-theory cross-checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "poisson_arrivals",
    "gamma_arrivals",
    "uniform_arrivals",
    "piecewise_rate_arrivals",
]


def _validate(rate: float, num_requests: int) -> None:
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")


def poisson_arrivals(
    rate: float, num_requests: int, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a Poisson process with the given rate.

    Returns:
        Non-decreasing array of ``num_requests`` arrival times starting
        after 0 (exponential inter-arrival gaps of mean ``1/rate``).
    """
    _validate(rate, num_requests)
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def gamma_arrivals(
    rate: float, num_requests: int, cv: float, rng: np.random.Generator
) -> np.ndarray:
    """Gamma-renewal arrivals with coefficient of variation ``cv``.

    ``cv = 1`` recovers Poisson; ``cv > 1`` produces bursty traffic
    (clusters of near-simultaneous arrivals separated by lulls); ``cv < 1``
    produces smoother-than-Poisson traffic.
    """
    _validate(rate, num_requests)
    if cv <= 0:
        raise ValueError(f"cv must be positive, got {cv}")
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    gaps = rng.gamma(shape=shape, scale=scale, size=num_requests)
    return np.cumsum(gaps)


def uniform_arrivals(rate: float, num_requests: int) -> np.ndarray:
    """Deterministic, evenly spaced arrivals (for M/D/1 sanity checks)."""
    _validate(rate, num_requests)
    return (np.arange(num_requests, dtype=float) + 1.0) / rate


def piecewise_rate_arrivals(
    segments: "list[tuple[float, float]]",
    rng: np.random.Generator,
) -> np.ndarray:
    """Non-homogeneous Poisson arrivals with piecewise-constant rate.

    Real traffic varies over hours (§4.3's replanning premise); each
    ``(duration, rate)`` segment emits Poisson arrivals at its own rate.
    A zero-rate segment is a lull.

    Args:
        segments: Ordered ``(duration_seconds, rate)`` pairs.
        rng: Seeded generator.

    Returns:
        Sorted absolute arrival times across all segments.
    """
    if not segments:
        raise ValueError("segments must be non-empty")
    times: "list[float]" = []
    offset = 0.0
    for duration, rate in segments:
        if duration <= 0:
            raise ValueError(f"segment duration must be positive, got {duration}")
        if rate < 0:
            raise ValueError(f"segment rate must be >= 0, got {rate}")
        if rate > 0:
            t = offset
            while True:
                t += rng.exponential(scale=1.0 / rate)
                if t >= offset + duration:
                    break
                times.append(t)
        offset += duration
    return np.asarray(times, dtype=float)
