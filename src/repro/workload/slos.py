"""Service-level objectives for the paper's applications (Table 1).

Each application imposes a TTFT bound on the prefill phase and a TPOT
bound on the decoding phase. Figure 8's second row scales both bounds
simultaneously by an *SLO Scale* factor; :meth:`SLO.scaled` implements
that.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SLO", "WorkloadSpec", "TABLE1_WORKLOADS", "get_workload"]


@dataclass(frozen=True)
class SLO:
    """Latency objectives for one application.

    Attributes:
        ttft: Time-to-first-token bound, seconds.
        tpot: Time-per-output-token bound, seconds.
    """

    ttft: float
    tpot: float

    def __post_init__(self) -> None:
        if self.ttft <= 0 or self.tpot <= 0:
            raise ValueError(f"SLO bounds must be positive, got {self}")

    def scaled(self, scale: float) -> "SLO":
        """Both bounds multiplied by ``scale`` (<1 is more stringent)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return SLO(ttft=self.ttft * scale, tpot=self.tpot * scale)

    def is_met(self, ttft: float, tpot: float) -> bool:
        """Whether a request with the given latencies attains both SLOs."""
        return ttft <= self.ttft and tpot <= self.tpot


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 1: application, model, SLOs, dataset name."""

    application: str
    model_name: str
    slo: SLO
    dataset_name: str


TABLE1_WORKLOADS: "tuple[WorkloadSpec, ...]" = (
    WorkloadSpec("chatbot", "opt-13b", SLO(ttft=0.2, tpot=0.1), "sharegpt"),
    WorkloadSpec("chatbot", "opt-66b", SLO(ttft=0.4, tpot=0.1), "sharegpt"),
    WorkloadSpec("chatbot", "opt-175b", SLO(ttft=4.0, tpot=0.2), "sharegpt"),
    WorkloadSpec("code-completion", "opt-66b", SLO(ttft=0.125, tpot=0.2), "humaneval"),
    WorkloadSpec("summarization", "opt-66b", SLO(ttft=15.0, tpot=0.15), "longbench"),
)


def get_workload(application: str, model_name: str) -> WorkloadSpec:
    """Look up a Table 1 row by application and model name."""
    for spec in TABLE1_WORKLOADS:
        if spec.application == application and spec.model_name == model_name.lower():
            return spec
    known = ", ".join(f"({w.application}, {w.model_name})" for w in TABLE1_WORKLOADS)
    raise KeyError(
        f"no workload ({application!r}, {model_name!r}); known pairs: {known}"
    )
