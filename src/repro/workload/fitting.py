"""Trace fitting and resampling (the §4.1 / §4.3 workload profiler).

DistServe "fits a distribution from the history request traces and
resamples new traces from the distribution as the input workload to the
simulator". We fit each length marginal empirically (bootstrap) or as a
lognormal (method of moments in log space), estimate the arrival rate,
and resample fresh traces for placement search and replanning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datasets import SyntheticDataset, generate_trace
from .distributions import EmpiricalLength, LognormalLength
from .trace import Trace

__all__ = ["FittedWorkload", "fit_trace", "fit_lognormal"]


def fit_lognormal(lengths: "list[int]", low: int = 1, high: int = 32768) -> LognormalLength:
    """Method-of-moments lognormal fit in log space.

    Raises:
        ValueError: on fewer than 2 observations (sigma undefined).
    """
    if len(lengths) < 2:
        raise ValueError("need at least 2 observations to fit a lognormal")
    logs = np.log(np.asarray(lengths, dtype=float))
    sigma = float(logs.std(ddof=1))
    return LognormalLength(
        median=float(np.exp(logs.mean())),
        sigma=max(sigma, 1e-3),
        low=low,
        high=high,
    )


@dataclass(frozen=True)
class FittedWorkload:
    """A fitted model of an observed trace, ready to resample."""

    dataset: SyntheticDataset
    arrival_rate: float

    def resample(
        self, num_requests: int, rng: np.random.Generator, rate: "float | None" = None
    ) -> Trace:
        """Draw a fresh trace at the fitted (or overridden) arrival rate."""
        return generate_trace(
            self.dataset,
            rate=self.arrival_rate if rate is None else rate,
            num_requests=num_requests,
            rng=rng,
        )


def fit_trace(trace: Trace, method: str = "empirical") -> FittedWorkload:
    """Fit a generative workload model to an observed trace.

    Args:
        trace: Observed requests (needs >= 2 for a rate estimate).
        method: ``"empirical"`` bootstrap-resamples the observed lengths;
            ``"lognormal"`` fits parametric marginals.
    """
    if len(trace) < 2:
        raise ValueError("need at least 2 requests to fit a workload")
    inputs = [r.input_len for r in trace]
    outputs = [r.output_len for r in trace]
    if method == "empirical":
        input_dist = EmpiricalLength(tuple(inputs))
        output_dist = EmpiricalLength(tuple(outputs))
    elif method == "lognormal":
        input_dist = fit_lognormal(inputs)
        output_dist = fit_lognormal(outputs)
    else:
        raise ValueError(f"unknown method {method!r}; expected 'empirical' or 'lognormal'")
    dataset = SyntheticDataset(
        name=f"fitted-{method}", input_dist=input_dist, output_dist=output_dist
    )
    return FittedWorkload(dataset=dataset, arrival_rate=trace.arrival_rate)
