"""Request and trace containers shared by generators, engines, analysis.

A :class:`Request` is the static description of one query — when it
arrives, how many prompt tokens it carries, and how many tokens it will
generate. A :class:`Trace` is an arrival-ordered sequence of requests
with convenience statistics. The simulator consumes traces; the workload
profiler (§4.3 replanning) summarizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "Trace", "TraceStats"]


@dataclass(frozen=True)
class Request:
    """One LLM query.

    Attributes:
        request_id: Unique, monotonically increasing identifier.
        arrival_time: Seconds since trace start.
        input_len: Prompt tokens (prefill size).
        output_len: Tokens generated in the decoding phase (>= 1; the
            first output token is produced by prefill, the remaining
            ``output_len - 1`` by decode steps).
    """

    request_id: int
    arrival_time: float
    input_len: int
    output_len: int

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if self.input_len < 1:
            raise ValueError(f"input_len must be >= 1, got {self.input_len}")
        if self.output_len < 1:
            raise ValueError(f"output_len must be >= 1, got {self.output_len}")

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens — the final context length."""
        return self.input_len + self.output_len


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (the §4.3 workload profiler output)."""

    num_requests: int
    duration: float
    arrival_rate: float
    mean_input_len: float
    mean_output_len: float
    p90_input_len: float
    p90_output_len: float


@dataclass
class Trace:
    """An arrival-time-ordered sequence of requests."""

    requests: "list[Request]" = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [r.arrival_time for r in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            self.requests = sorted(self.requests, key=lambda r: r.arrival_time)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def __getitem__(self, idx: int) -> Request:
        return self.requests[idx]

    @property
    def duration(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.requests[-1].arrival_time if self.requests else 0.0

    @property
    def arrival_rate(self) -> float:
        """Average requests/second over the trace span."""
        if len(self.requests) <= 1 or self.duration == 0:
            return 0.0
        return (len(self.requests) - 1) / self.duration

    def stats(self) -> TraceStats:
        """Summarize the trace for profiling and replanning decisions."""
        if not self.requests:
            return TraceStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        inputs = np.array([r.input_len for r in self.requests], dtype=float)
        outputs = np.array([r.output_len for r in self.requests], dtype=float)
        return TraceStats(
            num_requests=len(self.requests),
            duration=self.duration,
            arrival_rate=self.arrival_rate,
            mean_input_len=float(inputs.mean()),
            mean_output_len=float(outputs.mean()),
            p90_input_len=float(np.percentile(inputs, 90)),
            p90_output_len=float(np.percentile(outputs, 90)),
        )

    def scaled_to_rate(self, target_rate: float) -> "Trace":
        """Return a copy whose arrival times are compressed/stretched so the
        average arrival rate equals ``target_rate`` (lengths unchanged).

        This is how rate sweeps reuse one sampled trace, keeping length
        draws fixed across rates for lower-variance comparisons.
        """
        if target_rate <= 0:
            raise ValueError(f"target_rate must be positive, got {target_rate}")
        current = self.arrival_rate
        if current == 0:
            raise ValueError("cannot rescale a trace with zero arrival rate")
        factor = current / target_rate
        return Trace(
            requests=[
                Request(
                    request_id=r.request_id,
                    arrival_time=r.arrival_time * factor,
                    input_len=r.input_len,
                    output_len=r.output_len,
                )
                for r in self.requests
            ]
        )

    def slice_time(self, start: float, end: float) -> "Trace":
        """Requests arriving in ``[start, end)``, times re-based to start."""
        if end < start:
            raise ValueError(f"end {end} < start {start}")
        picked = [
            Request(r.request_id, r.arrival_time - start, r.input_len, r.output_len)
            for r in self.requests
            if start <= r.arrival_time < end
        ]
        return Trace(requests=picked)
