"""Workload modeling: length distributions, datasets, arrivals, traces, SLOs."""

from .arrivals import (
    gamma_arrivals,
    piecewise_rate_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from .datasets import (
    DATASETS,
    HUMANEVAL,
    LONGBENCH,
    SHAREGPT,
    SyntheticDataset,
    fixed_length_dataset,
    generate_trace,
    get_dataset,
)
from .distributions import (
    EmpiricalLength,
    FixedLength,
    LengthDistribution,
    LognormalLength,
    MixtureLength,
    UniformLength,
)
from .fitting import FittedWorkload, fit_lognormal, fit_trace
from .slos import SLO, TABLE1_WORKLOADS, WorkloadSpec, get_workload
from .trace import Request, Trace, TraceStats

__all__ = [
    "gamma_arrivals",
    "piecewise_rate_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "DATASETS",
    "HUMANEVAL",
    "LONGBENCH",
    "SHAREGPT",
    "SyntheticDataset",
    "fixed_length_dataset",
    "generate_trace",
    "get_dataset",
    "EmpiricalLength",
    "FixedLength",
    "LengthDistribution",
    "LognormalLength",
    "MixtureLength",
    "UniformLength",
    "FittedWorkload",
    "fit_lognormal",
    "fit_trace",
    "SLO",
    "TABLE1_WORKLOADS",
    "WorkloadSpec",
    "get_workload",
    "Request",
    "Trace",
    "TraceStats",
]
