"""Latency breakdown across the five lifecycle stages (§6.3, Figure 10).

"We divide the processing lifecycle of a request in DistServe into five
stages: prefill queuing, prefill execution, transmission, decoding
queuing, and decoding execution. The total time consumed by all requests
in each stage is then summed up to determine their respective
proportions in the system's total execution time."

Two derivations are offered: :func:`latency_breakdown` sums the stage
scalars of :class:`~repro.simulator.request.RequestRecord` (timestamps
reconstructed at completion), while :func:`request_breakdowns` /
:func:`latency_breakdown_from_spans` read the ground-truth span timeline
emitted by :class:`~repro.simulator.tracing.Tracer` — queue, exec, and
transfer stages come from the actual spans, and decode execution is the
residual up to the completion event, so the five stages always sum to
the end-to-end latency exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..simulator.request import RequestRecord
from ..simulator.tracing import Span, SpanKind, spans_by_request

__all__ = [
    "LatencyBreakdown",
    "latency_breakdown",
    "STAGES",
    "RequestSpanBreakdown",
    "request_breakdowns",
    "latency_breakdown_from_spans",
]

STAGES = (
    "prefill_queue",
    "prefill_exec",
    "transfer",
    "decode_queue",
    "decode_exec",
)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Aggregate seconds spent in each stage, plus fraction helpers."""

    prefill_queue: float
    prefill_exec: float
    transfer: float
    decode_queue: float
    decode_exec: float

    @property
    def total(self) -> float:
        return (
            self.prefill_queue
            + self.prefill_exec
            + self.transfer
            + self.decode_queue
            + self.decode_exec
        )

    def fractions(self) -> "dict[str, float]":
        """Stage proportions of total lifecycle time (Figure 10a)."""
        total = self.total
        if total == 0:
            return {stage: 0.0 for stage in STAGES}
        return {
            "prefill_queue": self.prefill_queue / total,
            "prefill_exec": self.prefill_exec / total,
            "transfer": self.transfer / total,
            "decode_queue": self.decode_queue / total,
            "decode_exec": self.decode_exec / total,
        }


def latency_breakdown(records: "list[RequestRecord]") -> LatencyBreakdown:
    """Sum each stage's time over all requests (the Figure 10a statistic)."""
    return LatencyBreakdown(
        prefill_queue=math.fsum(r.prefill_queue_time for r in records),
        prefill_exec=math.fsum(r.prefill_exec_time for r in records),
        transfer=math.fsum(r.transfer_time for r in records),
        decode_queue=math.fsum(r.decode_queue_time for r in records),
        decode_exec=math.fsum(r.decode_exec_time for r in records),
    )


@dataclass(frozen=True)
class RequestSpanBreakdown:
    """One request's five-stage breakdown derived from its real spans.

    ``decode_exec`` is the residual between the end-to-end latency and
    the other four stages, so the stage sum reconciles with
    ``completion - arrival`` exactly (up to float rounding the residual
    absorbs; it is clamped at zero).
    """

    request_id: int
    arrival_time: float
    completion_time: float
    prefill_queue: float
    prefill_exec: float
    transfer: float
    decode_queue: float
    decode_exec: float

    @property
    def end_to_end_latency(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def stage_sum(self) -> float:
        return (
            self.prefill_queue
            + self.prefill_exec
            + self.transfer
            + self.decode_queue
            + self.decode_exec
        )


def request_breakdowns(spans: "list[Span]") -> "list[RequestSpanBreakdown]":
    """Per-request stage breakdowns from a span timeline.

    Only requests with both an ``arrival`` and a ``completion`` span are
    included (requests still in flight at simulation cutoff have no
    complete lifecycle to break down). Results are ordered by completion
    then request id — the order analysis code sees records in.
    """
    out: "list[RequestSpanBreakdown]" = []
    for request_id, request_spans in spans_by_request(spans).items():
        arrival = completion = None
        sums = {
            SpanKind.PREFILL_QUEUE: 0.0,
            SpanKind.PREFILL_EXEC: 0.0,
            SpanKind.KV_TRANSFER: 0.0,
            SpanKind.DECODE_QUEUE: 0.0,
        }
        for span in request_spans:
            if span.kind == SpanKind.ARRIVAL:
                arrival = span.start
            elif span.kind == SpanKind.COMPLETION:
                completion = span.end
            elif span.kind in sums:
                sums[span.kind] += span.duration
        if arrival is None or completion is None:
            continue
        e2e = completion - arrival
        covered = math.fsum(sums.values())
        out.append(
            RequestSpanBreakdown(
                request_id=request_id,
                arrival_time=arrival,
                completion_time=completion,
                prefill_queue=sums[SpanKind.PREFILL_QUEUE],
                prefill_exec=sums[SpanKind.PREFILL_EXEC],
                transfer=sums[SpanKind.KV_TRANSFER],
                decode_queue=sums[SpanKind.DECODE_QUEUE],
                decode_exec=max(0.0, e2e - covered),
            )
        )
    out.sort(key=lambda b: (b.completion_time, b.request_id))
    return out


def latency_breakdown_from_spans(spans: "list[Span]") -> LatencyBreakdown:
    """Figure 10a's statistic computed from the real span timeline."""
    breakdowns = request_breakdowns(spans)
    return LatencyBreakdown(
        prefill_queue=math.fsum(b.prefill_queue for b in breakdowns),
        prefill_exec=math.fsum(b.prefill_exec for b in breakdowns),
        transfer=math.fsum(b.transfer for b in breakdowns),
        decode_queue=math.fsum(b.decode_queue for b in breakdowns),
        decode_exec=math.fsum(b.decode_exec for b in breakdowns),
    )
