"""Latency breakdown across the five lifecycle stages (§6.3, Figure 10).

"We divide the processing lifecycle of a request in DistServe into five
stages: prefill queuing, prefill execution, transmission, decoding
queuing, and decoding execution. The total time consumed by all requests
in each stage is then summed up to determine their respective
proportions in the system's total execution time."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.request import RequestRecord

__all__ = ["LatencyBreakdown", "latency_breakdown", "STAGES"]

STAGES = (
    "prefill_queue",
    "prefill_exec",
    "transfer",
    "decode_queue",
    "decode_exec",
)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Aggregate seconds spent in each stage, plus fraction helpers."""

    prefill_queue: float
    prefill_exec: float
    transfer: float
    decode_queue: float
    decode_exec: float

    @property
    def total(self) -> float:
        return (
            self.prefill_queue
            + self.prefill_exec
            + self.transfer
            + self.decode_queue
            + self.decode_exec
        )

    def fractions(self) -> "dict[str, float]":
        """Stage proportions of total lifecycle time (Figure 10a)."""
        total = self.total
        if total == 0:
            return {stage: 0.0 for stage in STAGES}
        return {
            "prefill_queue": self.prefill_queue / total,
            "prefill_exec": self.prefill_exec / total,
            "transfer": self.transfer / total,
            "decode_queue": self.decode_queue / total,
            "decode_exec": self.decode_exec / total,
        }


def latency_breakdown(records: "list[RequestRecord]") -> LatencyBreakdown:
    """Sum each stage's time over all requests (the Figure 10a statistic)."""
    return LatencyBreakdown(
        prefill_queue=sum(r.prefill_queue_time for r in records),
        prefill_exec=sum(r.prefill_exec_time for r in records),
        transfer=sum(r.transfer_time for r in records),
        decode_queue=sum(r.decode_queue_time for r in records),
        decode_exec=sum(r.decode_exec_time for r in records),
    )
