"""Analysis: SLO attainment, percentiles, breakdowns, report tables."""

from .breakdown import (
    STAGES,
    LatencyBreakdown,
    RequestSpanBreakdown,
    latency_breakdown,
    latency_breakdown_from_spans,
    request_breakdowns,
)
from .critpath import (
    PHASES,
    TTFT_PHASES,
    RequestCriticalPath,
    build_profile,
    critical_paths,
    diff_profiles,
    format_profile,
    format_profile_diff,
    profile_to_html,
    profile_to_json,
)
from .fidelity import FidelityReport, compare_runs
from .metrics_export import (
    phase_utilization,
    registry_snapshot,
    to_prometheus_text,
    write_metrics_json,
    write_prometheus_text,
)
from .percentiles import cdf_points, latency_summary, tpot_percentile, ttft_percentile
from .reporting import format_series, format_table
from .slo import AttainmentReport, slo_attainment

__all__ = [
    "STAGES",
    "LatencyBreakdown",
    "RequestSpanBreakdown",
    "latency_breakdown",
    "latency_breakdown_from_spans",
    "request_breakdowns",
    "PHASES",
    "TTFT_PHASES",
    "RequestCriticalPath",
    "build_profile",
    "critical_paths",
    "diff_profiles",
    "format_profile",
    "format_profile_diff",
    "profile_to_html",
    "profile_to_json",
    "FidelityReport",
    "compare_runs",
    "phase_utilization",
    "registry_snapshot",
    "to_prometheus_text",
    "write_metrics_json",
    "write_prometheus_text",
    "cdf_points",
    "latency_summary",
    "tpot_percentile",
    "ttft_percentile",
    "format_series",
    "format_table",
    "AttainmentReport",
    "slo_attainment",
]
