"""Deterministic exporters for the metrics registry.

Two wire formats over one :class:`~repro.simulator.metrics.MetricsRegistry`:

* **Prometheus text exposition** (:func:`to_prometheus_text`) — the
  format every production serving stack scrapes (the vLLM
  production-stack ships exactly this layer in front of Grafana). The
  output is *byte-deterministic* for a fixed seed: families sort by
  name, children by label values, floats render via ``repr``, and no
  wall-clock timestamps are emitted. CI diffs two same-seed exports
  byte-for-byte to pin this down.
* **JSON snapshot** (:func:`registry_snapshot` / :func:`write_metrics_json`)
  — the same data as a nested dict for notebooks and report tooling.

Plus :func:`phase_utilization`, the small aggregation benchmarks use to
report per-phase busy fractions alongside goodput.
"""

from __future__ import annotations

import json
import math

from ..simulator.metrics import Histogram, MetricFamily, MetricsRegistry

__all__ = [
    "to_prometheus_text",
    "write_prometheus_text",
    "registry_snapshot",
    "write_metrics_json",
    "phase_utilization",
]


def _format_value(value: float) -> str:
    """Canonical Prometheus number rendering (deterministic)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames, labelvalues, extra: "tuple[str, str] | None" = None) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _family_lines(family: MetricFamily) -> "list[str]":
    lines = []
    if family.help:
        lines.append(f"# HELP {family.name} {family.help}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labelvalues in sorted(family.children):
        metric = family.children[labelvalues]
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.bounds, cumulative):
                le = _format_labels(
                    family.labelnames, labelvalues, extra=("le", _format_value(bound))
                )
                lines.append(f"{family.name}_bucket{le} {count}")
            inf = _format_labels(family.labelnames, labelvalues, extra=("le", "+Inf"))
            lines.append(f"{family.name}_bucket{inf} {metric.count}")
            plain = _format_labels(family.labelnames, labelvalues)
            lines.append(f"{family.name}_sum{plain} {_format_value(metric.sum)}")
            lines.append(f"{family.name}_count{plain} {metric.count}")
        else:
            labels = _format_labels(family.labelnames, labelvalues)
            lines.append(f"{family.name}{labels} {_format_value(metric.value)}")
    return lines


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Byte-identical across runs of the same seeded workload: ordering is
    fully sorted and values render canonically with no timestamps.
    """
    lines: "list[str]" = []
    for family in registry.families():
        lines.extend(_family_lines(family))
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus_text(path: str, registry: MetricsRegistry) -> None:
    """Write :func:`to_prometheus_text` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_prometheus_text(registry))


def registry_snapshot(registry: MetricsRegistry) -> dict:
    """The registry as a JSON-ready nested dict (sorted, deterministic)."""
    out: dict = {}
    for family in registry.families():
        samples = []
        for labelvalues in sorted(family.children):
            metric = family.children[labelvalues]
            labels = dict(zip(family.labelnames, labelvalues))
            if isinstance(metric, Histogram):
                samples.append(
                    {
                        "labels": labels,
                        "buckets": {
                            _format_value(b): c
                            for b, c in zip(metric.bounds, metric.cumulative_counts())
                        },
                        "count": metric.count,
                        "sum": metric.sum,
                    }
                )
            else:
                samples.append({"labels": labels, "value": metric.value})
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "samples": samples,
        }
    return out


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    """Write :func:`registry_snapshot` as pretty-printed, sorted JSON."""
    with open(path, "w") as fh:
        json.dump(registry_snapshot(registry), fh, indent=2, sort_keys=True)
        fh.write("\n")


def phase_utilization(registry: MetricsRegistry) -> "dict[str, float]":
    """Mean busy fraction per phase from the ``repro_utilization`` gauges.

    Keys are the ``phase`` label values present (``prefill``, ``decode``,
    ``colocated``); an uninstrumented registry yields ``{}``. Benchmarks
    report this next to goodput so over- and under-provisioned phases
    are visible at a glance.
    """
    if "repro_utilization" not in registry:
        return {}
    sums: "dict[str, list[float]]" = {}
    for family in registry.families():
        if family.name != "repro_utilization":
            continue
        phase_idx = family.labelnames.index("phase")
        for labelvalues, metric in family.children.items():
            sums.setdefault(labelvalues[phase_idx], []).append(metric.value)
    return {
        phase: sum(values) / len(values)
        for phase, values in sorted(sums.items())
    }
