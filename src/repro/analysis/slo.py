"""SLO-attainment computation — the paper's primary metric (§6.1).

"Under a specific SLO attainment goal (say, 90%), we are concerned with
two things: the maximum per-GPU goodput and the minimal SLO the system
can handle." This module computes attainment (total, TTFT-only, and
TPOT-only, matching the dotted/dashed curves of Figure 8) from request
records; the goodput search lives in :mod:`repro.core.goodput`.

The *online* counterpart is :class:`repro.simulator.metrics.SloMonitor`,
which maintains the same quantities in a sliding window as requests
complete; its cumulative snapshot matches this offline computation
exactly for the same records (same ``<=`` comparisons, same counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.request import RequestRecord
from ..workload.slos import SLO

__all__ = ["AttainmentReport", "slo_attainment"]


@dataclass(frozen=True)
class AttainmentReport:
    """Fractions of requests meeting the latency objectives.

    Attributes:
        total: Fraction meeting *both* TTFT and TPOT SLOs.
        ttft_only: Fraction meeting the TTFT SLO (regardless of TPOT) —
            the dotted curve in Figure 8.
        tpot_only: Fraction meeting the TPOT SLO — the dashed curve.
        num_requests: Records evaluated (unfinished requests count as
            violations when ``num_expected`` exceeds it).
    """

    total: float
    ttft_only: float
    tpot_only: float
    num_requests: int

    def __post_init__(self) -> None:
        for name in ("total", "ttft_only", "tpot_only"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def slo_attainment(
    records: "list[RequestRecord]",
    slo: SLO,
    num_expected: "int | None" = None,
) -> AttainmentReport:
    """Compute SLO attainment over a set of request records.

    Args:
        records: Finished-request records.
        slo: The TTFT/TPOT objectives.
        num_expected: Total requests offered; any shortfall (requests
            that never finished) is counted as violating both SLOs —
            a stalled system must not score well.
    """
    denom = num_expected if num_expected is not None else len(records)
    if denom < len(records):
        raise ValueError(
            f"num_expected {denom} < number of records {len(records)}"
        )
    if denom == 0:
        return AttainmentReport(1.0, 1.0, 1.0, 0)
    both = sum(1 for r in records if r.ttft <= slo.ttft and r.tpot <= slo.tpot)
    ttft = sum(1 for r in records if r.ttft <= slo.ttft)
    tpot = sum(1 for r in records if r.tpot <= slo.tpot)
    return AttainmentReport(
        total=both / denom,
        ttft_only=ttft / denom,
        tpot_only=tpot / denom,
        num_requests=len(records),
    )
