"""Fidelity metrics: how closely does the simulator track a real system?

Table 2's methodology as a library: given the per-request records of
two runs over the *same* trace (e.g. the deterministic simulator vs a
jittered/noisy "real" execution), compute attainment error and
per-request latency agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .slo import slo_attainment
from ..simulator.request import RequestRecord
from ..workload.slos import SLO

__all__ = ["FidelityReport", "compare_runs"]


@dataclass(frozen=True)
class FidelityReport:
    """Agreement between a reference run and a simulated run.

    Attributes:
        attainment_error: |attainment(reference) - attainment(simulated)|
            — the Table 2 statistic.
        ttft_mean_rel_error: Relative error of mean TTFT.
        tpot_mean_rel_error: Relative error of mean TPOT.
        matched_requests: Requests present in both runs.
    """

    attainment_error: float
    ttft_mean_rel_error: float
    tpot_mean_rel_error: float
    matched_requests: int


def compare_runs(
    reference: "list[RequestRecord]",
    simulated: "list[RequestRecord]",
    slo: SLO,
    num_expected: "int | None" = None,
) -> FidelityReport:
    """Compare two runs of the same trace.

    Raises:
        ValueError: if the runs share no requests.
    """
    ref_by_id = {r.request_id: r for r in reference}
    sim_by_id = {r.request_id: r for r in simulated}
    common = sorted(set(ref_by_id) & set(sim_by_id))
    if not common:
        raise ValueError("the two runs share no request ids")

    att_ref = slo_attainment(reference, slo, num_expected=num_expected).total
    att_sim = slo_attainment(simulated, slo, num_expected=num_expected).total

    ref_ttft = np.array([ref_by_id[i].ttft for i in common])
    sim_ttft = np.array([sim_by_id[i].ttft for i in common])
    ref_tpot = np.array([ref_by_id[i].tpot for i in common])
    sim_tpot = np.array([sim_by_id[i].tpot for i in common])

    def rel_err(ref: np.ndarray, sim: np.ndarray) -> float:
        denom = float(ref.mean())
        if denom == 0:
            return 0.0 if float(sim.mean()) == 0 else float("inf")
        return abs(float(sim.mean()) - denom) / denom

    return FidelityReport(
        attainment_error=abs(att_ref - att_sim),
        ttft_mean_rel_error=rel_err(ref_ttft, sim_ttft),
        tpot_mean_rel_error=rel_err(ref_tpot, sim_tpot),
        matched_requests=len(common),
    )
