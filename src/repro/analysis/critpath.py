"""Critical-path decomposition, utilization timelines, and run diffing.

The tracing layer records *what happened* to each request; the metrics
layer records *how the cluster is doing*; this module answers *why*: it
decomposes each completed request's end-to-end latency into the phases a
goodput engineer can act on — dispatch, prefill queueing, prefill
execution, KV-transfer wait vs transmit, decode queueing, decode
execution — and attributes cluster time per instance to busy / idle /
blocked-on-transfer, the accounting behind Figure 10 and §3.1's
interference argument.

Three layers of machinery:

* :func:`critical_paths` — per-request decomposition from the span
  stream (plus the profiler's transfer events when available, which
  split the KV-transfer span into link *wait* vs wire *transmit*).
  Decode execution is the residual against end-to-end latency, so the
  ``math.fsum`` of all phases reconciles with ``completion - arrival``
  to within 1e-9 — a property test enforces this.
* :func:`build_profile` — the full deterministic report: aggregate
  phase totals, TTFT/TPOT distributions with per-phase TTFT breakdown,
  inter-token gap statistics, per-instance utilization timelines and
  batch-occupancy histograms (from the
  :class:`~repro.simulator.profiler.Profiler` event streams), and the
  colocated-mode interference attribution (prefill iterations that ran
  while decodes were mid-generation on the same replica).
* :func:`diff_profiles` — the differential comparator: aligns two
  same-seed runs by request id and attributes the TTFT / TPOT / e2e
  deltas to phase-level shifts, the "why is B slower than A" answer.

Everything is computed with sorted iteration orders and ``fsum``
accumulation, so a fixed-seed run renders byte-identical reports —
pinned by a golden fixture and a CI double-run diff.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from html import escape
from typing import Any

from ..simulator.profiler import Profiler
from ..simulator.tracing import Span, SpanKind, spans_by_request

__all__ = [
    "PHASES",
    "TTFT_PHASES",
    "PROFILE_SCHEMA",
    "PROFILE_DIFF_SCHEMA",
    "RequestCriticalPath",
    "critical_paths",
    "build_profile",
    "diff_profiles",
    "profile_to_json",
    "format_profile",
    "format_profile_diff",
    "profile_to_html",
]

#: Critical-path phases, in lifecycle order. ``decode_exec`` is the
#: residual against end-to-end latency, so the phases always reconcile.
PHASES = (
    "dispatch",
    "prefill_queue",
    "prefill_exec",
    "kv_wait",
    "kv_transmit",
    "decode_queue",
    "decode_exec",
)

#: TTFT decomposition phases. ``ttft_other`` is the residual within the
#: arrival→first-token window not covered by the named phases.
TTFT_PHASES = ("dispatch", "prefill_queue", "prefill_exec", "ttft_other")

PROFILE_SCHEMA = "repro-profile/1"
PROFILE_DIFF_SCHEMA = "repro-profile-diff/1"

_TTFT_WINDOW_KINDS = (SpanKind.PREFILL_QUEUE, SpanKind.PREFILL_EXEC)


@dataclass(frozen=True)
class RequestCriticalPath:
    """One completed request's critical-path decomposition.

    ``fsum(phases aligned with PHASES)`` equals
    ``completion_time - arrival_time`` to within 1e-9 by construction:
    ``decode_exec`` absorbs the residual (and the tracked phases never
    overlap, so the residual is nonnegative up to float rounding).
    """

    request_id: int
    arrival_time: float
    first_token_time: float
    completion_time: float
    dispatch: float
    prefill_queue: float
    prefill_exec: float
    kv_wait: float
    kv_transmit: float
    decode_queue: float
    decode_exec: float
    #: TTFT decomposition aligned with :data:`TTFT_PHASES`.
    ttft_breakdown: "tuple[float, ...]"
    #: Inter-token gaps (seconds between consecutive token completions).
    token_gaps: "tuple[float, ...]"

    @property
    def end_to_end_latency(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def ttft(self) -> float:
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        if not self.token_gaps:
            return 0.0
        return (self.completion_time - self.first_token_time) / len(self.token_gaps)

    def phase_values(self) -> "tuple[float, ...]":
        """Phase durations aligned with :data:`PHASES`."""
        return (
            self.dispatch,
            self.prefill_queue,
            self.prefill_exec,
            self.kv_wait,
            self.kv_transmit,
            self.decode_queue,
            self.decode_exec,
        )

    @property
    def phase_sum(self) -> float:
        """Exact (fsum) total of all phases; reconciles with e2e latency."""
        return math.fsum(self.phase_values())


def _clip(start: float, end: float, lo: float, hi: float) -> float:
    """Length of ``[start, end] ∩ [lo, hi]``."""
    return max(0.0, min(end, hi) - max(start, lo))


def critical_paths(
    spans: "list[Span]",
    transfer_events: "list[tuple[int, float, float, float]] | None" = None,
) -> "list[RequestCriticalPath]":
    """Decompose every completed request's latency into its phases.

    Args:
        spans: The tracer's span stream (any order).
        transfer_events: The profiler's ``(request_id, submitted, start,
            end)`` stream; when given, the KV-transfer span splits into
            link-queue *wait* and wire *transmit*. Without it the whole
            span counts as transmit.

    Only requests with both ``arrival`` and ``completion`` spans are
    decomposed. Results are sorted by request id.
    """
    wire_time: "dict[int, float]" = {}
    if transfer_events:
        for request_id, _submitted, start, end in transfer_events:
            wire_time[request_id] = wire_time.get(request_id, 0.0) + (end - start)

    out: "list[RequestCriticalPath]" = []
    for request_id, request_spans in spans_by_request(spans).items():
        arrival = completion = None
        first_start: "float | None" = None
        queue_total = exec_total = kv_total = dq_total = 0.0
        token_ends: "list[tuple[int, float]]" = []
        window_spans: "list[tuple[str, float, float]]" = []
        for span in request_spans:
            if span.kind == SpanKind.ARRIVAL:
                arrival = span.start
                continue
            if span.kind == SpanKind.COMPLETION:
                completion = span.end
                continue
            if span.kind in SpanKind.INSTANT:
                continue
            if first_start is None or span.start < first_start:
                first_start = span.start
            if span.kind == SpanKind.PREFILL_QUEUE:
                queue_total += span.duration
            elif span.kind == SpanKind.PREFILL_EXEC:
                exec_total += span.duration
            elif span.kind == SpanKind.KV_TRANSFER:
                kv_total += span.duration
            elif span.kind == SpanKind.DECODE_QUEUE:
                dq_total += span.duration
            elif span.kind == SpanKind.DECODE_STEP:
                index = span.token_index if span.token_index is not None else -1
                token_ends.append((index, span.end))
            if span.kind in _TTFT_WINDOW_KINDS:
                window_spans.append((span.kind, span.start, span.end))
        if arrival is None or completion is None or not token_ends:
            continue
        token_ends.sort()
        first_token = token_ends[0][1]
        gaps: "list[float]" = []
        for i in range(1, len(token_ends)):
            gaps.append(token_ends[i][1] - token_ends[i - 1][1])

        dispatch = max(0.0, (first_start if first_start is not None else arrival) - arrival)
        transmit_raw = wire_time.get(request_id)
        if transmit_raw is None:
            kv_wait, kv_transmit = 0.0, kv_total
        else:
            kv_wait = max(0.0, kv_total - transmit_raw)
            kv_transmit = kv_total - kv_wait
        covered = math.fsum(
            (dispatch, queue_total, exec_total, kv_wait, kv_transmit, dq_total)
        )
        decode_exec = max(0.0, (completion - arrival) - covered)

        # TTFT decomposition: clip the queue/exec spans to the
        # arrival→first-token window; the residual is whatever else the
        # window contains (zero in the current systems, where the first
        # token is emitted at prefill completion).
        ttft = first_token - arrival
        pq_window = pe_window = 0.0
        for kind, start, end in window_spans:
            part = _clip(start, end, arrival, first_token)
            if kind == SpanKind.PREFILL_QUEUE:
                pq_window += part
            else:
                pe_window += part
        dispatch_window = min(dispatch, ttft)
        ttft_other = ttft - math.fsum((dispatch_window, pq_window, pe_window))
        out.append(
            RequestCriticalPath(
                request_id=request_id,
                arrival_time=arrival,
                first_token_time=first_token,
                completion_time=completion,
                dispatch=dispatch,
                prefill_queue=queue_total,
                prefill_exec=exec_total,
                kv_wait=kv_wait,
                kv_transmit=kv_transmit,
                decode_queue=dq_total,
                decode_exec=decode_exec,
                ttft_breakdown=(dispatch_window, pq_window, pe_window, ttft_other),
                token_gaps=tuple(gaps),
            )
        )
    out.sort(key=lambda path: path.request_id)
    return out


# ----------------------------------------------------------------------
# Interval arithmetic (for utilization unions and interference overlap).
# ----------------------------------------------------------------------
def _merge(intervals: "list[tuple[float, float]]") -> "list[tuple[float, float]]":
    """Merge possibly-overlapping intervals into a disjoint sorted union."""
    merged: "list[tuple[float, float]]" = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _measure(merged: "list[tuple[float, float]]") -> float:
    return math.fsum(end - start for start, end in merged)


def _overlap(
    a: "list[tuple[float, float]]", b: "list[tuple[float, float]]"
) -> float:
    """Total overlap between two disjoint sorted interval unions."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _pct(sorted_values: "list[float]", q: float) -> float:
    """Linear-interpolated percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    pos = (len(sorted_values) - 1) * q
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_values[int(pos)]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _dist(values: "list[float]") -> "dict[str, float]":
    ordered = sorted(values)
    n = len(ordered)
    return {
        "mean": math.fsum(ordered) / n if n else 0.0,
        "p50": _pct(ordered, 0.50),
        "p99": _pct(ordered, 0.99),
        "max": ordered[-1] if n else 0.0,
    }


def _utilization(
    profiler: Profiler, sim_time: float
) -> "dict[str, dict[str, Any]]":
    """Per-instance busy/idle/blocked fractions and occupancy histograms."""
    exec_by_inst: "dict[str, list[tuple[float, float]]]" = {}
    phase_seconds: "dict[str, dict[str, float]]" = {}
    occupancy: "dict[str, dict[str, float]]" = {}
    tokens: "dict[str, int]" = {}
    for instance, phase, start, end, batch_size, ntokens in profiler.exec_events:
        exec_by_inst.setdefault(instance, []).append((start, end))
        inst_phases = phase_seconds.setdefault(instance, {})
        inst_phases[phase] = inst_phases.get(phase, 0.0) + (end - start)
        inst_occ = occupancy.setdefault(instance, {})
        key = str(batch_size)
        inst_occ[key] = inst_occ.get(key, 0.0) + (end - start)
        tokens[instance] = tokens.get(instance, 0) + ntokens
    pending_by_inst: "dict[str, list[tuple[float, float]]]" = {}
    for instance, start, end in profiler.pending_events:
        pending_by_inst.setdefault(instance, []).append((start, end))

    out: "dict[str, dict[str, Any]]" = {}
    for instance in profiler.instances():
        busy_union = _merge(exec_by_inst.get(instance, []))
        busy = _measure(busy_union)
        pending_union = _merge(pending_by_inst.get(instance, []))
        # Blocked-on-transfer counts only where the instance was not
        # also executing: overlap with busy time is attributed to busy.
        blocked = _measure(pending_union) - _overlap(pending_union, busy_union)
        denom = sim_time if sim_time > 0 else 1.0
        busy_frac = min(1.0, busy / denom)
        blocked_frac = max(0.0, min(1.0 - busy_frac, blocked / denom))
        out[instance] = {
            "busy_frac": busy_frac,
            "blocked_on_transfer_frac": blocked_frac,
            "idle_frac": max(0.0, 1.0 - busy_frac - blocked_frac),
            "exec_seconds": math.fsum(
                seconds for _phase, seconds in sorted(
                    phase_seconds.get(instance, {}).items()
                )
            ),
            "phase_seconds": dict(sorted(phase_seconds.get(instance, {}).items())),
            "batch_occupancy": dict(
                sorted(occupancy.get(instance, {}).items(), key=lambda kv: int(kv[0]))
            ),
            "tokens": tokens.get(instance, 0),
        }
    return out


def _interference(spans: "list[Span]", sim_time: float) -> "dict[str, dict[str, float]]":
    """Prefill-vs-decode contention per instance (colocated mode).

    An instance's *decode-active* union covers, per request it decoded,
    the window from first to last token; its contended seconds are the
    prefill-execution intervals falling inside that union — iterations
    that made mid-generation requests wait for their next token (§3.1).
    Disaggregated instances score zero by construction (no instance both
    prefills and decodes).
    """
    prefill_by_inst: "dict[str, list[tuple[float, float]]]" = {}
    decode_window: "dict[str, dict[int, tuple[float, float]]]" = {}
    for span in spans:
        if span.instance is None:
            continue
        if span.kind == SpanKind.PREFILL_EXEC:
            prefill_by_inst.setdefault(span.instance, []).append(
                (span.start, span.end)
            )
        elif span.kind == SpanKind.DECODE_STEP:
            windows = decode_window.setdefault(span.instance, {})
            known = windows.get(span.request_id)
            if known is None:
                windows[span.request_id] = (span.end, span.end)
            else:
                windows[span.request_id] = (
                    min(known[0], span.end), max(known[1], span.end)
                )
    out: "dict[str, dict[str, float]]" = {}
    for instance in sorted(set(prefill_by_inst) | set(decode_window)):
        prefill_union = _merge(prefill_by_inst.get(instance, []))
        active_union = _merge(
            [window for _rid, window in sorted(decode_window.get(instance, {}).items())]
        )
        prefill_seconds = _measure(prefill_union)
        contended = _overlap(prefill_union, active_union)
        out[instance] = {
            "prefill_exec_seconds": prefill_seconds,
            "decode_active_seconds": _measure(active_union),
            "contended_seconds": contended,
            "contended_frac": contended / prefill_seconds if prefill_seconds > 0 else 0.0,
        }
    return out


def build_profile(
    spans: "list[Span]",
    profiler: "Profiler | None" = None,
    sim_time: "float | None" = None,
    slo: "tuple[float, float] | None" = None,
    meta: "dict[str, Any] | None" = None,
    num_gpus: int = 0,
) -> "dict[str, Any]":
    """Build the full deterministic profile report.

    Args:
        spans: Tracer span stream of the run.
        profiler: Profiler attached to the run (enables the KV wait/
            transmit split, utilization timelines, and occupancy
            histograms; the span-only sections degrade gracefully).
        sim_time: Virtual duration of the run (defaults to the latest
            span end).
        slo: Optional ``(ttft_slo, tpot_slo)`` pair; adds attainment and
            goodput accounting.
        meta: Caller-provided run description embedded verbatim (mode,
            seed, rate, ...) — the diff comparator displays it.
        num_gpus: Provisioned GPUs, for per-GPU goodput.
    """
    if sim_time is None:
        sim_time = max((span.end for span in spans), default=0.0)
    paths = critical_paths(
        spans, transfer_events=profiler.transfer_events if profiler else None
    )

    phase_totals = {name: 0.0 for name in PHASES}
    per_request: "list[dict[str, Any]]" = []
    ttfts: "list[float]" = []
    tpots: "list[float]" = []
    e2es: "list[float]" = []
    all_gaps: "list[float]" = []
    ttft_bd_totals = [0.0, 0.0, 0.0, 0.0]
    for path in paths:
        values = path.phase_values()
        for name, value in zip(PHASES, values):
            phase_totals[name] += value
        for i, value in enumerate(path.ttft_breakdown):
            ttft_bd_totals[i] += value
        ttfts.append(path.ttft)
        tpots.append(path.tpot)
        e2es.append(path.end_to_end_latency)
        all_gaps.extend(path.token_gaps)
        per_request.append(
            {
                "id": path.request_id,
                "arrival": path.arrival_time,
                "first_token": path.first_token_time,
                "completion": path.completion_time,
                "e2e": path.end_to_end_latency,
                "ttft": path.ttft,
                "tpot": path.tpot,
                "tokens": len(path.token_gaps) + 1,
                "max_gap": max(path.token_gaps) if path.token_gaps else 0.0,
                "phases": {name: value for name, value in zip(PHASES, values)},
                "ttft_breakdown": {
                    name: value
                    for name, value in zip(TTFT_PHASES, path.ttft_breakdown)
                },
            }
        )

    n = len(paths)
    grand_total = math.fsum(phase_totals.values())
    phases_report = {}
    for name in PHASES:
        total = phase_totals[name]
        phases_report[name] = {
            "total": total,
            "mean": total / n if n else 0.0,
            "fraction": total / grand_total if grand_total > 0 else 0.0,
        }

    slo_report: "dict[str, Any] | None" = None
    if slo is not None:
        ttft_slo, tpot_slo = slo
        ok_ttft = ok_tpot = ok_both = 0
        for path in paths:
            hit_ttft = path.ttft <= ttft_slo
            hit_tpot = path.tpot <= tpot_slo
            ok_ttft += hit_ttft
            ok_tpot += hit_tpot
            ok_both += hit_ttft and hit_tpot
        goodput = ok_both / sim_time if sim_time > 0 else 0.0
        slo_report = {
            "ttft_slo": ttft_slo,
            "tpot_slo": tpot_slo,
            "attainment": ok_both / n if n else 0.0,
            "attainment_ttft": ok_ttft / n if n else 0.0,
            "attainment_tpot": ok_tpot / n if n else 0.0,
            "goodput_rps": goodput,
            "goodput_per_gpu": goodput / num_gpus if num_gpus > 0 else 0.0,
        }

    return {
        "schema": PROFILE_SCHEMA,
        "meta": dict(meta or {}),
        "summary": {
            "completed": n,
            "sim_time": sim_time,
            "num_gpus": num_gpus,
            "spans": len(spans),
            "exec_events": len(profiler.exec_events) if profiler else 0,
            "transfer_events": len(profiler.transfer_events) if profiler else 0,
        },
        "phases": phases_report,
        "ttft": {
            **_dist(ttfts),
            "breakdown_mean": {
                name: total / n if n else 0.0
                for name, total in zip(TTFT_PHASES, ttft_bd_totals)
            },
        },
        "tpot": _dist(tpots),
        "e2e": _dist(e2es),
        "token_gaps": {"count": len(all_gaps), **_dist(all_gaps)},
        "slo": slo_report,
        "utilization": _utilization(profiler, sim_time) if profiler else {},
        "interference": _interference(spans, sim_time),
        "per_request": per_request,
    }


# ----------------------------------------------------------------------
# Differential comparison.
# ----------------------------------------------------------------------
def diff_profiles(a: "dict[str, Any]", b: "dict[str, Any]") -> "dict[str, Any]":
    """Attribute the latency/goodput delta between two runs to phases.

    Requests are aligned by id (same-seed runs share a workload, so the
    alignment is total); per-phase mean deltas over the matched set sum
    — via the residual phases — to the measured TTFT and e2e deltas,
    which is what makes the attribution exhaustive.
    """
    for report in (a, b):
        if report.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"expected {PROFILE_SCHEMA} reports, got {report.get('schema')!r}"
            )
    a_by_id = {req["id"]: req for req in a["per_request"]}
    b_by_id = {req["id"]: req for req in b["per_request"]}
    matched_ids = sorted(set(a_by_id) & set(b_by_id))
    n = len(matched_ids)

    phase_delta = {name: 0.0 for name in PHASES}
    ttft_delta_by_phase = {name: 0.0 for name in TTFT_PHASES}
    ttft_deltas: "list[float]" = []
    tpot_deltas: "list[float]" = []
    e2e_deltas: "list[float]" = []
    for request_id in matched_ids:
        req_a = a_by_id[request_id]
        req_b = b_by_id[request_id]
        for name in PHASES:
            phase_delta[name] += req_b["phases"][name] - req_a["phases"][name]
        for name in TTFT_PHASES:
            ttft_delta_by_phase[name] += (
                req_b["ttft_breakdown"][name] - req_a["ttft_breakdown"][name]
            )
        ttft_deltas.append(req_b["ttft"] - req_a["ttft"])
        tpot_deltas.append(req_b["tpot"] - req_a["tpot"])
        e2e_deltas.append(req_b["e2e"] - req_a["e2e"])

    def _attribution(
        measured_total: float, by_phase: "dict[str, float]"
    ) -> "dict[str, Any]":
        attributed_total = math.fsum(by_phase.values())
        mean = measured_total / n if n else 0.0
        return {
            "measured_delta_mean": mean,
            "attributed": {
                name: delta / n if n else 0.0
                for name, delta in by_phase.items()
            },
            "attributed_fraction": (
                attributed_total / measured_total if measured_total != 0 else 1.0
            ),
        }

    slo_a, slo_b = a.get("slo"), b.get("slo")
    goodput_report = None
    if slo_a and slo_b:
        goodput_report = {
            "a_goodput_rps": slo_a["goodput_rps"],
            "b_goodput_rps": slo_b["goodput_rps"],
            "delta": slo_b["goodput_rps"] - slo_a["goodput_rps"],
            "a_attainment": slo_a["attainment"],
            "b_attainment": slo_b["attainment"],
            "attainment_delta": slo_b["attainment"] - slo_a["attainment"],
        }

    return {
        "schema": PROFILE_DIFF_SCHEMA,
        "a_meta": dict(a["meta"]),
        "b_meta": dict(b["meta"]),
        "matched": n,
        "only_a": len(a_by_id) - n,
        "only_b": len(b_by_id) - n,
        "ttft": {
            "a_mean": a["ttft"]["mean"],
            "b_mean": b["ttft"]["mean"],
            "delta_mean": b["ttft"]["mean"] - a["ttft"]["mean"],
            **_attribution(math.fsum(ttft_deltas), ttft_delta_by_phase),
        },
        "tpot": {
            "a_mean": a["tpot"]["mean"],
            "b_mean": b["tpot"]["mean"],
            "delta_mean": b["tpot"]["mean"] - a["tpot"]["mean"],
            "matched_delta_mean": math.fsum(tpot_deltas) / n if n else 0.0,
        },
        "e2e": {
            "a_mean": a["e2e"]["mean"],
            "b_mean": b["e2e"]["mean"],
            "delta_mean": b["e2e"]["mean"] - a["e2e"]["mean"],
            **_attribution(math.fsum(e2e_deltas), phase_delta),
        },
        "goodput": goodput_report,
        "phases": {
            name: {
                "a_mean": a["phases"][name]["mean"],
                "b_mean": b["phases"][name]["mean"],
                "delta_mean": b["phases"][name]["mean"] - a["phases"][name]["mean"],
            }
            for name in PHASES
        },
    }


# ----------------------------------------------------------------------
# Renderers: JSON (canonical bytes), human text, self-contained HTML.
# ----------------------------------------------------------------------
def profile_to_json(report: "dict[str, Any]") -> str:
    """Canonical JSON rendering — byte-identical for identical runs."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def _fmt(value: float) -> str:
    return f"{value:.6f}"


def format_profile(report: "dict[str, Any]") -> str:
    """Human-readable profile summary."""
    lines: "list[str]" = []
    meta = report["meta"]
    summary = report["summary"]
    header = " ".join(f"{key}={meta[key]}" for key in sorted(meta))
    lines.append(f"profile: {header}" if header else "profile")
    lines.append(
        f"  completed={summary['completed']} sim_time={_fmt(summary['sim_time'])}s"
        f" spans={summary['spans']} exec_events={summary['exec_events']}"
    )
    lines.append("critical path (mean seconds per request, fraction of total):")
    for name in PHASES:
        entry = report["phases"][name]
        bar = "#" * int(round(entry["fraction"] * 40))
        lines.append(
            f"  {name:<14} {_fmt(entry['mean'])}  {entry['fraction']:6.1%}  {bar}"
        )
    ttft = report["ttft"]
    lines.append(
        f"ttft: mean={_fmt(ttft['mean'])} p50={_fmt(ttft['p50'])}"
        f" p99={_fmt(ttft['p99'])} max={_fmt(ttft['max'])}"
    )
    for name in TTFT_PHASES:
        lines.append(f"  {name:<14} {_fmt(ttft['breakdown_mean'][name])}")
    tpot = report["tpot"]
    lines.append(
        f"tpot: mean={_fmt(tpot['mean'])} p50={_fmt(tpot['p50'])}"
        f" p99={_fmt(tpot['p99'])} max={_fmt(tpot['max'])}"
    )
    gaps = report["token_gaps"]
    lines.append(
        f"token gaps: count={gaps['count']} mean={_fmt(gaps['mean'])}"
        f" p99={_fmt(gaps['p99'])} max={_fmt(gaps['max'])}"
    )
    if report["slo"]:
        slo = report["slo"]
        lines.append(
            f"slo: attainment={slo['attainment']:.1%}"
            f" (ttft {slo['attainment_ttft']:.1%} / tpot {slo['attainment_tpot']:.1%})"
            f" goodput={_fmt(slo['goodput_rps'])} req/s"
        )
    if report["utilization"]:
        lines.append("utilization (busy / blocked-on-transfer / idle):")
        for instance in sorted(report["utilization"]):
            entry = report["utilization"][instance]
            occupancy = " ".join(
                f"{size}x{seconds:.3f}s"
                for size, seconds in entry["batch_occupancy"].items()
            )
            lines.append(
                f"  {instance:<14} {entry['busy_frac']:6.1%}"
                f" {entry['blocked_on_transfer_frac']:6.1%}"
                f" {entry['idle_frac']:6.1%}  occupancy: {occupancy}"
            )
    contended = {
        name: entry
        for name, entry in report["interference"].items()
        if entry["contended_seconds"] > 0
    }
    if contended:
        lines.append("interference (prefill exec while decodes mid-generation):")
        for instance in sorted(contended):
            entry = contended[instance]
            lines.append(
                f"  {instance:<14} {_fmt(entry['contended_seconds'])}s"
                f" of {_fmt(entry['prefill_exec_seconds'])}s prefill"
                f" ({entry['contended_frac']:.1%})"
            )
    return "\n".join(lines) + "\n"


def format_profile_diff(diff: "dict[str, Any]") -> str:
    """Human-readable differential report (run B relative to run A)."""
    lines: "list[str]" = []
    a_meta = " ".join(f"{k}={diff['a_meta'][k]}" for k in sorted(diff["a_meta"]))
    b_meta = " ".join(f"{k}={diff['b_meta'][k]}" for k in sorted(diff["b_meta"]))
    lines.append(f"profile diff: A[{a_meta}] -> B[{b_meta}]")
    lines.append(
        f"  matched={diff['matched']} only_a={diff['only_a']} only_b={diff['only_b']}"
    )
    ttft = diff["ttft"]
    lines.append(
        f"ttft: {_fmt(ttft['a_mean'])} -> {_fmt(ttft['b_mean'])}"
        f" (delta {ttft['delta_mean']:+.6f}s,"
        f" {ttft['attributed_fraction']:.1%} attributed)"
    )
    for name in TTFT_PHASES:
        lines.append(f"  {name:<14} {ttft['attributed'][name]:+.6f}")
    tpot = diff["tpot"]
    lines.append(
        f"tpot: {_fmt(tpot['a_mean'])} -> {_fmt(tpot['b_mean'])}"
        f" (delta {tpot['delta_mean']:+.6f}s)"
    )
    e2e = diff["e2e"]
    lines.append(
        f"e2e: {_fmt(e2e['a_mean'])} -> {_fmt(e2e['b_mean'])}"
        f" (delta {e2e['delta_mean']:+.6f}s,"
        f" {e2e['attributed_fraction']:.1%} attributed)"
    )
    for name in PHASES:
        lines.append(f"  {name:<14} {e2e['attributed'][name]:+.6f}")
    if diff["goodput"]:
        goodput = diff["goodput"]
        lines.append(
            f"goodput: {_fmt(goodput['a_goodput_rps'])} ->"
            f" {_fmt(goodput['b_goodput_rps'])} req/s"
            f" (attainment {goodput['a_attainment']:.1%} ->"
            f" {goodput['b_attainment']:.1%})"
        )
    return "\n".join(lines) + "\n"


_HTML_STYLE = """
body{font-family:system-ui,sans-serif;margin:2em;color:#1a1a2e}
h1,h2{color:#16213e}table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #cbd5e1;padding:4px 10px;text-align:right;font-variant-numeric:tabular-nums}
th{background:#e2e8f0}td.name,th.name{text-align:left}
.bar{background:#3b82f6;height:12px;display:inline-block;vertical-align:middle}
.delta-pos{color:#b91c1c}.delta-neg{color:#15803d}
.meta{color:#475569;font-size:0.9em}
""".strip()


def _html_page(title: str, body: "list[str]") -> str:
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{escape(title)}</title><style>{_HTML_STYLE}</style></head>"
        "<body>" + "".join(body) + "</body></html>\n"
    )


def _html_meta(meta: "dict[str, Any]") -> str:
    text = " ".join(f"{key}={meta[key]}" for key in sorted(meta))
    return f"<p class=\"meta\">{escape(text)}</p>" if text else ""


def profile_to_html(report: "dict[str, Any]") -> str:
    """Self-contained single-file HTML rendering (no external assets).

    Accepts both a profile report and a diff report (dispatching on the
    embedded schema tag).
    """
    if report.get("schema") == PROFILE_DIFF_SCHEMA:
        return _diff_to_html(report)
    body: "list[str]" = ["<h1>Critical-path profile</h1>", _html_meta(report["meta"])]
    summary = report["summary"]
    body.append(
        f"<p>{summary['completed']} requests over {summary['sim_time']:.3f}s"
        f" virtual time · {summary['spans']} spans ·"
        f" {summary['exec_events']} exec events</p>"
    )
    body.append("<h2>Phases</h2><table><tr><th class=\"name\">phase</th>"
                "<th>mean (s)</th><th>total (s)</th><th>share</th><th></th></tr>")
    for name in PHASES:
        entry = report["phases"][name]
        width = int(round(entry["fraction"] * 300))
        body.append(
            f"<tr><td class=\"name\">{escape(name)}</td>"
            f"<td>{entry['mean']:.6f}</td><td>{entry['total']:.6f}</td>"
            f"<td>{entry['fraction']:.1%}</td>"
            f"<td><span class=\"bar\" style=\"width:{width}px\"></span></td></tr>"
        )
    body.append("</table>")
    body.append("<h2>Latency</h2><table><tr><th class=\"name\">metric</th>"
                "<th>mean</th><th>p50</th><th>p99</th><th>max</th></tr>")
    for label, key in (("TTFT", "ttft"), ("TPOT", "tpot"), ("E2E", "e2e")):
        entry = report[key]
        body.append(
            f"<tr><td class=\"name\">{label}</td><td>{entry['mean']:.6f}</td>"
            f"<td>{entry['p50']:.6f}</td><td>{entry['p99']:.6f}</td>"
            f"<td>{entry['max']:.6f}</td></tr>"
        )
    body.append("</table>")
    if report["slo"]:
        slo = report["slo"]
        body.append(
            f"<p>SLO attainment {slo['attainment']:.1%}"
            f" (TTFT {slo['attainment_ttft']:.1%}, TPOT {slo['attainment_tpot']:.1%})"
            f" · goodput {slo['goodput_rps']:.4f} req/s</p>"
        )
    if report["utilization"]:
        body.append("<h2>Utilization</h2><table><tr><th class=\"name\">instance</th>"
                    "<th>busy</th><th>blocked</th><th>idle</th><th>tokens</th>"
                    "<th class=\"name\">batch occupancy (size×s)</th></tr>")
        for instance in sorted(report["utilization"]):
            entry = report["utilization"][instance]
            occupancy = " ".join(
                f"{size}×{seconds:.3f}"
                for size, seconds in entry["batch_occupancy"].items()
            )
            body.append(
                f"<tr><td class=\"name\">{escape(instance)}</td>"
                f"<td>{entry['busy_frac']:.1%}</td>"
                f"<td>{entry['blocked_on_transfer_frac']:.1%}</td>"
                f"<td>{entry['idle_frac']:.1%}</td><td>{entry['tokens']}</td>"
                f"<td class=\"name\">{escape(occupancy)}</td></tr>"
            )
        body.append("</table>")
    contended = {
        name: entry
        for name, entry in report["interference"].items()
        if entry["decode_active_seconds"] > 0 and entry["prefill_exec_seconds"] > 0
    }
    if contended:
        body.append("<h2>Interference</h2><table><tr><th class=\"name\">instance</th>"
                    "<th>prefill exec (s)</th><th>contended (s)</th><th>share</th></tr>")
        for instance in sorted(contended):
            entry = contended[instance]
            body.append(
                f"<tr><td class=\"name\">{escape(instance)}</td>"
                f"<td>{entry['prefill_exec_seconds']:.4f}</td>"
                f"<td>{entry['contended_seconds']:.4f}</td>"
                f"<td>{entry['contended_frac']:.1%}</td></tr>"
            )
        body.append("</table>")
    return _html_page("Critical-path profile", body)


def _delta_cell(value: float) -> str:
    css = "delta-pos" if value > 0 else "delta-neg"
    return f"<td class=\"{css}\">{value:+.6f}</td>"


def _diff_to_html(diff: "dict[str, Any]") -> str:
    body: "list[str]" = ["<h1>Profile diff</h1>"]
    body.append("<p class=\"meta\">A: " + escape(
        " ".join(f"{k}={diff['a_meta'][k]}" for k in sorted(diff["a_meta"]))
    ) + "<br>B: " + escape(
        " ".join(f"{k}={diff['b_meta'][k]}" for k in sorted(diff["b_meta"]))
    ) + "</p>")
    body.append(
        f"<p>{diff['matched']} matched requests"
        f" (A-only {diff['only_a']}, B-only {diff['only_b']})</p>"
    )
    ttft = diff["ttft"]
    body.append(
        f"<h2>TTFT</h2><p>{ttft['a_mean']:.6f} → {ttft['b_mean']:.6f}"
        f" ({ttft['delta_mean']:+.6f}s,"
        f" {ttft['attributed_fraction']:.1%} attributed)</p>"
    )
    body.append("<table><tr><th class=\"name\">phase</th><th>Δ mean (s)</th></tr>")
    for name in TTFT_PHASES:
        body.append(
            f"<tr><td class=\"name\">{escape(name)}</td>"
            + _delta_cell(ttft["attributed"][name]) + "</tr>"
        )
    body.append("</table>")
    e2e = diff["e2e"]
    body.append(
        f"<h2>End-to-end</h2><p>{e2e['a_mean']:.6f} → {e2e['b_mean']:.6f}"
        f" ({e2e['delta_mean']:+.6f}s,"
        f" {e2e['attributed_fraction']:.1%} attributed)</p>"
    )
    body.append("<table><tr><th class=\"name\">phase</th><th>A mean</th>"
                "<th>B mean</th><th>Δ mean (s)</th></tr>")
    for name in PHASES:
        entry = diff["phases"][name]
        body.append(
            f"<tr><td class=\"name\">{escape(name)}</td>"
            f"<td>{entry['a_mean']:.6f}</td><td>{entry['b_mean']:.6f}</td>"
            + _delta_cell(entry["delta_mean"]) + "</tr>"
        )
    body.append("</table>")
    tpot = diff["tpot"]
    body.append(
        f"<h2>TPOT</h2><p>{tpot['a_mean']:.6f} → {tpot['b_mean']:.6f}"
        f" ({tpot['delta_mean']:+.6f}s)</p>"
    )
    if diff["goodput"]:
        goodput = diff["goodput"]
        body.append(
            f"<h2>Goodput</h2><p>{goodput['a_goodput_rps']:.4f} →"
            f" {goodput['b_goodput_rps']:.4f} req/s · attainment"
            f" {goodput['a_attainment']:.1%} → {goodput['b_attainment']:.1%}</p>"
        )
    return _html_page("Profile diff", body)
