"""Plain-text table formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; this module renders them as aligned monospace tables without
third-party dependencies.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series"]


def format_table(
    headers: "list[str]",
    rows: "list[list[object]]",
    title: "str | None" = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``. Column widths adapt to content.
    """
    rendered: "list[list[str]]" = [list(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for row in rendered[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: "list[object]",
    series: "dict[str, list[float]]",
    title: "str | None" = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render one x-column plus named y-series as a table (figure data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: "list[object]" = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
