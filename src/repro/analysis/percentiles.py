"""Percentile and summary utilities over request records."""

from __future__ import annotations

import numpy as np

from ..simulator.request import RequestRecord

__all__ = ["ttft_percentile", "tpot_percentile", "latency_summary", "cdf_points"]


def _values(records: "list[RequestRecord]", field: str) -> np.ndarray:
    if not records:
        raise ValueError("no records to summarize")
    return np.array([getattr(r, field) for r in records], dtype=float)


def ttft_percentile(records: "list[RequestRecord]", q: float = 90.0) -> float:
    """P``q`` of time-to-first-token (Figure 1 uses P90)."""
    return float(np.percentile(_values(records, "ttft"), q))


def tpot_percentile(records: "list[RequestRecord]", q: float = 90.0) -> float:
    """P``q`` of time-per-output-token."""
    return float(np.percentile(_values(records, "tpot"), q))


def latency_summary(records: "list[RequestRecord]") -> "dict[str, float]":
    """Mean/P50/P90/P99 of TTFT and TPOT plus end-to-end latency."""
    ttft = _values(records, "ttft")
    tpot = _values(records, "tpot")
    e2e = np.array([r.end_to_end_latency for r in records], dtype=float)
    out: "dict[str, float]" = {}
    for name, arr in (("ttft", ttft), ("tpot", tpot), ("e2e", e2e)):
        out[f"{name}_mean"] = float(arr.mean())
        for q in (50, 90, 99):
            out[f"{name}_p{q}"] = float(np.percentile(arr, q))
    return out


def cdf_points(values: "list[float]") -> "tuple[np.ndarray, np.ndarray]":
    """Empirical CDF as (sorted values, cumulative fractions).

    Used for the KV-transfer-time CDF of Figure 10(b).
    """
    if not values:
        raise ValueError("no values for CDF")
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1, dtype=float) / len(xs)
    return xs, ys
