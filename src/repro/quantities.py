"""Unit-dimension annotation aliases, understood by reprolint UNIT001.

All latency/goodput math in this tree is plain ``float``/``int``; these
aliases add zero runtime cost but *pin* a dimension for the linter's
unit analysis (:mod:`repro.lint.units`), overriding whatever the
parameter name would otherwise suggest. Annotate boundary signatures —
anything crossing a module boundary where ms-vs-s or tokens-vs-blocks
confusion is plausible::

    from repro.quantities import Seconds, Blocks

    def transfer_time(self, blocks: Blocks) -> Seconds: ...

UNIT001 then flags ``blocks + elapsed_s`` (blocks plus seconds) or a
``deadline_ms < timeout`` comparison (milliseconds vs seconds) at lint
time. Names without a recognizable dimension stay unchecked, so
annotating is opt-in tightening, never noise.

The simulator's convention is SI end to end: **seconds** for every
time quantity (never ms), counts as plain ints, bytes as float (so
fractional KB/MB math stays exact enough for link models).
"""

from __future__ import annotations

__all__ = [
    "Seconds",
    "Milliseconds",
    "Tokens",
    "Blocks",
    "Bytes",
    "Requests",
    "TokensPerSecond",
]

#: Wall/virtual time in SI seconds — the tree-wide convention.
Seconds = float

#: Milliseconds; only at user-facing boundaries (SLO configs, reports).
Milliseconds = float

#: Token counts (prompt or generated).
Tokens = int

#: KV-cache block counts.
Blocks = int

#: Byte counts; float so bandwidth math keeps sub-byte precision.
Bytes = float

#: Request counts.
Requests = int

#: Rates in tokens per second (e.g. the ``sjf_aging`` credit rate).
#: A ratio of two dimensions — UNIT001 treats it as unchecked, which is
#: correct: rate * seconds legitimately yields tokens.
TokensPerSecond = float
