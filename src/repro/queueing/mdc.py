"""Multi-server queueing approximations: M/M/c and M/D/c.

§3.2 notes that replication "may also reduce the queuing delay — as
indicated by Eq. 1 — by substituting R with R/N assuming requests are
equally dispatched to N replicas". That split-arrival model is
pessimistic: a *pooled* queue (one queue, c servers) beats N separate
queues. These closed forms quantify the gap, supporting the dispatch
analysis: Erlang-C for M/M/c and the standard Cosmetatos-style
correction for M/D/c (deterministic service halves the wait at equal
utilization).
"""

from __future__ import annotations

import math

__all__ = [
    "erlang_c",
    "mmc_waiting_time",
    "mdc_waiting_time",
    "split_queue_waiting_time",
]


def _check(rate: float, service_time: float, servers: int) -> float:
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if service_time <= 0:
        raise ValueError(f"service_time must be positive, got {service_time}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    rho = rate * service_time / servers
    if rho >= 1.0:
        raise ValueError(f"unstable queue: rho = {rho:.3f} >= 1")
    return rho


def erlang_c(rate: float, service_time: float, servers: int) -> float:
    """Probability an arrival must wait in an M/M/c queue (Erlang C)."""
    rho = _check(rate, service_time, servers)
    a = rate * service_time  # offered load in Erlangs
    total = sum(a**k / math.factorial(k) for k in range(servers))
    tail = a**servers / (math.factorial(servers) * (1.0 - rho))
    return tail / (total + tail)


def mmc_waiting_time(rate: float, service_time: float, servers: int) -> float:
    """Mean wait of an M/M/c queue: ``Pwait * D / (c (1 - rho))``."""
    rho = _check(rate, service_time, servers)
    p_wait = erlang_c(rate, service_time, servers)
    return p_wait * service_time / (servers * (1.0 - rho))


def mdc_waiting_time(rate: float, service_time: float, servers: int) -> float:
    """Approximate mean wait of an M/D/c queue.

    The classic two-moment reduction: deterministic service has SCV 0,
    so ``W(M/D/c) ~= W(M/M/c) * (1 + 0) / 2`` — exact for c=1 (matches
    Eq. 1's M/D/1 wait) and accurate to a few percent for small c.
    """
    return mmc_waiting_time(rate, service_time, servers) / 2.0


def split_queue_waiting_time(rate: float, service_time: float, servers: int) -> float:
    """Mean M/D/1 wait when arrivals split evenly across ``servers``
    independent queues — the paper's §3.2 replication model (R -> R/N).

    Always at least :func:`mdc_waiting_time`; the ratio quantifies what
    pooled (least-loaded) dispatch buys over random splitting.
    """
    _check(rate, service_time, servers)
    per_queue_rate = rate / servers
    rho = per_queue_rate * service_time
    return per_queue_rate * service_time**2 / (2.0 * (1.0 - rho))
