"""Supplementary queueing formulas: M/M/1 and M/G/1 (Pollaczek–Khinchine).

Real workloads have non-uniform prompt lengths (§3.3), so service times
are random rather than deterministic. The M/G/1 mean-wait formula lets
the analysis bracket the M/D/1 result (deterministic service is the
best case; exponential the classic worst-ish case at the same mean).
"""

from __future__ import annotations

__all__ = ["mm1_waiting_time", "mg1_waiting_time", "mm1_response_time"]


def _check(rate: float, mean_service: float) -> float:
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if mean_service <= 0:
        raise ValueError(f"mean_service must be positive, got {mean_service}")
    rho = rate * mean_service
    if rho >= 1.0:
        raise ValueError(f"unstable queue: rho = {rho:.3f} >= 1")
    return rho


def mm1_waiting_time(rate: float, mean_service: float) -> float:
    """Mean waiting time of an M/M/1 queue: ``rho D / (1 - rho)``."""
    rho = _check(rate, mean_service)
    return rho * mean_service / (1.0 - rho)


def mm1_response_time(rate: float, mean_service: float) -> float:
    """Mean sojourn (wait + service) of an M/M/1 queue."""
    return mean_service + mm1_waiting_time(rate, mean_service)


def mg1_waiting_time(rate: float, mean_service: float, service_scv: float) -> float:
    """Pollaczek–Khinchine mean wait for general service-time distributions.

    Args:
        rate: Poisson arrival rate.
        mean_service: Mean service time ``D``.
        service_scv: Squared coefficient of variation ``Var/D^2``
            (0 recovers M/D/1, 1 recovers M/M/1).
    """
    if service_scv < 0:
        raise ValueError(f"service_scv must be >= 0, got {service_scv}")
    rho = _check(rate, mean_service)
    return rho * mean_service * (1.0 + service_scv) / (2.0 * (1.0 - rho))
