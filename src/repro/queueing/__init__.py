"""Queueing-theoretic models backing the §3.1 parallelism analysis."""

from .mdone import (
    avg_ttft_inter_op,
    avg_ttft_intra_op,
    avg_ttft_single,
    crossover_rate,
    max_stable_rate,
    md1_waiting_time,
)
from .mdc import (
    erlang_c,
    mdc_waiting_time,
    mmc_waiting_time,
    split_queue_waiting_time,
)
from .mm1 import mg1_waiting_time, mm1_response_time, mm1_waiting_time

__all__ = [
    "avg_ttft_inter_op",
    "avg_ttft_intra_op",
    "avg_ttft_single",
    "crossover_rate",
    "max_stable_rate",
    "md1_waiting_time",
    "erlang_c",
    "mdc_waiting_time",
    "mmc_waiting_time",
    "split_queue_waiting_time",
    "mg1_waiting_time",
    "mm1_response_time",
    "mm1_waiting_time",
]
