"""M/D/1 queueing models used in the prefill-instance analysis (§3.1).

With uniform prompt lengths, FCFS scheduling, and Poisson arrivals, a
prefill instance is an M/D/1 queue. The paper derives average TTFT in
closed form for a single device (Eq. 1) and under 2-way inter-op (Eq. 2)
and intra-op (Eq. 3) parallelism. We implement the general-``degree``
forms that specialize to the paper's equations at degree 2.
"""

from __future__ import annotations

import math

__all__ = [
    "md1_waiting_time",
    "avg_ttft_single",
    "avg_ttft_inter_op",
    "avg_ttft_intra_op",
    "max_stable_rate",
    "crossover_rate",
]


def _check_utilization(rate: float, service_time: float) -> None:
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if service_time <= 0:
        raise ValueError(f"service_time must be positive, got {service_time}")
    if rate * service_time >= 1.0:
        raise ValueError(
            f"unstable queue: utilization rho = {rate * service_time:.3f} >= 1"
        )


def md1_waiting_time(rate: float, service_time: float) -> float:
    """Mean waiting time (queuing delay) of an M/D/1 queue.

    ``W = R D^2 / (2 (1 - R D))`` — the second term of Eq. 1.
    """
    _check_utilization(rate, service_time)
    rho = rate * service_time
    return rate * service_time**2 / (2.0 * (1.0 - rho))


def avg_ttft_single(rate: float, execution_time: float) -> float:
    """Eq. 1: average TTFT on a single device without parallelism.

    ``Avg_TTFT = D + R D^2 / (2 (1 - R D))``.
    """
    return execution_time + md1_waiting_time(rate, execution_time)


def avg_ttft_inter_op(rate: float, execution_time: float, degree: int = 2) -> float:
    """Eq. 2 generalized: average TTFT under ``degree``-way inter-op parallelism.

    Request latency stays ``D`` (``Ds ≈ D``) while the pipeline admits a
    new request every ``Dm = D / degree``, so queuing follows M/D/1 with
    service time ``Dm``:

    ``Avg_TTFT_inter = D + R Dm^2 / (2 (1 - R Dm))``

    which at ``degree=2`` reduces to the paper's ``D + R D^2 / (4 (2 - R D))``.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    stage_time = execution_time / degree
    _check_utilization(rate, stage_time)
    return execution_time + md1_waiting_time(rate, stage_time)


def avg_ttft_intra_op(rate: float, execution_time: float, speedup: float) -> float:
    """Eq. 3: average TTFT under intra-op parallelism with speedup ``K``.

    Execution time shrinks to ``D / K`` and the queue serves at that rate:

    ``Avg_TTFT_intra = D/K + R D^2 / (2 K (K - R D))``.
    """
    if speedup < 1.0:
        raise ValueError(f"speedup K must be >= 1, got {speedup}")
    service = execution_time / speedup
    _check_utilization(rate, service)
    return service + md1_waiting_time(rate, service)


def max_stable_rate(service_time: float, utilization_cap: float = 1.0) -> float:
    """Largest arrival rate keeping the queue stable (``rho < cap``)."""
    if service_time <= 0:
        raise ValueError(f"service_time must be positive, got {service_time}")
    if not 0 < utilization_cap <= 1:
        raise ValueError("utilization_cap must be in (0, 1]")
    return utilization_cap / service_time


def crossover_rate(
    execution_time: float,
    speedup: float,
    degree: int = 2,
    tolerance: float = 1e-9,
) -> float:
    """Arrival rate where inter-op TTFT first beats intra-op TTFT (§3.1).

    Below the returned rate intra-op parallelism yields lower average TTFT
    (execution-time dominated); above it inter-op wins (queuing dominated).
    Returns ``inf`` when intra-op dominates across the whole stable range,
    and ``0`` when inter-op always wins.
    """
    lo = 0.0
    # Intra-op is stable while R < K / D; inter-op while R < degree / D.
    hi = min(speedup, float(degree)) / execution_time * (1.0 - 1e-9)

    def diff(rate: float) -> float:
        return avg_ttft_intra_op(rate, execution_time, speedup) - avg_ttft_inter_op(
            rate, execution_time, degree
        )

    if diff(lo) >= 0.0:
        return 0.0
    if diff(hi) <= 0.0:
        return math.inf
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if diff(mid) <= 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
