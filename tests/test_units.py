"""Unit-dimension analysis tests (repro.lint.units: UNIT001).

Covers name-based inference (ms/s/tokens/blocks/bytes/requests,
disqualifier segments, time-beats-counts), annotation pinning via
repro.quantities, expression propagation, and the rule's scoping to
latency/simulator/core modules.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.units import dimension_of_name

LATENCY_MODULE = "repro.latency.fixture"


def run(source: str, module: str = LATENCY_MODULE):
    return lint_source(textwrap.dedent(source), path="fixture.py",
                       module=module, select=["UNIT001"])


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestNameInference:
    def test_time_segments(self):
        assert dimension_of_name("queue_time") == "seconds"
        assert dimension_of_name("ttft") == "seconds"
        assert dimension_of_name("exec_latency") == "seconds"

    def test_ms_beats_seconds(self):
        assert dimension_of_name("latency_ms") == "milliseconds"
        assert dimension_of_name("deadline_msec") == "milliseconds"

    def test_time_beats_counts(self):
        assert dimension_of_name("request_latency") == "seconds"

    def test_counts(self):
        assert dimension_of_name("batch_tokens") == "tokens"
        assert dimension_of_name("free_blocks") == "blocks"
        assert dimension_of_name("num_bytes") == "bytes"
        assert dimension_of_name("pending_requests") == "requests"

    def test_disqualifiers(self):
        assert dimension_of_name("request_id") is None
        assert dimension_of_name("tokens_per_s") is None
        assert dimension_of_name("block_idx") is None
        assert dimension_of_name("time_frac") is None

    def test_ambiguous_count_pair(self):
        assert dimension_of_name("token_blocks") is None

    def test_no_hint(self):
        assert dimension_of_name("total") is None


class TestPositive:
    def test_ms_plus_seconds(self):
        findings = run("""
            def f(ttft_ms, queue_time):
                return ttft_ms + queue_time
        """)
        assert rules_of(findings) == ["UNIT001"]
        assert "milliseconds" in findings[0].message

    def test_tokens_compared_to_blocks(self):
        findings = run("""
            def f(batch_tokens, free_blocks):
                return batch_tokens > free_blocks
        """)
        assert rules_of(findings) == ["UNIT001"]

    def test_bytes_minus_seconds(self):
        findings = run("""
            def f(num_bytes, elapsed):
                return num_bytes - elapsed
        """)
        assert rules_of(findings) == ["UNIT001"]

    def test_augassign_mixing(self):
        findings = run("""
            def f(stall_time, batch_tokens):
                stall_time += batch_tokens
                return stall_time
        """)
        assert rules_of(findings) == ["UNIT001"]

    def test_annotation_overrides_name(self):
        # `budget` has no name hint; its Blocks annotation pins it.
        findings = run("""
            from repro.quantities import Blocks

            def f(budget: Blocks, batch_tokens):
                return batch_tokens + budget
        """)
        assert rules_of(findings) == ["UNIT001"]

    def test_propagation_through_max(self):
        findings = run("""
            def f(queue_time, exec_time, batch_tokens):
                return max(queue_time, exec_time) + batch_tokens
        """)
        assert rules_of(findings) == ["UNIT001"]


class TestNegative:
    def test_same_dimension(self):
        findings = run("""
            def f(queue_time, exec_time):
                return queue_time + exec_time
        """)
        assert findings == []

    def test_unknown_side_stays_silent(self):
        findings = run("""
            def f(queue_time, x):
                return queue_time + x
        """)
        assert findings == []

    def test_rate_multiplication_erases_dimension(self):
        # tokens * seconds_per_token legitimately changes dimension; the
        # product has no inferred dimension, so adding seconds is fine.
        findings = run("""
            def f(batch_tokens, s_per_tok, queue_time):
                return batch_tokens * s_per_tok + queue_time
        """)
        assert findings == []

    def test_annotation_agreeing_with_expression(self):
        findings = run("""
            from repro.quantities import Seconds

            def f(delay: Seconds, queue_time):
                return delay + queue_time
        """)
        assert findings == []

    def test_out_of_scope_module(self):
        findings = run("""
            def f(ttft_ms, queue_time):
                return ttft_ms + queue_time
        """, module="repro.analysis.fixture")
        assert findings == []


class TestSuppression:
    def test_line_suppression(self):
        findings = run("""
            def f(ttft_ms, queue_time):
                return ttft_ms + queue_time  # reprolint: disable=UNIT001 -- queue_time is ms here
        """)
        assert findings == []
