"""Tests for request lifecycle state and latency records."""

import pytest

from repro.simulator import RequestPhase, RequestState
from repro.workload import Request


def make_state(input_len=100, output_len=5, arrival=1.0) -> RequestState:
    return RequestState(
        request=Request(
            request_id=1, arrival_time=arrival, input_len=input_len, output_len=output_len
        )
    )


class TestRequestState:
    def test_initial_phase(self):
        state = make_state()
        assert state.phase is RequestPhase.WAITING_PREFILL
        assert state.generated == 0
        assert state.context_len == 100
        assert state.remaining_tokens == 5

    def test_context_grows_with_tokens(self):
        state = make_state()
        state.record_token(2.0)
        assert state.generated == 1
        assert state.context_len == 101

    def test_over_generation_rejected(self):
        state = make_state(output_len=1)
        state.record_token(2.0)
        with pytest.raises(RuntimeError):
            state.record_token(3.0)

    def test_stamp_first_write_wins(self):
        state = make_state()
        state.stamp("prefill_start", 2.0)
        state.stamp("prefill_start", 9.0)
        assert state.timestamps["prefill_start"] == 2.0

    def test_record_requires_finish(self):
        state = make_state()
        with pytest.raises(RuntimeError):
            state.to_record()


class TestRequestRecord:
    def test_ttft_and_tpot(self):
        state = make_state(output_len=3, arrival=1.0)
        state.stamp("prefill_start", 1.2)
        state.stamp("prefill_end", 1.5)
        state.record_token(1.5)   # first token at prefill end
        state.stamp("transfer_end", 1.6)
        state.stamp("decode_start", 1.7)
        state.record_token(2.0)
        state.record_token(2.5)
        rec = state.to_record()
        assert rec.ttft == pytest.approx(0.5)
        assert rec.tpot == pytest.approx((2.5 - 1.5) / 2)
        assert rec.end_to_end_latency == pytest.approx(1.5)

    def test_single_token_request_tpot_zero(self):
        state = make_state(output_len=1)
        state.stamp("prefill_start", 1.1)
        state.stamp("prefill_end", 1.4)
        state.record_token(1.4)
        rec = state.to_record()
        assert rec.tpot == 0.0
        assert rec.ttft == pytest.approx(0.4)

    def test_breakdown_sums_to_end_to_end(self):
        state = make_state(output_len=2)
        state.stamp("prefill_start", 1.3)
        state.stamp("prefill_end", 1.8)
        state.record_token(1.8)
        state.stamp("transfer_end", 1.9)
        state.stamp("decode_start", 2.1)
        state.record_token(2.4)
        rec = state.to_record()
        total = (
            rec.prefill_queue_time
            + rec.prefill_exec_time
            + rec.transfer_time
            + rec.decode_queue_time
            + rec.decode_exec_time
        )
        assert total == pytest.approx(rec.end_to_end_latency)

    def test_meets_slo(self):
        state = make_state(output_len=2)
        state.stamp("prefill_start", 1.0)
        state.stamp("prefill_end", 1.2)
        state.record_token(1.2)
        state.record_token(1.3)
        rec = state.to_record()
        assert rec.meets(ttft_slo=0.3, tpot_slo=0.2)
        assert not rec.meets(ttft_slo=0.1, tpot_slo=0.2)
        assert not rec.meets(ttft_slo=0.3, tpot_slo=0.05)


class TestRequestValidation:
    def test_invalid_request_fields(self):
        with pytest.raises(ValueError):
            Request(request_id=1, arrival_time=-1.0, input_len=10, output_len=1)
        with pytest.raises(ValueError):
            Request(request_id=1, arrival_time=0.0, input_len=0, output_len=1)
        with pytest.raises(ValueError):
            Request(request_id=1, arrival_time=0.0, input_len=10, output_len=0)

    def test_total_tokens(self):
        r = Request(request_id=1, arrival_time=0.0, input_len=10, output_len=4)
        assert r.total_tokens == 14
