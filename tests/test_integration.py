"""Cross-module integration tests: paper-level behaviors end to end."""

import numpy as np
import pytest

from repro import quickserve
from repro.analysis import latency_breakdown, slo_attainment, tpot_percentile, ttft_percentile
from repro.hardware import NVLINK
from repro.latency import ParallelismConfig
from repro.serving import (
    ColocatedSystem,
    DisaggregatedSystem,
    simulate_trace,
)
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SHAREGPT, SLO, fixed_length_dataset, generate_trace


class TestQuickserve:
    def test_quickserve_end_to_end(self):
        res = quickserve(model="opt-13b", rate=2.0, num_requests=60)
        assert res.completed == 60
        assert res.unfinished == 0


class TestConservation:
    """Every request is accounted for, exactly once, with sane records."""

    @pytest.mark.parametrize("system_kind", ["colocated", "disaggregated"])
    def test_no_request_lost_or_duplicated(self, tiny_spec, rng, system_kind):
        trace = generate_trace(SHAREGPT, rate=6.0, num_requests=150, rng=rng)
        sim = Simulation()
        if system_kind == "colocated":
            system = ColocatedSystem(sim, tiny_spec, num_replicas=2)
        else:
            system = DisaggregatedSystem(
                sim, tiny_spec, tiny_spec, num_prefill=2, num_decode=1
            )
        res = simulate_trace(system, trace)
        assert res.unfinished == 0
        ids = [r.request_id for r in res.records]
        assert sorted(ids) == [r.request_id for r in trace]

    def test_token_count_exact(self, tiny_spec, rng):
        trace = generate_trace(SHAREGPT, rate=4.0, num_requests=80, rng=rng)
        sim = Simulation()
        system = DisaggregatedSystem(sim, tiny_spec, tiny_spec)
        res = simulate_trace(system, trace)
        by_id = {r.request_id: r for r in trace}
        for rec in res.records:
            assert rec.output_len == by_id[rec.request_id].output_len
            assert rec.input_len == by_id[rec.request_id].input_len

    def test_causality(self, tiny_spec, rng):
        trace = generate_trace(SHAREGPT, rate=6.0, num_requests=100, rng=rng)
        sim = Simulation()
        system = DisaggregatedSystem(sim, tiny_spec, tiny_spec)
        res = simulate_trace(system, trace)
        for rec in res.records:
            assert rec.finish_time >= rec.arrival_time + rec.ttft
            assert rec.ttft >= 0 and rec.tpot >= 0


class TestPaperBehaviors:
    """The headline qualitative claims, end to end on small models."""

    def test_disaggregation_beats_colocation_under_load(self, opt13b):
        """§1/Figure 1: same GPU count, the paper's 13B setting (512 in /
        64 out), moderate load — the 2-prefill/1-decode split sustains
        better attainment than 3 colocated replicas."""
        spec = InstanceSpec(model=opt13b)
        ds = fixed_length_dataset(512, 64)
        slo = SLO(ttft=0.2, tpot=0.1)
        rate, n = 6.0, 300
        trace = generate_trace(ds, rate=rate, num_requests=n, rng=np.random.default_rng(5))

        sim = Simulation()
        colo = ColocatedSystem(sim, spec, num_replicas=3)
        res_c = simulate_trace(colo, trace)
        att_c = slo_attainment(res_c.records, slo, num_expected=n).total

        sim = Simulation()
        disagg = DisaggregatedSystem(
            sim, spec, spec, num_prefill=2, num_decode=1, transfer_link=NVLINK
        )
        res_d = simulate_trace(disagg, trace)
        att_d = slo_attainment(res_d.records, slo, num_expected=n).total

        assert res_c.num_gpus == res_d.num_gpus == 3
        assert att_d > att_c

    def test_interference_visible_in_colocated_tpot(self, tiny_spec, rng):
        """Figure 2: colocated TPOT degrades with load much faster than
        disaggregated TPOT at identical arrival streams."""
        ds = fixed_length_dataset(1024, 32)
        trace = generate_trace(ds, rate=30.0, num_requests=300, rng=rng)
        sim = Simulation()
        res_c = simulate_trace(ColocatedSystem(sim, tiny_spec), trace)
        sim = Simulation()
        res_d = simulate_trace(
            DisaggregatedSystem(sim, tiny_spec, tiny_spec), trace
        )
        assert tpot_percentile(res_c.records) > 1.5 * tpot_percentile(res_d.records)

    def test_transfer_negligible_on_nvlink(self, tiny_spec, rng):
        """§6.3/Figure 10: KV transfer is a tiny share of lifecycle time."""
        trace = generate_trace(SHAREGPT, rate=5.0, num_requests=200, rng=rng)
        sim = Simulation()
        system = DisaggregatedSystem(
            sim, tiny_spec, tiny_spec, transfer_link=NVLINK
        )
        res = simulate_trace(system, trace)
        fractions = latency_breakdown(res.records).fractions()
        assert fractions["transfer"] < 0.05

    def test_prefill_tp_reduces_ttft(self, tiny_model, rng):
        """§3.1: intra-op parallelism cuts prefill execution time, hence
        TTFT at low load."""
        ds = fixed_length_dataset(1024, 8)
        trace = generate_trace(ds, rate=2.0, num_requests=60, rng=rng)
        p90 = {}
        for tp in (1, 2):
            spec = InstanceSpec(model=tiny_model, config=ParallelismConfig(tp, 1))
            sim = Simulation()
            system = DisaggregatedSystem(sim, spec, spec)
            res = simulate_trace(system, trace)
            p90[tp] = ttft_percentile(res.records)
        assert p90[2] < p90[1]

    def test_decode_pp_scales_capacity(self, tiny_model, rng):
        """§3.2: inter-op decode scaling increases KV capacity and hence
        the rate a decode pool can absorb without queue growth."""
        specs = {
            pp: InstanceSpec(model=tiny_model, config=ParallelismConfig(1, pp))
            for pp in (1, 2)
        }
        assert specs[2].kv_token_capacity() > specs[1].kv_token_capacity()

    def test_deterministic_given_seed(self, tiny_spec):
        traces = [
            generate_trace(
                SHAREGPT, rate=4.0, num_requests=50, rng=np.random.default_rng(9)
            )
            for _ in range(2)
        ]
        results = []
        for trace in traces:
            sim = Simulation()
            system = DisaggregatedSystem(sim, tiny_spec, tiny_spec)
            res = simulate_trace(system, trace)
            results.append([(r.request_id, r.ttft, r.tpot) for r in res.records])
        assert results[0] == results[1]
