"""Tests for the discrete-event simulation core."""

import pytest

from repro.simulator import Simulation


class TestSimulation:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        sim = Simulation()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_events_scheduled_during_run(self):
        sim = Simulation()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(1.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run()
        assert log == [1, 5]

    def test_max_events_limit(self):
        sim = Simulation()
        count = []

        def recur():
            count.append(1)
            sim.schedule(1.0, recur)

        sim.schedule(0.0, recur)
        sim.run(max_events=10)
        assert len(count) == 10

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_peek_and_len(self):
        sim = Simulation()
        assert sim.peek_time() is None
        assert len(sim) == 0
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0
        assert len(sim) == 1

    def test_events_processed_counter(self):
        sim = Simulation()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestRunEdgeCases:
    """Untested corners of the event loop every trace depends on."""

    def test_until_exactly_on_event_timestamp_fires_event(self):
        # The cutoff is inclusive: an event at exactly `until` executes.
        sim = Simulation()
        log = []
        sim.schedule(2.0, lambda: log.append("at"))
        sim.schedule(2.0 + 1e-9, lambda: log.append("after"))
        sim.run(until=2.0)
        assert log == ["at"]
        assert sim.now == 2.0

    def test_until_boundary_event_scheduling_more_work_at_until(self):
        # An event at `until` may schedule a zero-delay follow-up, which
        # lands exactly at `until` and therefore also fires.
        sim = Simulation()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.0, lambda: log.append("chained"))

        sim.schedule(3.0, first)
        sim.run(until=3.0)
        assert log == ["first", "chained"]

    def test_empty_heap_advances_clock_to_until(self):
        sim = Simulation()
        sim.run(until=7.5)
        assert sim.now == 7.5
        assert sim.events_processed == 0

    def test_until_in_the_past_leaves_clock_alone(self):
        sim = Simulation()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        sim.run(until=2.0)  # already beyond the cutoff: a no-op
        assert sim.now == 5.0

    def test_drained_heap_still_advances_to_until(self):
        # Events before the cutoff execute, then the clock jumps to it.
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.run(until=10.0)
        assert log == [1]
        assert sim.now == 10.0

    def test_max_events_hits_before_until(self):
        # max_events wins: the run stops mid-queue and the clock stays at
        # the last executed event, not at `until`.
        sim = Simulation()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run(until=10.0, max_events=2)
        assert log == [1.0, 2.0]
        assert sim.now == 2.0
        assert len(sim) == 1

    def test_until_hits_before_max_events(self):
        sim = Simulation()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run(until=2.5, max_events=100)
        assert log == [1.0, 2.0]
        assert sim.now == 2.5

    def test_max_events_counts_per_call_not_lifetime(self):
        sim = Simulation()
        for _ in range(6):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4
        sim.run(max_events=4)  # a fresh budget drains the remaining two
        assert sim.events_processed == 6
        assert len(sim) == 0

    def test_run_resumes_after_until(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(4.0, lambda: log.append("b"))
        sim.run(until=2.0)
        sim.run(until=3.0)  # no events in (2, 3]: clock still advances
        assert sim.now == 3.0
        sim.run()
        assert log == ["a", "b"]
        assert sim.now == 4.0
