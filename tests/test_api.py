"""Tests for the OpenAI-compatible API frontend."""

import numpy as np
import pytest

from repro.serving import (
    APIFrontend,
    ColocatedSystem,
    CompletionRequest,
    DisaggregatedSystem,
    count_tokens,
)
from repro.simulator import Simulation


class TestTokenizer:
    def test_count_scales_with_length(self):
        assert count_tokens("abcd" * 10) == 10
        assert count_tokens("abcde") == 2

    def test_minimum_one_token(self):
        assert count_tokens("a") == 1


class TestCompletionRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompletionRequest(prompt="")
        with pytest.raises(ValueError):
            CompletionRequest(prompt="hi", max_tokens=0)
        with pytest.raises(ValueError):
            CompletionRequest(prompt="hi", temperature=-1.0)

    def test_temperature_zero_deterministic(self):
        req = CompletionRequest(prompt="hi", max_tokens=50, stop_probability=0.1)
        req0 = CompletionRequest(
            prompt="hi", max_tokens=50, temperature=0.0, stop_probability=0.1
        )
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(2)
        assert req0.sample_output_len(rng_a) == req0.sample_output_len(rng_b) == 10
        lengths = {req.sample_output_len(np.random.default_rng(s)) for s in range(20)}
        assert len(lengths) > 1  # temperature > 0 samples vary

    def test_max_tokens_caps_output(self):
        req = CompletionRequest(prompt="hi", max_tokens=3, stop_probability=0.001)
        rng = np.random.default_rng(0)
        assert all(req.sample_output_len(rng) <= 3 for _ in range(50))


class TestAPIFrontend:
    def _frontend(self, tiny_spec, system_cls):
        sim = Simulation()
        if system_cls is ColocatedSystem:
            system = ColocatedSystem(sim, tiny_spec)
        else:
            system = DisaggregatedSystem(sim, tiny_spec, tiny_spec)
        return sim, APIFrontend(sim, system, seed=0)

    @pytest.mark.parametrize("system_cls", [ColocatedSystem, DisaggregatedSystem])
    def test_round_trip(self, tiny_spec, system_cls):
        sim, api = self._frontend(tiny_spec, system_cls)
        ids = [
            api.submit_at(0.1 * i, CompletionRequest(prompt="hello " * 30, max_tokens=8))
            for i in range(5)
        ]
        sim.run()
        responses = api.responses()
        assert sorted(r.request_id for r in responses) == ids
        for resp in responses:
            assert resp.prompt_tokens == count_tokens("hello " * 30)
            assert 1 <= resp.completion_tokens <= 8
            assert resp.finish_time >= resp.first_token_time >= resp.created
            assert resp.ttft > 0

    def test_responses_idempotent(self, tiny_spec):
        sim, api = self._frontend(tiny_spec, ColocatedSystem)
        api.submit_at(0.0, CompletionRequest(prompt="hi there friend"))
        sim.run()
        assert len(api.responses()) == 1
        assert len(api.responses()) == 1

    def test_streaming_order(self, tiny_spec):
        sim, api = self._frontend(tiny_spec, DisaggregatedSystem)
        api.submit_at(0.0, CompletionRequest(prompt="x" * 400, max_tokens=16))
        sim.run()
        resp = api.responses()[0]
        # First token comes from prefill; the rest stream afterwards.
        assert resp.record.ttft <= resp.record.end_to_end_latency
