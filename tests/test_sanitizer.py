"""SimSanitizer tests: inject synthetic invariant violations and prove
each detector fires; then prove the opposite — a sanitized golden-trace
run reports zero violations and produces byte-identical output.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.hardware import NVLINK
from repro.simulator import (
    KVBlockManager,
    SanitizerError,
    SimSanitizer,
    Simulation,
    TransferEngine,
    to_jsonl,
)
from tests.test_golden_trace import GOLDEN_FILE, build_golden_spans


def kinds(sanitizer: SimSanitizer) -> "list[str]":
    return [v.kind for v in sanitizer.violations]


# ----------------------------------------------------------------------
# Virtual-time monotonicity
# ----------------------------------------------------------------------

class TestTimeInvariants:
    def test_past_schedule_strict_raises(self):
        san = SimSanitizer(strict=True)
        sim = san.simulation()
        with pytest.raises(SanitizerError) as excinfo:
            sim.schedule(-1.0, lambda: None)
        assert excinfo.value.violation.kind == "past-schedule"

    def test_past_schedule_lenient_clamps_and_continues(self):
        san = SimSanitizer(strict=False)
        sim = san.simulation()
        fired = []
        sim.schedule(-0.5, lambda: fired.append(sim.now))
        sim.run()
        assert kinds(san) == ["past-schedule"]
        # The clamp dispatches the event at the current time, never earlier.
        assert fired == [0.0]

    def test_past_schedule_at_lenient_clamps(self):
        san = SimSanitizer(strict=False)
        sim = san.simulation()
        sim.schedule(1.0, lambda: sim.schedule_at(0.25, lambda: None))
        sim.run()
        assert kinds(san) == ["past-schedule"]
        assert sim.now >= 1.0

    def test_time_regression_detected(self):
        san = SimSanitizer(strict=False)
        sim = san.simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        # Tamper with the clock the way only buggy code could — the
        # pending t=1.0 event is now in the past.
        sim._now = 5.0
        sim.run()
        assert kinds(san) == ["time-regression"]
        # Lenient recovery: the clock never moves backwards.
        assert fired == [5.0]
        assert sim.now == 5.0

    def test_clean_run_has_no_violations(self):
        san = SimSanitizer(strict=True)
        sim = san.simulation()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.run()
        assert order == ["a", "b"]
        assert san.ok
        assert san.report() == "SimSanitizer: 0 violations"


# ----------------------------------------------------------------------
# Request conservation
# ----------------------------------------------------------------------

class _FakeSystem:
    """Minimal system exposing the surface _SystemWatch observes."""

    def __init__(self) -> None:
        self.records: "list[object]" = []
        self.rejections = 0
        self.unfinished = 0

    def submit(self, request: object) -> None:
        self.unfinished += 1

    def _complete(self, state: object) -> None:
        self.unfinished -= 1
        self.records.append(state)


class TestConservation:
    def test_balanced_system_passes(self):
        san = SimSanitizer(strict=True)
        system = _FakeSystem()
        san.watch_system(system)
        states = [SimpleNamespace(request_id=i) for i in range(3)]
        for state in states:
            system.submit(state)
        for state in states:
            system._complete(state)
        san.check_quiesce()
        assert san.ok

    def test_stuck_request_detected(self):
        san = SimSanitizer(strict=False)
        system = _FakeSystem()
        san.watch_system(system)
        states = [SimpleNamespace(request_id=i) for i in range(3)]
        for state in states:
            system.submit(state)
        for state in states[:2]:
            system._complete(state)
        san.check_quiesce()
        assert kinds(san) == ["conservation"]
        assert "in flight" in san.violations[0].message

    def test_lost_request_detected(self):
        san = SimSanitizer(strict=False)
        system = _FakeSystem()
        san.watch_system(system)
        system.submit(SimpleNamespace(request_id=0))
        system.submit(SimpleNamespace(request_id=1))
        system._complete(SimpleNamespace(request_id=0))
        # Simulate an accounting bug: a request vanishes without being
        # completed, rejected, or left in flight.
        system.unfinished = 0
        san.check_quiesce()
        assert kinds(san) == ["conservation"]
        assert "arrivals (2)" in san.violations[0].message

    def test_duplicate_completion_detected(self):
        san = SimSanitizer(strict=False)
        system = _FakeSystem()
        san.watch_system(system)
        state = SimpleNamespace(request_id=7)
        system.submit(state)
        system._complete(state)
        system._complete(state)
        assert "duplicate-completion" in kinds(san)
        assert san.violations[0].request_id == 7


# ----------------------------------------------------------------------
# KV-block leaks
# ----------------------------------------------------------------------

class TestKvLeak:
    def test_leak_detected_with_holder_ids(self):
        san = SimSanitizer(strict=False)
        manager = KVBlockManager(total_blocks=8, block_size=16)
        san.watch_kv(manager, owner="prefill-0")
        manager.allocate(42, num_tokens=20)
        san.check_quiesce()
        assert kinds(san) == ["kv-leak"]
        violation = san.violations[0]
        assert violation.request_id == 42
        assert "prefill-0" in violation.message and "42" in violation.message

    def test_freed_blocks_pass(self):
        san = SimSanitizer(strict=True)
        manager = KVBlockManager(total_blocks=8, block_size=16)
        san.watch_kv(manager)
        manager.allocate(1, num_tokens=20)
        manager.free(1)
        san.check_quiesce()
        assert san.ok


# ----------------------------------------------------------------------
# Transfer-engine double-free
# ----------------------------------------------------------------------

class _DoubleFireEngine:
    """A buggy engine that invokes the completion callback twice."""

    def submit(self, request_id, num_bytes, link, on_done,
               num_parallel_channels=1):
        on_done()
        on_done()


class TestTransferWatch:
    def test_double_submit_detected(self):
        san = SimSanitizer(strict=False)
        sim = san.simulation()
        engine = TransferEngine(sim)
        san.watch_transfer_engine(engine)
        engine.submit(1, 1e6, NVLINK, lambda: None)
        engine.submit(1, 1e6, NVLINK, lambda: None)
        assert "transfer-double-submit" in kinds(san)
        assert san.violations[0].request_id == 1

    def test_resubmit_after_completion_is_fine(self):
        san = SimSanitizer(strict=True)
        sim = san.simulation()
        engine = TransferEngine(sim)
        san.watch_transfer_engine(engine)
        engine.submit(1, 1e6, NVLINK, lambda: None)
        sim.run()
        engine.submit(1, 1e6, NVLINK, lambda: None)
        sim.run()
        san.check_quiesce()
        assert san.ok

    def test_double_complete_detected(self):
        san = SimSanitizer(strict=False)
        engine = _DoubleFireEngine()
        san.watch_transfer_engine(engine)
        done = []
        engine.submit(3, 1e6, NVLINK, lambda: done.append(True))
        assert kinds(san) == ["transfer-double-complete"]
        assert san.violations[0].request_id == 3
        # The user callback still runs both times — the watch observes,
        # it does not change behavior.
        assert done == [True, True]

    def test_outstanding_transfer_at_quiesce_detected(self):
        san = SimSanitizer(strict=False)
        sim = san.simulation()
        engine = TransferEngine(sim)
        san.watch_transfer_engine(engine)
        engine.submit(9, 1e6, NVLINK, lambda: None)
        # Quiesce without running the simulation: the transfer's
        # completion event is still pending.
        san.check_quiesce()
        assert kinds(san) == ["transfer-outstanding"]
        assert san.violations[0].request_id == 9


# ----------------------------------------------------------------------
# Sanitized runs are byte-identical (acceptance criterion)
# ----------------------------------------------------------------------

class TestGoldenUnderSanitizer:
    def test_golden_trace_sanitized_byte_identical(self):
        san = SimSanitizer(strict=True)
        spans = build_golden_spans(sanitizer=san)
        san.check_quiesce()
        assert san.ok, san.report()
        assert to_jsonl(spans).encode("utf-8") == GOLDEN_FILE.read_bytes(), (
            "sanitized golden run diverged from the fixture — the "
            "sanitizer must be a pure observer"
        )

    def test_sanitized_equals_plain_run(self):
        plain = to_jsonl(build_golden_spans())
        san = SimSanitizer(strict=True)
        sanitized = to_jsonl(build_golden_spans(sanitizer=san))
        assert plain == sanitized

    def test_report_lists_violations(self):
        san = SimSanitizer(strict=False)
        sim = san.simulation()
        sim.schedule(-1.0, lambda: None)
        report = san.report()
        assert report.startswith("SimSanitizer: 1 violation(s)")
        assert "past-schedule" in report


class TestSimulationParity:
    def test_until_and_max_events_semantics_match_base(self):
        def drive(sim: Simulation) -> "tuple[list[float], float]":
            fired: "list[float]" = []
            for t in (0.5, 1.5, 2.5, 3.5):
                sim.schedule_at(t, lambda t=t: fired.append(t))
            sim.run(until=2.0)
            mid = sim.now
            sim.run(max_events=1)
            sim.run()
            return fired, mid

        base = drive(Simulation())
        sanitized = drive(SimSanitizer(strict=True).simulation())
        assert base == sanitized
