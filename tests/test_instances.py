"""Tests for prefill, decode, and colocated instances."""

import pytest

from repro.latency import ParallelismConfig
from repro.simulator import (
    ColocatedInstance,
    DecodeInstance,
    InstanceSpec,
    PrefillInstance,
    RequestState,
    Simulation,
)
from repro.workload import Request


def make_states(lens_and_outs, start_id=0):
    return [
        RequestState(
            request=Request(
                request_id=start_id + i,
                arrival_time=0.0,
                input_len=inp,
                output_len=out,
            )
        )
        for i, (inp, out) in enumerate(lens_and_outs)
    ]


class TestInstanceSpec:
    def test_kv_capacity_positive(self, tiny_spec):
        assert tiny_spec.kv_token_capacity() > 0

    def test_more_gpus_more_capacity(self, opt66b):
        s2 = InstanceSpec(model=opt66b, config=ParallelismConfig(2, 1))
        s4 = InstanceSpec(model=opt66b, config=ParallelismConfig(2, 2))
        assert s4.kv_token_capacity() > s2.kv_token_capacity()

    def test_invalid_config_rejected(self, opt13b):
        with pytest.raises(ValueError):
            InstanceSpec(model=opt13b, config=ParallelismConfig(16, 1))

    def test_make_kv_manager(self, tiny_spec):
        kv = tiny_spec.make_kv_manager()
        assert kv.total_blocks == tiny_spec.kv_token_capacity() // tiny_spec.block_size


class TestPrefillInstance:
    def test_fcfs_completion_order(self, tiny_spec):
        sim = Simulation()
        done = []
        inst = PrefillInstance(sim, tiny_spec, on_prefill_done=lambda s: done.append(s.request_id))
        big = tiny_spec.model.max_seq_len  # force separate batches
        for state in make_states([(big, 2), (big, 2), (big, 2)]):
            inst.submit(state)
        sim.run()
        assert done == [0, 1, 2]

    def test_batch_shaping_respects_token_limit(self, tiny_spec):
        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim, tiny_spec, on_prefill_done=lambda s: done.append(sim.now),
            batch_token_limit=256,
        )
        # Two short prompts fit one batch; the third must wait.
        for state in make_states([(100, 2), (100, 2), (100, 2)]):
            inst.submit(state)
        sim.run()
        assert done[0] == done[1]  # batched together
        assert done[2] > done[1]

    def test_long_request_runs_alone(self, tiny_spec):
        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim, tiny_spec, on_prefill_done=lambda s: done.append((s.request_id, sim.now)),
            batch_token_limit=128,
        )
        for state in make_states([(1000, 2), (50, 2)]):
            inst.submit(state)
        sim.run()
        assert done[0][0] == 0 and done[1][0] == 1
        assert done[1][1] > done[0][1]

    def test_first_token_recorded_at_prefill_end(self, tiny_spec):
        sim = Simulation()
        out = []
        inst = PrefillInstance(sim, tiny_spec, on_prefill_done=out.append)
        inst.submit(make_states([(200, 3)])[0])
        sim.run()
        state = out[0]
        assert state.generated == 1
        assert state.token_times[0] == state.timestamps["prefill_end"]
        assert state.timestamps["prefill_end"] > 0

    def test_kv_held_until_released(self, tiny_spec):
        sim = Simulation()
        out = []
        inst = PrefillInstance(sim, tiny_spec, on_prefill_done=out.append)
        inst.submit(make_states([(200, 2)])[0])
        sim.run()
        assert inst.kv_tokens_held() >= 200
        inst.release_kv(out[0].request_id)
        assert inst.kv_tokens_held() == 0

    def test_pipeline_admits_before_completion(self, tiny_model):
        # pp=2: the second batch starts after one stage, not after the
        # full first-batch latency, so both finish sooner than serial.
        spec_pp = InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 2))
        spec_serial = InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 1))
        finish = {}
        for name, spec in (("pp", spec_pp), ("serial", spec_serial)):
            sim = Simulation()
            done = []
            inst = PrefillInstance(
                sim, spec, on_prefill_done=lambda s: done.append(sim.now),
                batch_token_limit=600,
            )
            for state in make_states([(600, 2), (600, 2)]):
                inst.submit(state)
            sim.run()
            finish[name] = done[-1]
        assert finish["pp"] < finish["serial"]


class TestDecodeInstance:
    def test_generates_all_tokens(self, tiny_spec):
        sim = Simulation()
        done = []
        inst = DecodeInstance(sim, tiny_spec, on_request_done=done.append)
        state = make_states([(100, 5)])[0]
        state.record_token(0.0)  # first token from (skipped) prefill
        inst.submit(state)
        sim.run()
        assert len(done) == 1
        assert done[0].is_finished
        assert done[0].generated == 5

    def test_continuous_batching_admits_midstream(self, tiny_spec):
        sim = Simulation()
        done = []
        inst = DecodeInstance(sim, tiny_spec, on_request_done=lambda s: done.append(s.request_id))
        first, second = make_states([(100, 50), (100, 5)])
        first.record_token(0.0)
        second.record_token(0.0)
        inst.submit(first)
        # Second arrives later but finishes first (fewer tokens).
        sim.schedule(0.05, lambda: inst.submit(second))
        sim.run()
        assert done == [1, 0]

    def test_memory_gate_blocks_admission(self, tiny_model):
        spec = InstanceSpec(model=tiny_model, max_batch_size=4)
        sim = Simulation()
        inst = DecodeInstance(sim, spec, on_request_done=lambda s: None)
        capacity = inst.kv_capacity_tokens()
        huge = RequestState(
            request=Request(
                request_id=0, arrival_time=0.0,
                input_len=max(1, capacity - 10), output_len=100,
            )
        )
        assert not inst.can_reserve(huge)

    def test_max_batch_size_respected(self, tiny_model):
        spec = InstanceSpec(model=tiny_model, max_batch_size=2)
        sim = Simulation()
        inst = DecodeInstance(sim, spec, on_request_done=lambda s: None)
        states = make_states([(50, 30)] * 5)
        for s in states:
            s.record_token(0.0)
            inst.submit(s)
        sim.run(until=0.01)
        assert inst.active_batch_size <= 2

    def test_load_counts_waiting_and_active(self, tiny_spec):
        sim = Simulation()
        inst = DecodeInstance(sim, tiny_spec, on_request_done=lambda s: None)
        states = make_states([(50, 10)] * 3)
        for s in states:
            s.record_token(0.0)
            inst.submit(s)
        assert inst.load == 3


class TestColocatedInstance:
    def _run(self, tiny_spec, policy, reqs=None):
        sim = Simulation()
        done = []
        inst = ColocatedInstance(sim, tiny_spec, on_request_done=done.append, policy=policy)
        for state in make_states(reqs or [(200, 5), (300, 3)]):
            inst.submit(state)
        sim.run()
        return done, inst

    @pytest.mark.parametrize("policy", ["prefill_priority", "combined", "chunked"])
    def test_all_policies_complete_requests(self, tiny_spec, policy):
        done, _ = self._run(tiny_spec, policy)
        assert len(done) == 2
        assert all(s.is_finished for s in done)

    def test_records_well_formed(self, tiny_spec):
        done, _ = self._run(tiny_spec, "prefill_priority")
        for state in done:
            rec = state.to_record()
            assert rec.ttft > 0
            assert rec.tpot >= 0
            assert rec.transfer_time == 0.0  # colocated: no migration

    def test_prefill_priority_counts_iterations(self, tiny_spec):
        _, inst = self._run(tiny_spec, "prefill_priority")
        assert inst.prefill_iterations >= 1
        assert inst.decode_iterations >= 1
        assert inst.mixed_iterations == 0

    def test_chunked_uses_mixed_iterations(self, tiny_spec):
        _, inst = self._run(tiny_spec, "chunked", reqs=[(2000, 5)])
        # 2000-token prompt at 512 chunk size -> at least 4 mixed iterations.
        assert inst.mixed_iterations >= 4

    def test_chunked_single_first_token(self, tiny_spec):
        done, _ = self._run(tiny_spec, "chunked", reqs=[(1500, 4)])
        state = done[0]
        assert state.generated == 4
        assert len(state.token_times) == 4

    def test_unknown_policy_rejected(self, tiny_spec):
        sim = Simulation()
        with pytest.raises(ValueError):
            ColocatedInstance(sim, tiny_spec, on_request_done=lambda s: None, policy="fifo")

    def test_interference_decode_stalls_during_prefill(self, tiny_model):
        # A long prompt arriving mid-decode must stretch the running
        # request's token gap (Figure 2's effect).
        spec = InstanceSpec(model=tiny_model)
        sim = Simulation()
        done = []
        inst = ColocatedInstance(sim, spec, on_request_done=done.append)
        decode_req = make_states([(64, 40)])[0]
        inst.submit(decode_req)
        long_prompt = RequestState(
            request=Request(request_id=99, arrival_time=0.0, input_len=2000, output_len=2)
        )
        sim.schedule(0.05, lambda: inst.submit(long_prompt))
        sim.run()
        gaps = [
            b - a
            for a, b in zip(decode_req.token_times, decode_req.token_times[1:])
        ]
        assert max(gaps) > 3 * min(gaps)


class TestPriorityPolicies:
    """§2.3: prioritizing either phase hurts the other's latency."""

    def _run_policy(self, tiny_spec, policy):
        import numpy as np

        from repro.workload import fixed_length_dataset, generate_trace

        trace = generate_trace(
            fixed_length_dataset(768, 48), rate=12.0, num_requests=150,
            rng=np.random.default_rng(4),
        )
        sim = Simulation()
        done = []
        inst = ColocatedInstance(
            sim, tiny_spec, on_request_done=done.append, policy=policy
        )
        for req in trace:
            sim.schedule_at(
                req.arrival_time,
                lambda r=req: inst.submit(RequestState(request=r)),
            )
        sim.run(max_events=2_000_000)
        records = [s.to_record() for s in done]
        import numpy as np

        return (
            float(np.percentile([r.ttft for r in records], 90)),
            float(np.percentile([r.tpot for r in records], 90)),
        )

    def test_each_priority_hurts_the_other_phase(self, tiny_spec):
        ttft_pp, tpot_pp = self._run_policy(tiny_spec, "prefill_priority")
        ttft_dp, tpot_dp = self._run_policy(tiny_spec, "decode_priority")
        # Prefill priority: better TTFT, worse TPOT. Decode priority: the
        # reverse. Neither fixes both — the paper's §2.3 observation.
        assert ttft_pp < ttft_dp
        assert tpot_dp < tpot_pp

    def test_decode_priority_completes_everything(self, tiny_spec):
        sim = Simulation()
        done = []
        inst = ColocatedInstance(
            sim, tiny_spec, on_request_done=done.append, policy="decode_priority"
        )
        for state in make_states([(200, 5), (300, 3), (100, 8)]):
            inst.submit(state)
        sim.run()
        assert len(done) == 3
        assert all(s.is_finished for s in done)
