"""Smoke tests keeping the fast example scripts runnable.

The slow examples (placement search) are exercised by the benchmarks;
here we import and run the cheap ones so documentation code cannot rot.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "api_frontend.py",
    "cost_analysis.py",
    "fault_injection.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_complete(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        # The README's example table and the quickstart must exist.
        for required in (
            "quickstart.py",
            "placement_planner.py",
            "summarization_vs_chatbot.py",
            "queueing_analysis.py",
            "replanning_demo.py",
            "burstiness_pull_vs_push.py",
            "api_frontend.py",
            "fault_injection.py",
            "cost_analysis.py",
        ):
            assert required in scripts, required

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_example_runs(self, name, capsys):
        module = load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert out.strip(), f"{name} produced no output"

    def test_quickstart_reports_attainment(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "SLO attainment" in out
        assert "TTFT" in out and "TPOT" in out

    def test_fault_injection_shows_propagation(self, capsys):
        load_example("fault_injection.py").main()
        out = capsys.readouterr().out
        assert "kill decode" in out and "kill prefill" in out
