"""Tests for the core layer: goodput search, placement algorithms, replan."""

import numpy as np
import pytest

from repro.core import (
    DriftThresholds,
    GoodputResult,
    PhasePlan,
    Placement,
    PlacementSearchStats,
    ReplanController,
    WorkloadProfiler,
    attainment_at_rate,
    build_system,
    candidate_configs,
    get_intra_node_configs,
    max_goodput,
    place_high_affinity,
    place_low_affinity,
    simu_decode,
    simu_prefill,
)
from repro.hardware import Cluster, Node, paper_testbed
from repro.latency import ParallelismConfig
from repro.serving import ColocatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SLO, Request, Trace, fixed_length_dataset, generate_trace


@pytest.fixture
def fast_dataset():
    return fixed_length_dataset(512, 32)


@pytest.fixture
def loose_slo():
    return SLO(ttft=0.5, tpot=0.2)


def colocated_factory(spec):
    def factory(sim):
        return ColocatedSystem(sim, spec)

    return factory


class TestGoodputSearch:
    def test_attainment_decreases_with_rate(self, tiny_spec, fast_dataset, loose_slo):
        low = attainment_at_rate(
            colocated_factory(tiny_spec), fast_dataset, 1.0, loose_slo, num_requests=80
        )
        high = attainment_at_rate(
            colocated_factory(tiny_spec), fast_dataset, 400.0, loose_slo, num_requests=80
        )
        assert low > high

    def test_max_goodput_is_sustainable(self, tiny_spec, fast_dataset, loose_slo):
        result = max_goodput(
            colocated_factory(tiny_spec),
            fast_dataset,
            loose_slo,
            num_requests=80,
        )
        assert result.goodput > 0
        assert result.attainment_at_goodput >= 0.9
        # Just above goodput, attainment should drop below target within
        # the search's own trace.
        above = attainment_at_rate(
            colocated_factory(tiny_spec), fast_dataset, result.goodput * 2.5,
            loose_slo, num_requests=80,
        )
        assert above < 0.9

    def test_impossible_slo_returns_zero(self, tiny_spec, fast_dataset):
        impossible = SLO(ttft=1e-6, tpot=1e-6)
        result = max_goodput(
            colocated_factory(tiny_spec), fast_dataset, impossible, num_requests=30
        )
        assert result.goodput == 0.0

    def test_invalid_target(self, tiny_spec, fast_dataset, loose_slo):
        with pytest.raises(ValueError):
            max_goodput(
                colocated_factory(tiny_spec), fast_dataset, loose_slo,
                attainment_target=1.5,
            )


class TestPhaseSimulation:
    def test_simu_prefill_ignores_tpot(self, tiny_spec, fast_dataset):
        # TPOT bound of 1 ns must not affect a prefill-only search.
        strict_tpot = SLO(ttft=0.5, tpot=1e-9)
        result = simu_prefill(tiny_spec, fast_dataset, strict_tpot, num_requests=60)
        assert result.goodput > 0

    def test_simu_decode_ignores_ttft(self, tiny_spec, fast_dataset):
        strict_ttft = SLO(ttft=1e-9, tpot=0.2)
        result = simu_decode(tiny_spec, fast_dataset, strict_ttft, num_requests=60)
        assert result.goodput > 0

    def test_candidate_configs_validity(self):
        configs = candidate_configs(model_heads=40, model_layers=40, max_tp=8, max_gpus=16)
        assert ParallelismConfig(1, 1) in configs
        assert ParallelismConfig(2, 8) in configs
        assert all(40 % c.tp == 0 for c in configs)
        assert all(c.num_gpus <= 16 for c in configs)
        assert ParallelismConfig(3, 1) not in configs  # 3 does not divide 40


class TestPlacementTypes:
    def test_placement_arithmetic(self):
        p = Placement(
            prefill=PhasePlan(ParallelismConfig(2, 1), 3, 4.0),
            decode=PhasePlan(ParallelismConfig(1, 1), 2, 7.0),
        )
        assert p.num_gpus == 8
        assert p.system_goodput == pytest.approx(12.0)  # min(12, 14)
        assert p.per_gpu_goodput == pytest.approx(1.5)
        assert "tp=2" in p.describe()

    def test_invalid_phase_plan(self):
        with pytest.raises(ValueError):
            PhasePlan(ParallelismConfig(1, 1), 0, 1.0)


class TestIntraNodeConfigs:
    def test_respects_node_size(self, opt13b):
        from repro.hardware import A100_80GB

        configs = get_intra_node_configs(
            opt13b, inter_op=1, gpus_per_node=8, gpu_memory_bytes=A100_80GB.memory_bytes
        )
        assert configs
        assert all(c.gpus_per_node <= 8 for c in configs)

    def test_memory_gate(self, opt66b):
        from repro.hardware import A100_80GB

        configs = get_intra_node_configs(
            opt66b, inter_op=1, gpus_per_node=8, gpu_memory_bytes=A100_80GB.memory_bytes
        )
        # 66B needs >= 2 GPUs per full copy at inter_op=1.
        assert all(c.prefill_tp >= 2 and c.decode_tp >= 2 for c in configs)


class TestPlacementSearch:
    @pytest.fixture
    def small_cluster(self, tiny_model):
        return Cluster(nodes=[Node(index=i, num_gpus=4) for i in range(2)])

    def test_high_affinity_search(self, tiny_model, small_cluster, fast_dataset, loose_slo):
        stats = PlacementSearchStats()
        plm = place_high_affinity(
            tiny_model, small_cluster, fast_dataset, loose_slo,
            traffic_rate=5.0, num_requests=60, stats=stats,
        )
        assert plm.system_goodput >= 5.0 or plm.prefill.num_instances >= 1
        assert stats.configs_evaluated > 0
        assert not plm.kv_transfer_intra_node

    def test_low_affinity_search(self, tiny_model, small_cluster, fast_dataset, loose_slo):
        plm = place_low_affinity(
            tiny_model, small_cluster, fast_dataset, loose_slo,
            traffic_rate=5.0, num_requests=60, joint_sim_candidates=2,
        )
        assert plm.kv_transfer_intra_node
        # Stage colocation: both phases share the inter-op degree.
        assert plm.prefill.config.pp == plm.decode.config.pp
        # The unit must fit in one node per stage.
        assert plm.prefill.config.tp + plm.decode.config.tp <= small_cluster.gpus_per_node

    def test_replication_meets_traffic(self, tiny_model, small_cluster, fast_dataset, loose_slo):
        plm = place_high_affinity(
            tiny_model, small_cluster, fast_dataset, loose_slo,
            traffic_rate=40.0, num_requests=60,
        )
        assert plm.prefill.total_goodput >= 40.0 * 0.95
        assert plm.decode.total_goodput >= 40.0 * 0.95

    def test_build_system_runs(self, tiny_model, small_cluster, fast_dataset, loose_slo, rng):
        plm = place_low_affinity(
            tiny_model, small_cluster, fast_dataset, loose_slo,
            traffic_rate=5.0, num_requests=60, joint_sim_candidates=1,
        )
        sim = Simulation()
        system = build_system(sim, tiny_model, plm, small_cluster)
        trace = generate_trace(fast_dataset, rate=3.0, num_requests=40, rng=rng)
        res = simulate_trace(system, trace)
        assert res.unfinished == 0

    def test_invalid_traffic_rate(self, tiny_model, small_cluster, fast_dataset, loose_slo):
        with pytest.raises(ValueError):
            place_high_affinity(
                tiny_model, small_cluster, fast_dataset, loose_slo, traffic_rate=0.0
            )


class TestReplan:
    def _trace(self, rate, input_len, n=200):
        gaps = np.full(n, 1.0 / rate)
        times = np.cumsum(gaps)
        return [
            Request(request_id=i, arrival_time=float(times[i]), input_len=input_len, output_len=8)
            for i in range(n)
        ]

    def test_profiler_window(self):
        prof = WorkloadProfiler(window_size=50)
        for r in self._trace(2.0, 100, n=80):
            prof.observe(r)
        assert len(prof) == 50
        assert prof.stats().mean_input_len == 100

    def test_no_drift_no_replan(self):
        prof = WorkloadProfiler(window_size=200)
        calls = []
        ctrl = ReplanController(prof, planner=lambda ds, rate: calls.append(1))
        base = Trace(requests=self._trace(2.0, 100))
        ctrl.initialize(placement=None, planned_stats=base.stats())
        for r in self._trace(2.0, 100):
            prof.observe(r)
        assert not ctrl.drift_detected()
        assert ctrl.maybe_replan() is None
        assert not calls

    def test_rate_drift_triggers_replan(self):
        prof = WorkloadProfiler(window_size=200)
        new_placements = []

        def planner(dataset, rate):
            new_placements.append(rate)
            return Placement(
                prefill=PhasePlan(ParallelismConfig(1, 1), 1, rate),
                decode=PhasePlan(ParallelismConfig(1, 1), 1, rate),
            )

        ctrl = ReplanController(prof, planner=planner)
        base = Trace(requests=self._trace(2.0, 100))
        ctrl.initialize(placement=None, planned_stats=base.stats())
        for r in self._trace(6.0, 100):  # 3x the planned rate
            prof.observe(r)
        assert ctrl.drift_detected()
        placement = ctrl.maybe_replan()
        assert placement is not None
        assert ctrl.replans == 1
        assert new_placements[0] == pytest.approx(6.0, rel=0.1)

    def test_length_drift_triggers(self):
        prof = WorkloadProfiler(window_size=200)
        ctrl = ReplanController(
            prof,
            planner=lambda ds, rate: Placement(
                prefill=PhasePlan(ParallelismConfig(1, 1), 1, rate),
                decode=PhasePlan(ParallelismConfig(1, 1), 1, rate),
            ),
        )
        base = Trace(requests=self._trace(2.0, 100))
        ctrl.initialize(placement=None, planned_stats=base.stats())
        for r in self._trace(2.0, 400):  # 4x longer prompts
            prof.observe(r)
        assert ctrl.drift_detected()

    def test_min_window_guard(self):
        prof = WorkloadProfiler(window_size=200)
        ctrl = ReplanController(prof, planner=lambda ds, rate: None, min_window=100)
        base = Trace(requests=self._trace(2.0, 100))
        ctrl.initialize(placement=None, planned_stats=base.stats())
        for r in self._trace(20.0, 100, n=50):
            prof.observe(r)
        assert not ctrl.drift_detected()

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DriftThresholds(rate_ratio=1.0)


class TestMinSLOScale:
    def test_tighter_is_harder(self, tiny_spec, fast_dataset):
        from repro.core import min_slo_scale

        base = SLO(ttft=0.5, tpot=0.2)
        scale, trials = min_slo_scale(
            colocated_factory(tiny_spec), fast_dataset, base,
            rate=5.0, num_requests=60,
        )
        assert trials >= 2
        assert 0.05 <= scale <= 4.0
        # Just below the found scale the system must fail.
        from repro.core import attainment_at_rate

        if scale > 0.06:
            att = attainment_at_rate(
                colocated_factory(tiny_spec), fast_dataset, 5.0,
                base.scaled(scale * 0.7), num_requests=60,
            )
            assert att < 0.9

    def test_impossible_slo_inf(self, tiny_spec, fast_dataset):
        from repro.core import min_slo_scale

        base = SLO(ttft=1e-7, tpot=1e-7)
        scale, _ = min_slo_scale(
            colocated_factory(tiny_spec), fast_dataset, base,
            rate=5.0, num_requests=30, scale_hi=2.0,
        )
        assert scale == float("inf")

    def test_invalid_inputs(self, tiny_spec, fast_dataset):
        from repro.core import min_slo_scale

        with pytest.raises(ValueError):
            min_slo_scale(
                colocated_factory(tiny_spec), fast_dataset, SLO(1, 1), rate=0.0
            )
