"""Tests for the paged KV-cache block manager."""

import pytest

from repro.simulator import KVBlockManager, OutOfBlocksError


class TestKVBlockManager:
    def test_allocation_rounds_to_blocks(self):
        kv = KVBlockManager(total_blocks=10, block_size=16)
        kv.allocate(1, 17)  # needs 2 blocks
        assert kv.used_blocks == 2
        assert kv.free_blocks == 8
        assert kv.tokens_of(1) == 17

    def test_exact_block_boundary(self):
        kv = KVBlockManager(total_blocks=4, block_size=16)
        kv.allocate(1, 32)
        assert kv.used_blocks == 2

    def test_out_of_blocks(self):
        kv = KVBlockManager(total_blocks=2, block_size=16)
        with pytest.raises(OutOfBlocksError):
            kv.allocate(1, 33)
        assert kv.used_blocks == 0  # failed allocation leaves no residue

    def test_double_allocate_rejected(self):
        kv = KVBlockManager(total_blocks=10)
        kv.allocate(1, 5)
        with pytest.raises(ValueError):
            kv.allocate(1, 5)

    def test_append_within_block_free(self):
        kv = KVBlockManager(total_blocks=10, block_size=16)
        kv.allocate(1, 10)
        kv.append(1, 5)
        assert kv.used_blocks == 1
        kv.append(1, 2)  # crosses into a second block
        assert kv.used_blocks == 2
        assert kv.tokens_of(1) == 17

    def test_append_unknown_request(self):
        kv = KVBlockManager(total_blocks=10)
        with pytest.raises(KeyError):
            kv.append(42)

    def test_append_out_of_blocks(self):
        kv = KVBlockManager(total_blocks=1, block_size=4)
        kv.allocate(1, 4)
        with pytest.raises(OutOfBlocksError):
            kv.append(1)

    def test_can_append_semantics(self):
        kv = KVBlockManager(total_blocks=1, block_size=4)
        kv.allocate(1, 3)
        assert kv.can_append(1)       # still room in the block
        kv.append(1)
        assert not kv.can_append(1)   # next token needs a new block
        assert not kv.can_append(99)  # unknown request

    def test_free_is_idempotent(self):
        kv = KVBlockManager(total_blocks=10, block_size=16)
        kv.allocate(1, 20)
        assert kv.free(1) == 2
        assert kv.free(1) == 0
        assert kv.used_blocks == 0

    def test_free_enables_reuse(self):
        kv = KVBlockManager(total_blocks=2, block_size=16)
        kv.allocate(1, 32)
        assert not kv.can_allocate(1)
        kv.free(1)
        kv.allocate(2, 32)
        assert kv.tokens_of(2) == 32

    def test_utilization(self):
        kv = KVBlockManager(total_blocks=4, block_size=16)
        assert kv.utilization == 0.0
        kv.allocate(1, 32)
        assert kv.utilization == 0.5
        empty = KVBlockManager(total_blocks=0)
        assert empty.utilization == 1.0

    def test_holders_ordering(self):
        kv = KVBlockManager(total_blocks=10)
        kv.allocate(3, 1)
        kv.allocate(1, 1)
        kv.allocate(2, 1)
        assert kv.holders() == [3, 1, 2]

    def test_conservation_invariant(self):
        kv = KVBlockManager(total_blocks=100, block_size=8)
        for i in range(10):
            kv.allocate(i, 8 * (i + 1))
        for i in range(0, 10, 2):
            kv.free(i)
        assert kv.used_blocks + kv.free_blocks == kv.total_blocks
        assert kv.used_blocks == sum(i + 1 for i in range(1, 10, 2))

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            KVBlockManager(total_blocks=-1)
        with pytest.raises(ValueError):
            KVBlockManager(total_blocks=1, block_size=0)
