"""Property-based tests over whole serving systems.

For arbitrary small workloads, both serving architectures must conserve
requests, deliver exact token counts, and respect causality — under any
dispatch policy and parallelism configuration hypothesis picks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.latency import ParallelismConfig
from repro.models import ModelArchitecture
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation
from repro.workload import Request, Trace

MODEL = ModelArchitecture("prop-serve", 8, 1024, 8, 4096)

requests_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),   # arrival
        st.integers(min_value=1, max_value=1024),  # input_len
        st.integers(min_value=1, max_value=64),    # output_len
    ),
    min_size=1,
    max_size=25,
)


def make_trace(raw):
    return Trace(
        requests=[
            Request(request_id=i, arrival_time=t, input_len=inp, output_len=out)
            for i, (t, inp, out) in enumerate(raw)
        ]
    )


def check_result(res, trace):
    assert res.unfinished == 0
    assert sorted(r.request_id for r in res.records) == sorted(
        r.request_id for r in trace
    )
    by_id = {r.request_id: r for r in trace}
    for rec in res.records:
        origin = by_id[rec.request_id]
        assert rec.output_len == origin.output_len
        assert rec.ttft >= 0
        assert rec.tpot >= 0
        assert rec.finish_time >= origin.arrival_time + rec.ttft - 1e-9


class TestServingConservation:
    @given(raw=requests_strategy, policy=st.sampled_from(["prefill_priority", "combined", "chunked"]))
    @settings(max_examples=40, deadline=None)
    def test_colocated_conserves(self, raw, policy):
        trace = make_trace(raw)
        sim = Simulation()
        spec = InstanceSpec(model=MODEL)
        system = ColocatedSystem(sim, spec, policy=policy)
        res = simulate_trace(system, trace, max_events=500_000)
        check_result(res, trace)

    @given(
        raw=requests_strategy,
        n_p=st.integers(min_value=1, max_value=3),
        n_d=st.integers(min_value=1, max_value=3),
        mode=st.sampled_from(["pull", "push"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_disaggregated_conserves(self, raw, n_p, n_d, mode):
        trace = make_trace(raw)
        sim = Simulation()
        spec = InstanceSpec(model=MODEL)
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=n_p, num_decode=n_d, transfer_mode=mode
        )
        res = simulate_trace(system, trace, max_events=500_000)
        check_result(res, trace)

    @given(
        raw=requests_strategy,
        tp=st.sampled_from([1, 2, 4]),
        pp=st.sampled_from([1, 2]),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallelism_variants_conserve(self, raw, tp, pp):
        trace = make_trace(raw)
        sim = Simulation()
        spec = InstanceSpec(model=MODEL, config=ParallelismConfig(tp, pp))
        system = DisaggregatedSystem(sim, spec, spec)
        res = simulate_trace(system, trace, max_events=500_000)
        check_result(res, trace)

    @given(raw=requests_strategy, fail_at=st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_decode_failure_conserves(self, raw, fail_at):
        trace = make_trace(raw)
        sim = Simulation()
        spec = InstanceSpec(model=MODEL)
        system = DisaggregatedSystem(sim, spec, spec, num_prefill=2, num_decode=2)
        for req in trace:
            sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
        sim.schedule(fail_at, lambda: system.fail_decode("decode-1"))
        sim.run(max_events=500_000)
        assert len(system.records) == len(trace)
        by_id = {r.request_id: r for r in trace}
        for rec in system.records:
            assert rec.output_len == by_id[rec.request_id].output_len
