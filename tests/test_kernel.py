"""Fast-forward kernel parity suite.

The kernel (macro-stepped decode runs + memoized batch latency, see
DESIGN.md §4h) promises *bitwise* equality with the per-step reference
path. Every test here runs the same workload twice — ``fast_kernel=True``
and ``fast_kernel=False`` — and asserts exact float equality on request
records, token timestamps, and instance counters. No tolerances.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.hardware import A100_80GB, ETHERNET_25G
from repro.latency import ParallelismConfig, coefficients_from_roofline
from repro.latency.memo import DecodeStepTimer, PrefillBatchTimer
from repro.latency.parallel import decode_times, prefill_times
from repro.models.memory import compute_memory_budget
from repro.serving import (
    ColocatedSystem,
    DecodeOnlySystem,
    DisaggregatedSystem,
    PrefillOnlySystem,
    simulate_trace,
)
from repro.simulator import InstanceSpec, SimSanitizer, Simulation
from repro.simulator.colocated_instance import POLICIES
from repro.simulator.decode_instance import DecodeInstance
from repro.simulator.metrics import MetricsRegistry
from repro.simulator.request import Request, RequestPhase, RequestState
from repro.simulator.tracing import Tracer
from repro.workload import fixed_length_dataset, generate_trace
from repro.workload.datasets import SyntheticDataset
from repro.workload.distributions import LognormalLength


# ----------------------------------------------------------------------
# Memoized timers mirror the reference latency model bitwise.
# ----------------------------------------------------------------------
class TestMemoTimers:
    @pytest.mark.parametrize("tp,pp", [(1, 1), (2, 1), (1, 2), (2, 2)])
    def test_decode_timer_bitwise(self, tiny_model, tp, pp):
        coeffs = coefficients_from_roofline(A100_80GB)
        config = ParallelismConfig(tp, pp)
        timer = DecodeStepTimer(tiny_model, config, coeffs)
        rng = np.random.default_rng(0)
        for _ in range(50):
            lens = [int(x) for x in rng.integers(1, 2000, rng.integers(1, 64))]
            ref = decode_times(tiny_model, config, coeffs, lens).request_latency
            got = timer.request_latency(len(lens), sum(lens))
            assert got == ref  # bitwise, no tolerance

    def test_step_latency_fn_matches_request_latency(self, tiny_model):
        coeffs = coefficients_from_roofline(A100_80GB)
        timer = DecodeStepTimer(tiny_model, ParallelismConfig(2, 2), coeffs)
        for batch in (1, 3, 17):
            fn = timer.step_latency_fn(batch)
            for context in (batch, 100, 5000, 123456):
                assert fn(context) == timer.request_latency(batch, context)

    def test_decode_timer_empty_batch(self, tiny_model):
        coeffs = coefficients_from_roofline(A100_80GB)
        timer = DecodeStepTimer(tiny_model, ParallelismConfig(1, 1), coeffs)
        assert timer.request_latency(0, 0) == 0.0
        assert timer.step_latency_fn(0)(0) == 0.0

    @pytest.mark.parametrize("tp,pp", [(1, 1), (2, 2)])
    def test_prefill_timer_bitwise(self, tiny_model, tp, pp):
        coeffs = coefficients_from_roofline(A100_80GB)
        config = ParallelismConfig(tp, pp)
        timer = PrefillBatchTimer(tiny_model, config, coeffs)
        rng = np.random.default_rng(1)
        for _ in range(50):
            lens = [int(x) for x in rng.integers(1, 1024, rng.integers(1, 16))]
            ref = prefill_times(tiny_model, config, coeffs, lens)
            total = sum(lens)
            squared = 0.0
            for length in lens:
                squared += length * length
            got_request, got_stage = timer.times(total, squared)
            assert got_request == ref.request_latency
            assert got_stage == ref.stage_time

    def test_timer_validation_hoisted(self, tiny_model):
        coeffs = coefficients_from_roofline(A100_80GB)
        with pytest.raises(ValueError):
            DecodeStepTimer(tiny_model, ParallelismConfig(3, 1), coeffs)
        with pytest.raises(ValueError):
            PrefillBatchTimer(tiny_model, ParallelismConfig(3, 1), coeffs)


# ----------------------------------------------------------------------
# System-level parity: identical records fast vs. slow.
# ----------------------------------------------------------------------
def _records(result):
    return sorted(
        (r.request_id, r.ttft, r.tpot, r.finish_time) for r in result.records
    )


def _parity(make_system, trace):
    """Run ``trace`` fast and slow; assert bitwise-identical records."""
    results = {}
    for fast in (True, False):
        sim = Simulation()
        system = make_system(sim, fast)
        results[fast] = simulate_trace(system, trace)
    assert results[True].completed == results[False].completed
    assert results[True].unfinished == results[False].unfinished
    assert _records(results[True]) == _records(results[False])
    return results[True]


@pytest.fixture
def trace(rng):
    dataset = SyntheticDataset(
        name="mix",
        input_dist=LognormalLength(median=192.0, sigma=0.6, low=32, high=768),
        output_dist=LognormalLength(median=24.0, sigma=0.7, low=4, high=128),
    )
    return generate_trace(dataset, rate=12.0, num_requests=120, rng=rng)


class TestServingParity:
    def test_decode_only(self, tiny_spec, trace):
        res = _parity(
            lambda sim, fast: DecodeOnlySystem(sim, tiny_spec, fast_kernel=fast),
            trace,
        )
        assert res.completed == len(trace)

    def test_prefill_only(self, tiny_spec, trace):
        _parity(
            lambda sim, fast: PrefillOnlySystem(sim, tiny_spec, fast_kernel=fast),
            trace,
        )

    @pytest.mark.parametrize("mode", ["pull", "push"])
    def test_disaggregated(self, tiny_spec, trace, mode):
        res = _parity(
            lambda sim, fast: DisaggregatedSystem(
                sim, tiny_spec, tiny_spec, num_prefill=2, num_decode=2,
                transfer_link=ETHERNET_25G, transfer_mode=mode,
                fast_kernel=fast,
            ),
            trace,
        )
        assert res.completed == len(trace)

    def test_disaggregated_jitter_and_pp(self, tiny_model, trace):
        spec = InstanceSpec(
            model=tiny_model, config=ParallelismConfig(1, 2), jitter_sigma=0.1
        )
        _parity(
            lambda sim, fast: DisaggregatedSystem(
                sim, spec, spec, fast_kernel=fast
            ),
            trace,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_colocated_policies(self, tiny_spec, trace, policy):
        _parity(
            lambda sim, fast: ColocatedSystem(
                sim, tiny_spec, num_replicas=2, policy=policy, fast_kernel=fast
            ),
            trace,
        )

    def test_sanitizer_clean_fast_run(self, tiny_spec, trace):
        sanitizer = SimSanitizer(strict=True)
        sim = sanitizer.simulation()
        system = DisaggregatedSystem(sim, tiny_spec, tiny_spec, fast_kernel=True)
        sanitizer.watch_system(system)
        res = simulate_trace(system, trace)
        sanitizer.check_quiesce()
        assert res.completed == len(trace)
        assert sanitizer.violations == []


# ----------------------------------------------------------------------
# Decode-instance parity under preemption, jitter, and failures.
# ----------------------------------------------------------------------
def _small_gpu(model, target_tokens):
    """A GPU sized so the decode KV pool holds ~``target_tokens``."""
    lo, hi = 1, A100_80GB.memory_bytes
    while lo < hi:
        mid = (lo + hi) // 2
        try:
            cap = compute_memory_budget(model, mid, 1, 1).max_kv_tokens
        except ValueError:
            cap = -1
        if cap < target_tokens:
            lo = mid + 1
        else:
            hi = mid
    return dataclasses.replace(A100_80GB, memory_bytes=lo)


def _drive_decode(spec, fast, *, n=60, seed=7, reserve=True, fail_at=None):
    """Feed ``n`` decode requests; return (records, counters, done-count)."""
    rng = np.random.default_rng(seed)
    sim = Simulation()
    done = []
    inst = DecodeInstance(
        sim, spec, done.append, reserve_full_context=reserve, fast_kernel=fast
    )
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(0.02))
        req = Request(
            request_id=i, arrival_time=t,
            input_len=int(rng.integers(50, 400)),
            output_len=int(rng.integers(20, 120)),
        )

        def submit(r=req):
            state = RequestState(
                request=r, phase=RequestPhase.WAITING_DECODE, generated=1
            )
            state.token_times.append(sim.now)
            inst.submit(state)

        sim.schedule_at(req.arrival_time, submit)
    if fail_at is not None:
        sim.schedule_at(fail_at, inst.fail)
    sim.run()
    records = sorted(
        (s.request_id, s.generated, tuple(s.token_times)) for s in done
    )
    counters = (
        inst.steps_executed,
        inst.preemptions,
        inst.tokens_generated,
        inst.busy_time,
    )
    return records, counters, len(done)


class TestDecodeInstanceParity:
    def test_optimistic_admission_preempts_identically(self, tiny_model):
        gpu = _small_gpu(tiny_model, 4000)
        spec = InstanceSpec(
            model=tiny_model, config=ParallelismConfig(1, 1), gpu=gpu
        )
        fast = _drive_decode(spec, True, reserve=False)
        slow = _drive_decode(spec, False, reserve=False)
        assert fast == slow
        assert fast[1][1] > 0  # the scenario really exercises preemption

    def test_reserved_admission_queues_identically(self, tiny_model):
        gpu = _small_gpu(tiny_model, 4000)
        spec = InstanceSpec(
            model=tiny_model, config=ParallelismConfig(1, 1), gpu=gpu
        )
        fast = _drive_decode(spec, True, reserve=True)
        slow = _drive_decode(spec, False, reserve=True)
        assert fast == slow

    def test_jitter_stream_identical(self, tiny_model):
        spec = InstanceSpec(
            model=tiny_model, config=ParallelismConfig(1, 1), jitter_sigma=0.08
        )
        assert _drive_decode(spec, True) == _drive_decode(spec, False)

    def test_jitter_with_preemption(self, tiny_model):
        gpu = _small_gpu(tiny_model, 4000)
        spec = InstanceSpec(
            model=tiny_model, config=ParallelismConfig(1, 1), gpu=gpu,
            jitter_sigma=0.05,
        )
        fast = _drive_decode(spec, True, reserve=False)
        slow = _drive_decode(spec, False, reserve=False)
        assert fast == slow

    def test_fail_mid_run_identical(self, tiny_spec):
        fast = _drive_decode(tiny_spec, True, fail_at=0.25)
        slow = _drive_decode(tiny_spec, False, fail_at=0.25)
        assert fast == slow

    def test_midstream_submit_truncates_run(self, tiny_spec):
        """The regression scenario: an event scheduled *after* a macro run

        was planned submits mid-run; the run must be truncated so the
        newcomer is admitted at the same boundary the per-step path
        would use.
        """
        results = {}
        for fast in (True, False):
            sim = Simulation()
            done = []
            inst = DecodeInstance(
                sim, tiny_spec, lambda s: done.append(s.request_id),
                fast_kernel=fast,
            )
            first = RequestState(
                request=Request(request_id=0, arrival_time=0.0,
                                input_len=100, output_len=50),
                phase=RequestPhase.WAITING_DECODE, generated=1,
            )
            inst.submit(first)
            second = RequestState(
                request=Request(request_id=1, arrival_time=0.0,
                                input_len=100, output_len=5),
                phase=RequestPhase.WAITING_DECODE, generated=1,
            )
            sim.schedule(0.05, lambda: inst.submit(second))
            sim.run()
            results[fast] = (
                done,
                tuple(first.token_times),
                tuple(second.token_times),
            )
        assert results[True] == results[False]
        assert results[True][0] == [1, 0]  # short newcomer finishes first


# ----------------------------------------------------------------------
# Observability forces the exact per-step path.
# ----------------------------------------------------------------------
class TestObservabilityFallback:
    def test_tracer_disables_fast_path(self, tiny_spec):
        sim = Simulation()
        tracer = Tracer()
        inst = DecodeInstance(
            sim, tiny_spec, lambda s: None, tracer=tracer, fast_kernel=True
        )
        assert not inst._fast

    def test_instrument_disables_fast_path(self, tiny_spec):
        sim = Simulation()
        inst = DecodeInstance(sim, tiny_spec, lambda s: None, fast_kernel=True)
        assert inst._fast
        inst.instrument(MetricsRegistry())
        assert not inst._fast

    def test_flag_off_disables_fast_path(self, tiny_spec):
        sim = Simulation()
        inst = DecodeInstance(sim, tiny_spec, lambda s: None, fast_kernel=False)
        assert not inst._fast


# ----------------------------------------------------------------------
# Goodput verdicts are unchanged.
# ----------------------------------------------------------------------
class TestGoodputParity:
    def test_simu_decode_verdict_identical(self, tiny_spec):
        from repro.core.simulate import simu_decode
        from repro.workload.slos import SLO

        dataset = fixed_length_dataset(256, 24)
        slo = SLO(ttft=0.5, tpot=0.08)
        fast = simu_decode(
            tiny_spec, dataset, slo, num_requests=60, fast_kernel=True
        )
        slow = simu_decode(
            tiny_spec, dataset, slo, num_requests=60, fast_kernel=False
        )
        assert fast.goodput == slow.goodput
        assert fast.attainment_at_goodput == slow.attainment_at_goodput
        assert fast.trials == slow.trials
