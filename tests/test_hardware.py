"""Tests for repro.hardware: GPU specs, links, cluster topology."""

import pytest

from repro.hardware import (
    A100_80GB,
    ETHERNET_25G,
    GPUId,
    INFINIBAND_800G,
    LOOPBACK,
    NVLINK,
    Cluster,
    GPUSpec,
    LinkType,
    NetworkLink,
    Node,
    get_gpu,
    high_affinity_cluster,
    paper_testbed,
    transfer_time,
)


class TestGPUSpec:
    def test_a100_ridge_point_near_published(self):
        # FP16 roofline ridge of A100-80GB is ~153 FLOPs/byte ("over 156"
        # in Appendix A with slightly different constants).
        assert 130 < A100_80GB.ridge_intensity < 180

    def test_effective_rates_below_peak(self):
        assert A100_80GB.effective_flops < A100_80GB.peak_flops
        assert A100_80GB.effective_bandwidth < A100_80GB.memory_bandwidth

    def test_registry_lookup(self):
        assert get_gpu("A100-80GB") is A100_80GB
        with pytest.raises(KeyError):
            get_gpu("tpu-v9")

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", 1, 1.0, 1.0, 1.0, mfu=0.0)


class TestNetworkLink:
    def test_time_scales_with_bytes(self):
        t1 = NVLINK.time_for(1e9)
        t2 = NVLINK.time_for(2e9)
        assert t2 > t1
        assert t2 - NVLINK.latency == pytest.approx(2 * (t1 - NVLINK.latency))

    def test_zero_bytes_free(self):
        assert NVLINK.time_for(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NVLINK.time_for(-1)

    def test_link_ordering(self):
        # NVLink must beat InfiniBand must beat 25G Ethernet for 1 GB.
        gb = 1e9
        assert NVLINK.time_for(gb) < INFINIBAND_800G.time_for(gb) < ETHERNET_25G.time_for(gb)

    def test_transfer_time_wrapper(self):
        assert transfer_time(1e6, LOOPBACK) < 1e-4

    def test_invalid_link(self):
        with pytest.raises(ValueError):
            NetworkLink("bad", bandwidth=0.0, latency=0.0)


class TestCluster:
    def test_paper_testbed_shape(self):
        c = paper_testbed()
        assert c.num_nodes == 4
        assert c.gpus_per_node == 8
        assert c.num_gpus == 32
        assert not c.has_fast_cross_node

    def test_high_affinity_cluster(self):
        c = high_affinity_cluster()
        assert c.has_fast_cross_node

    def test_link_classification(self):
        c = paper_testbed()
        a, b = GPUId(0, 0), GPUId(0, 5)
        other = GPUId(2, 0)
        assert c.link_type(a, a) is LinkType.SAME_GPU
        assert c.link_type(a, b) is LinkType.NVLINK
        assert c.link_type(a, other) is LinkType.CROSS_NODE
        assert c.link_between(a, b) is c.intra_node_link
        assert c.link_between(a, other) is c.cross_node_link
        assert c.link_between(a, a) is LOOPBACK

    def test_all_gpu_ids_unique(self):
        c = paper_testbed()
        ids = c.all_gpu_ids()
        assert len(ids) == len(set(ids)) == 32

    def test_heterogeneous_nodes_rejected(self):
        with pytest.raises(ValueError, match="heterogeneous"):
            Cluster(nodes=[Node(0, 8), Node(1, 4)])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(nodes=[])

    def test_node_gpu_ids(self):
        node = Node(index=1, num_gpus=4)
        assert node.gpu_ids() == [GPUId(1, i) for i in range(4)]

    def test_invalid_gpu_id(self):
        with pytest.raises(ValueError):
            GPUId(-1, 0)
