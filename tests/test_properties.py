"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import slo_attainment
from repro.hardware import A100_80GB, NVLINK
from repro.latency import (
    coefficients_from_roofline,
    decode_step_latency,
    mixed_batch_latency,
    prefill_latency,
)
from repro.models import ModelArchitecture
from repro.queueing import avg_ttft_inter_op, avg_ttft_intra_op, avg_ttft_single
from repro.simulator import KVBlockManager, OutOfBlocksError, Simulation
from repro.workload import SLO, LognormalLength, Request, Trace

COEFFS = coefficients_from_roofline(A100_80GB)
MODEL = ModelArchitecture("prop-model", 8, 1024, 8, 4096)

lengths = st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=16)


class TestLatencyProperties:
    @given(lens=lengths)
    @settings(max_examples=60, deadline=None)
    def test_prefill_latency_positive_and_finite(self, lens):
        lat = prefill_latency(MODEL, COEFFS, lens)
        assert 0 < lat < 1e4

    @given(lens=lengths, extra=st.integers(min_value=1, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_prefill_monotone_in_added_request(self, lens, extra):
        assert prefill_latency(MODEL, COEFFS, lens + [extra]) > prefill_latency(
            MODEL, COEFFS, lens
        )

    @given(ctx=lengths)
    @settings(max_examples=60, deadline=None)
    def test_decode_superadditive_split(self, ctx):
        # Splitting a batch into two steps is never faster: batching helps.
        whole = decode_step_latency(MODEL, COEFFS, ctx)
        k = len(ctx) // 2
        if k == 0:
            return
        split = decode_step_latency(MODEL, COEFFS, ctx[:k]) + decode_step_latency(
            MODEL, COEFFS, ctx[k:]
        )
        assert whole <= split + 1e-12

    @given(pre=lengths, ctx=lengths)
    @settings(max_examples=60, deadline=None)
    def test_mixed_dominates_components(self, pre, ctx):
        # A mixed iteration costs at least as much as its decode part and
        # at least as much as its prefill part alone.
        mixed = mixed_batch_latency(MODEL, COEFFS, pre, ctx)
        dec = mixed_batch_latency(MODEL, COEFFS, [], ctx)
        pre_only = mixed_batch_latency(MODEL, COEFFS, pre, [])
        assert mixed >= dec - 1e-12
        assert mixed >= pre_only - 1e-12


class TestQueueingProperties:
    @given(
        rate=st.floats(min_value=0.01, max_value=8.0),
        d=st.floats(min_value=0.01, max_value=0.12),
    )
    @settings(max_examples=80, deadline=None)
    def test_parallelism_never_hurts_average_ttft(self, rate, d):
        if rate * d >= 0.99:
            return
        single = avg_ttft_single(rate, d)
        assert avg_ttft_inter_op(rate, d, 2) <= single + 1e-12
        assert avg_ttft_intra_op(rate, d, 1.5) <= single + 1e-12

    @given(
        rate=st.floats(min_value=0.01, max_value=5.0),
        d=st.floats(min_value=0.01, max_value=0.15),
    )
    @settings(max_examples=80, deadline=None)
    def test_ttft_at_least_execution_time(self, rate, d):
        if rate * d >= 0.99:
            return
        assert avg_ttft_single(rate, d) >= d


class TestKVManagerProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.sampled_from(["alloc", "append", "free"]),
                st.integers(min_value=1, max_value=100),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_block_conservation_under_any_op_sequence(self, ops):
        kv = KVBlockManager(total_blocks=32, block_size=8)
        for rid, op, amount in ops:
            try:
                if op == "alloc":
                    kv.allocate(rid, amount)
                elif op == "append":
                    kv.append(rid, amount)
                else:
                    kv.free(rid)
            except (OutOfBlocksError, ValueError, KeyError):
                pass
            assert 0 <= kv.used_blocks <= kv.total_blocks
            assert kv.used_blocks + kv.free_blocks == kv.total_blocks
        # Freeing every holder returns the pool to empty.
        for rid in list(kv.holders()):
            kv.free(rid)
        assert kv.used_blocks == 0


class TestSimulationProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_events_observed_in_nondecreasing_time(self, delays):
        sim = Simulation()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestWorkloadProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_lognormal_respects_clip(self, seed):
        rng = np.random.default_rng(seed)
        d = LognormalLength(median=100, sigma=1.5, low=8, high=512)
        samples = d.sample(rng, 200)
        assert samples.min() >= 8 and samples.max() <= 512

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e4), min_size=2, max_size=50
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_trace_always_sorted(self, times):
        trace = Trace(
            requests=[
                Request(request_id=i, arrival_time=t, input_len=10, output_len=2)
                for i, t in enumerate(times)
            ]
        )
        arr = [r.arrival_time for r in trace]
        assert arr == sorted(arr)


class TestAttainmentProperties:
    @given(
        scale=st.floats(min_value=0.1, max_value=10.0),
        ttfts=st.lists(st.floats(min_value=0.001, max_value=2.0), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_attainment_monotone_in_slo(self, scale, ttfts):
        from tests.test_analysis import make_record

        records = [make_record(i, t, 0.01) for i, t in enumerate(ttfts)]
        base = SLO(ttft=0.5, tpot=0.1)
        looser = base.scaled(max(scale, 1.0))
        tighter = base.scaled(min(scale, 1.0))
        a_loose = slo_attainment(records, looser).total
        a_tight = slo_attainment(records, tighter).total
        assert a_loose >= a_tight
