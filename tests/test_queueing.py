"""Tests for the M/D/1 analysis of §3.1 (Eq. 1-3) and M/G/1 extras."""

import math

import pytest

from repro.queueing import (
    avg_ttft_inter_op,
    avg_ttft_intra_op,
    avg_ttft_single,
    crossover_rate,
    max_stable_rate,
    md1_waiting_time,
    mg1_waiting_time,
    mm1_response_time,
    mm1_waiting_time,
)


class TestMD1:
    def test_zero_rate_no_wait(self):
        assert md1_waiting_time(0.0, 0.1) == 0.0
        assert avg_ttft_single(0.0, 0.1) == pytest.approx(0.1)

    def test_eq1_closed_form(self):
        # Direct check of Eq. 1 at R=4, D=0.1: W = 0.4*0.1/(2*0.6).
        assert md1_waiting_time(4.0, 0.1) == pytest.approx(0.4 * 0.1 / 1.2)

    def test_wait_diverges_near_saturation(self):
        w_low = md1_waiting_time(1.0, 0.1)
        w_high = md1_waiting_time(9.9, 0.1)
        assert w_high > 50 * w_low

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            md1_waiting_time(10.0, 0.1)

    def test_eq2_matches_paper_form_at_degree_2(self):
        # Paper Eq. 2: D + R D^2 / (4 (2 - R D)).
        r, d = 3.0, 0.1
        expected = d + r * d * d / (4.0 * (2.0 - r * d))
        assert avg_ttft_inter_op(r, d, degree=2) == pytest.approx(expected)

    def test_eq3_matches_paper_form(self):
        # Paper Eq. 3: D/K + R D^2 / (2 K (K - R D)).
        r, d, k = 3.0, 0.1, 1.6
        expected = d / k + r * d * d / (2.0 * k * (k - r * d))
        assert avg_ttft_intra_op(r, d, k) == pytest.approx(expected)

    def test_inter_op_degree1_equals_single(self):
        assert avg_ttft_inter_op(2.0, 0.1, degree=1) == pytest.approx(
            avg_ttft_single(2.0, 0.1)
        )

    def test_intra_op_speedup1_equals_single(self):
        assert avg_ttft_intra_op(2.0, 0.1, 1.0) == pytest.approx(
            avg_ttft_single(2.0, 0.1)
        )

    def test_intra_wins_at_low_rate_inter_at_high(self):
        # Figure 4(a)'s crossover with K < degree.
        d, k = 0.1, 1.6
        low, high = 0.5, 14.0
        assert avg_ttft_intra_op(low, d, k) < avg_ttft_inter_op(low, d, 2)
        assert avg_ttft_intra_op(high, d, k) > avg_ttft_inter_op(high, d, 2)

    def test_crossover_rate_separates_regimes(self):
        d, k = 0.1, 1.6
        rc = crossover_rate(d, k, degree=2)
        assert 0 < rc < 2.0 / d
        eps = 0.05 * rc
        assert avg_ttft_intra_op(rc - eps, d, k) <= avg_ttft_inter_op(rc - eps, d, 2)
        assert avg_ttft_intra_op(rc + eps, d, k) >= avg_ttft_inter_op(rc + eps, d, 2)

    def test_crossover_infinite_when_intra_dominates(self):
        # K = degree = 2 with no other cost: intra always at least as good.
        assert crossover_rate(0.1, 2.0, degree=2) == math.inf

    def test_smaller_k_weakens_intra(self):
        # Figure 4(b): decreasing K reduces intra-op efficacy.
        d = 0.1
        r = 5.0
        assert avg_ttft_intra_op(r, d, 1.9) < avg_ttft_intra_op(r, d, 1.3)

    def test_max_stable_rate(self):
        assert max_stable_rate(0.1) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            max_stable_rate(0.0)


class TestMG1:
    def test_scv_zero_recovers_md1(self):
        assert mg1_waiting_time(4.0, 0.1, 0.0) == pytest.approx(
            md1_waiting_time(4.0, 0.1)
        )

    def test_scv_one_recovers_mm1(self):
        assert mg1_waiting_time(4.0, 0.1, 1.0) == pytest.approx(
            mm1_waiting_time(4.0, 0.1)
        )

    def test_variability_increases_wait(self):
        assert mg1_waiting_time(4.0, 0.1, 2.0) > mg1_waiting_time(4.0, 0.1, 0.5)

    def test_mm1_response(self):
        assert mm1_response_time(4.0, 0.1) == pytest.approx(
            0.1 + mm1_waiting_time(4.0, 0.1)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mg1_waiting_time(4.0, 0.1, -0.1)
        with pytest.raises(ValueError):
            mm1_waiting_time(-1.0, 0.1)
