"""Critical-path analysis tests: reconciliation, golden report, diffing.

The load-bearing property is *exact accounting*: for every completed
request, ``math.fsum`` of the seven phase durations equals its
end-to-end latency to within 1e-9 — decode execution is defined as the
residual, and a hypothesis test proves the tracked phases never
over-cover the window. On top of that sit byte-deterministic reports
(golden fixture, regenerate with
``PYTHONPATH=src python -m tests.test_critpath --regen``) and the
differential comparator's exhaustive delta attribution.
"""

from __future__ import annotations

import json
import math
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    PHASES,
    TTFT_PHASES,
    build_profile,
    critical_paths,
    diff_profiles,
    format_profile,
    format_profile_diff,
    profile_to_html,
    profile_to_json,
)
from repro.models import ModelArchitecture
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import (
    InstanceSpec,
    Profiler,
    Simulation,
    Span,
    SpanKind,
    Tracer,
)
from repro.workload import Request, Trace, generate_trace, get_dataset

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_PROFILE = GOLDEN_DIR / "profile_disaggregated_seed0.json"

#: Pinned scenario — matches tests/test_golden_trace.py so the two
#: fixtures drift (or not) together.
SEED = 0
NUM_REQUESTS = 12
RATE = 4.0
DATASET = "humaneval"
SLO = (4.0, 0.2)

MODEL = ModelArchitecture(
    name="golden-1b",
    num_layers=16,
    hidden_size=2048,
    num_heads=16,
    ffn_size=8192,
)

PROP_MODEL = ModelArchitecture("critpath-prop", 8, 1024, 8, 4096)


def _hand_spans():
    """One fully hand-specified request lifecycle."""
    return [
        Span(1, SpanKind.ARRIVAL, 0.0, 0.0),
        Span(1, SpanKind.PREFILL_QUEUE, 0.1, 0.3, instance="prefill-0"),
        Span(1, SpanKind.PREFILL_EXEC, 0.3, 0.8, instance="prefill-0"),
        Span(1, SpanKind.DECODE_STEP, 0.8, 0.8, token_index=0),
        Span(1, SpanKind.KV_TRANSFER, 0.8, 1.0, instance="prefill-0->decode-0"),
        Span(1, SpanKind.DECODE_QUEUE, 1.0, 1.1, instance="decode-0"),
        Span(1, SpanKind.DECODE_STEP, 1.2, 1.3, instance="decode-0", token_index=1),
        Span(1, SpanKind.DECODE_STEP, 1.4, 1.5, instance="decode-0", token_index=2),
        Span(1, SpanKind.COMPLETION, 1.5, 1.5),
    ]


def build_golden_profile():
    """Run the pinned scenario and build its profile report."""
    sim = Simulation()
    tracer = Tracer()
    profiler = Profiler()
    spec = InstanceSpec(model=MODEL)
    system = DisaggregatedSystem(
        sim, spec, spec, num_prefill=2, num_decode=2,
        tracer=tracer, profiler=profiler,
    )
    trace = generate_trace(
        get_dataset(DATASET), rate=RATE, num_requests=NUM_REQUESTS,
        rng=np.random.default_rng(SEED),
    )
    result = simulate_trace(system, trace)
    assert result.unfinished == 0
    return build_profile(
        tracer.spans,
        profiler=profiler,
        sim_time=result.sim_time,
        slo=SLO,
        meta={"mode": "disaggregated", "model": MODEL.name, "seed": SEED},
        num_gpus=result.num_gpus,
    )


def _run_profiled(mode: str, seed: int = 0, num_requests: int = 20):
    sim = Simulation()
    tracer = Tracer()
    profiler = Profiler()
    spec = InstanceSpec(model=MODEL)
    if mode == "disaggregated":
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=1, num_decode=1,
            tracer=tracer, profiler=profiler,
        )
    else:
        system = ColocatedSystem(
            sim, spec, num_replicas=2, tracer=tracer, profiler=profiler,
        )
    trace = generate_trace(
        get_dataset(DATASET), rate=RATE, num_requests=num_requests,
        rng=np.random.default_rng(seed),
    )
    result = simulate_trace(system, trace)
    return tracer, profiler, result


class TestCriticalPaths:
    def test_hand_built_decomposition(self):
        (path,) = critical_paths(_hand_spans())
        assert path.request_id == 1
        assert path.dispatch == pytest.approx(0.1)
        assert path.prefill_queue == pytest.approx(0.2)
        assert path.prefill_exec == pytest.approx(0.5)
        assert path.kv_wait == 0.0          # no transfer events: all transmit
        assert path.kv_transmit == pytest.approx(0.2)
        assert path.decode_queue == pytest.approx(0.1)
        assert path.decode_exec == pytest.approx(0.4)
        assert path.first_token_time == pytest.approx(0.8)
        assert path.ttft == pytest.approx(0.8)
        assert path.token_gaps == pytest.approx((0.5, 0.2))
        assert path.tpot == pytest.approx(0.35)

    def test_reconciliation_is_exact(self):
        (path,) = critical_paths(_hand_spans())
        assert path.phase_sum == pytest.approx(path.end_to_end_latency, abs=1e-12)

    def test_ttft_breakdown_covers_window(self):
        (path,) = critical_paths(_hand_spans())
        breakdown = dict(zip(TTFT_PHASES, path.ttft_breakdown))
        assert breakdown["dispatch"] == pytest.approx(0.1)
        assert breakdown["prefill_queue"] == pytest.approx(0.2)
        assert breakdown["prefill_exec"] == pytest.approx(0.5)
        assert breakdown["ttft_other"] == pytest.approx(0.0, abs=1e-12)
        assert math.fsum(path.ttft_breakdown) == pytest.approx(path.ttft, abs=1e-9)

    def test_transfer_events_split_kv_wait_from_transmit(self):
        events = [(1, 0.8, 0.85, 1.0)]  # 0.15s on the wire
        (path,) = critical_paths(_hand_spans(), transfer_events=events)
        assert path.kv_wait == pytest.approx(0.05)
        assert path.kv_transmit == pytest.approx(0.15)
        # The split is internal to the KV phase: reconciliation holds.
        assert path.phase_sum == pytest.approx(path.end_to_end_latency, abs=1e-12)

    def test_incomplete_requests_skipped(self):
        spans = [
            Span(7, SpanKind.ARRIVAL, 0.0, 0.0),
            Span(7, SpanKind.PREFILL_QUEUE, 0.0, 1.0),
            # no completion, no tokens
            Span(8, SpanKind.COMPLETION, 2.0, 2.0),  # no arrival
        ]
        assert critical_paths(spans) == []

    def test_sorted_by_request_id(self):
        spans = []
        for rid in (3, 1, 2):
            spans.extend(
                [
                    Span(rid, SpanKind.ARRIVAL, 0.0, 0.0),
                    Span(rid, SpanKind.DECODE_STEP, 0.5, 0.5, token_index=0),
                    Span(rid, SpanKind.COMPLETION, 1.0, 1.0),
                ]
            )
        assert [p.request_id for p in critical_paths(spans)] == [1, 2, 3]


requests_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.integers(min_value=1, max_value=768),
        st.integers(min_value=1, max_value=48),
    ),
    min_size=1,
    max_size=15,
)


class TestReconciliationProperty:
    """ISSUE acceptance: fsum(phases) == e2e within 1e-9, any workload."""

    @given(raw=requests_strategy, mode=st.sampled_from(["disaggregated", "colocated"]))
    @settings(max_examples=30, deadline=None)
    def test_fsum_reconciles_for_arbitrary_workloads(self, raw, mode):
        trace = Trace(
            requests=[
                Request(request_id=i, arrival_time=t, input_len=inp, output_len=out)
                for i, (t, inp, out) in enumerate(raw)
            ]
        )
        sim = Simulation()
        tracer = Tracer()
        profiler = Profiler()
        spec = InstanceSpec(model=PROP_MODEL)
        if mode == "disaggregated":
            system = DisaggregatedSystem(
                sim, spec, spec, num_prefill=1, num_decode=1,
                tracer=tracer, profiler=profiler,
            )
        else:
            system = ColocatedSystem(
                sim, spec, num_replicas=1, tracer=tracer, profiler=profiler,
            )
        result = simulate_trace(system, trace)
        paths = critical_paths(tracer.spans, transfer_events=profiler.transfer_events)
        assert len(paths) == len(result.records)
        for path in paths:
            assert abs(path.phase_sum - path.end_to_end_latency) <= 1e-9
            assert all(value >= 0.0 for value in path.phase_values())
            assert math.fsum(path.ttft_breakdown) == pytest.approx(
                path.ttft, abs=1e-9
            )


class TestBuildProfile:
    def test_report_shape_and_phase_fractions(self):
        report = build_golden_profile()
        assert report["schema"] == "repro-profile/1"
        assert report["summary"]["completed"] == NUM_REQUESTS
        assert set(report["phases"]) == set(PHASES)
        fractions = math.fsum(
            entry["fraction"] for entry in report["phases"].values()
        )
        assert fractions == pytest.approx(1.0, abs=1e-9)
        assert len(report["per_request"]) == NUM_REQUESTS

    def test_utilization_fractions_partition_unity(self):
        report = build_golden_profile()
        assert report["utilization"], "profiler wiring must yield instances"
        for entry in report["utilization"].values():
            total = (
                entry["busy_frac"]
                + entry["blocked_on_transfer_frac"]
                + entry["idle_frac"]
            )
            assert total == pytest.approx(1.0, abs=1e-9)
            occupancy = math.fsum(entry["batch_occupancy"].values())
            assert occupancy == pytest.approx(
                math.fsum(entry["phase_seconds"].values()), abs=1e-9
            )

    def test_disaggregated_interference_is_zero(self):
        report = build_golden_profile()
        for entry in report["interference"].values():
            assert entry["contended_seconds"] == 0.0

    def test_colocated_interference_detected_under_load(self):
        tracer, profiler, result = _run_profiled("colocated", num_requests=30)
        report = build_profile(
            tracer.spans, profiler=profiler, sim_time=result.sim_time
        )
        contended = math.fsum(
            entry["contended_seconds"]
            for entry in report["interference"].values()
        )
        assert contended > 0.0, "colocated replicas must show §3.1 contention"

    def test_degrades_without_profiler(self):
        tracer, _profiler, result = _run_profiled("disaggregated")
        report = build_profile(tracer.spans, sim_time=result.sim_time)
        assert report["utilization"] == {}
        assert report["summary"]["exec_events"] == 0
        for req in report["per_request"]:
            assert req["phases"]["kv_wait"] == 0.0  # no split without events

    def test_byte_deterministic_across_runs(self):
        assert profile_to_json(build_golden_profile()) == profile_to_json(
            build_golden_profile()
        )


class TestGoldenProfile:
    def test_fixture_exists(self):
        assert GOLDEN_PROFILE.exists(), (
            f"missing golden fixture {GOLDEN_PROFILE}; regenerate with "
            "`PYTHONPATH=src python -m tests.test_critpath --regen`"
        )

    def test_profile_matches_fixture_byte_for_byte(self):
        actual = profile_to_json(build_golden_profile()).encode("utf-8")
        expected = GOLDEN_PROFILE.read_bytes()
        assert actual == expected, (
            "profile report diverged from the golden fixture — either the "
            "simulator or the profiler/analysis pipeline drifted. If "
            "intentional, regenerate with `PYTHONPATH=src python -m "
            "tests.test_critpath --regen` and commit the fixture diff."
        )


class TestDiffProfiles:
    def _two_mode_reports(self):
        reports = {}
        for mode in ("colocated", "disaggregated"):
            tracer, profiler, result = _run_profiled(mode, num_requests=30)
            reports[mode] = build_profile(
                tracer.spans, profiler=profiler, sim_time=result.sim_time,
                slo=SLO, meta={"mode": mode}, num_gpus=result.num_gpus,
            )
        return reports["colocated"], reports["disaggregated"]

    def test_same_run_diff_is_zero(self):
        report = build_golden_profile()
        diff = diff_profiles(report, report)
        assert diff["matched"] == NUM_REQUESTS
        assert diff["only_a"] == diff["only_b"] == 0
        assert diff["e2e"]["delta_mean"] == 0.0
        for entry in diff["phases"].values():
            assert entry["delta_mean"] == 0.0

    def test_cross_mode_attribution_exceeds_95_percent(self):
        """ISSUE acceptance: ≥95% of the TTFT delta lands on named phases."""
        colocated, disaggregated = self._two_mode_reports()
        diff = diff_profiles(colocated, disaggregated)
        assert diff["matched"] == 30
        assert diff["ttft"]["attributed_fraction"] >= 0.95
        assert diff["e2e"]["attributed_fraction"] >= 0.95
        # Attribution is exhaustive: per-phase means fsum to the measured
        # per-request delta mean.
        for section in ("ttft", "e2e"):
            attributed = math.fsum(diff[section]["attributed"].values())
            assert attributed == pytest.approx(
                diff[section]["measured_delta_mean"], abs=1e-9
            )

    def test_goodput_section_present_with_slos(self):
        colocated, disaggregated = self._two_mode_reports()
        diff = diff_profiles(colocated, disaggregated)
        goodput = diff["goodput"]
        assert goodput is not None
        assert goodput["delta"] == pytest.approx(
            goodput["b_goodput_rps"] - goodput["a_goodput_rps"]
        )

    def test_rejects_wrong_schema(self):
        report = build_golden_profile()
        with pytest.raises(ValueError, match="repro-profile/1"):
            diff_profiles({"schema": "bogus"}, report)
        diff = diff_profiles(report, report)
        with pytest.raises(ValueError):
            diff_profiles(diff, report)  # a diff is not a profile

    def test_diff_roundtrips_through_json(self):
        report = build_golden_profile()
        serialized = json.loads(profile_to_json(report))
        diff = diff_profiles(serialized, serialized)
        assert diff["e2e"]["delta_mean"] == 0.0


class TestRenderers:
    def test_human_format_mentions_every_phase(self):
        text = format_profile(build_golden_profile())
        for name in PHASES:
            assert name in text
        assert "utilization" in text

    def test_diff_format_mentions_every_phase(self):
        report = build_golden_profile()
        text = format_profile_diff(diff_profiles(report, report))
        for name in PHASES:
            assert name in text

    def test_html_is_self_contained(self):
        html = profile_to_html(build_golden_profile())
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        for fragment in ("src=", "href=", "<script"):
            assert fragment not in html, "HTML report must embed everything"

    def test_html_dispatches_on_diff_schema(self):
        report = build_golden_profile()
        html = profile_to_html(diff_profiles(report, report))
        assert "Profile diff" in html


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    report = build_golden_profile()
    GOLDEN_PROFILE.write_bytes(profile_to_json(report).encode("utf-8"))
    print(
        f"wrote profile of {report['summary']['completed']} requests "
        f"to {GOLDEN_PROFILE}"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
        sys.exit(2)
