"""Deeper behavioral tests: backpressure, contention, bubbles, trade-offs."""

import numpy as np
import pytest

from repro.hardware import ETHERNET_25G, NVLINK, NetworkLink
from repro.latency import ParallelismConfig, coefficients_from_roofline
from repro.hardware import A100_80GB
from repro.models import ModelArchitecture
from repro.serving import ColocatedSystem, DisaggregatedSystem, simulate_trace
from repro.simulator import (
    InstanceSpec,
    PrefillInstance,
    RequestState,
    Simulation,
)
from repro.workload import Request, Trace, fixed_length_dataset, generate_trace


class TestKVBackpressure:
    """The pull policy uses prefill memory as the queuing buffer (§4.3)."""

    def test_decode_memory_gates_prefill_drain(self, tiny_model, rng):
        # A decode instance too small to hold everything forces requests
        # to wait parked on the prefill side, yet all eventually finish.
        big = InstanceSpec(model=tiny_model)
        tiny_decode = InstanceSpec(model=tiny_model, max_batch_size=2)
        trace = generate_trace(
            fixed_length_dataset(128, 64), rate=20.0, num_requests=40, rng=rng
        )
        sim = Simulation()
        system = DisaggregatedSystem(sim, big, tiny_decode)
        res = simulate_trace(system, trace, max_events=2_000_000)
        assert res.unfinished == 0
        # With a 2-slot decode instance, later requests must queue:
        # decode queuing shows up in the records.
        waits = [r.decode_queue_time for r in res.records]
        assert max(waits) > 0.1

    def test_prefill_kv_exhaustion_blocks_admission(self, tiny_model):
        # A prefill instance whose KV pool is consumed by parked caches
        # stops admitting; releasing the parked cache unblocks it.
        spec = InstanceSpec(model=tiny_model)
        sim = Simulation()
        done = []
        inst = PrefillInstance(sim, spec, on_prefill_done=done.append)
        capacity = spec.kv_token_capacity()
        big_len = int(capacity * 0.7)
        for i in range(2):  # the second cannot fit while the first parks
            inst.submit(
                RequestState(
                    request=Request(
                        request_id=i, arrival_time=0.0,
                        input_len=big_len, output_len=2,
                    )
                )
            )
        sim.run()
        assert len(done) == 1  # second request blocked on KV
        inst.release_kv(done[0].request_id)
        sim.run()
        assert len(done) == 2  # release unblocked it


class TestTransferContention:
    def test_slow_fabric_serializes_and_queues(self, tiny_model, rng):
        # Over a slow cross-node fabric, concurrent migrations queue: the
        # p99 transfer wait far exceeds a single transfer's serialization
        # time.
        spec = InstanceSpec(model=tiny_model)
        trace = generate_trace(
            fixed_length_dataset(1024, 4), rate=30.0, num_requests=60, rng=rng
        )
        slow = NetworkLink("slow", bandwidth=2e9, latency=1e-4)
        sim = Simulation()
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=2, num_decode=2, transfer_link=slow
        )
        res = simulate_trace(system, trace, max_events=2_000_000)
        durations = sorted(t.duration for t in res.transfer_records)
        single = slow.time_for(tiny_model.kv_bytes_per_token * 1024)
        assert durations[0] == pytest.approx(single, rel=0.01)
        # Queueing means record durations measure only on-link time; the
        # lifecycle transfer stage captures the waiting too.
        stage_waits = [r.transfer_time for r in res.records]
        assert max(stage_waits) > 3 * single

    def test_nvlink_keeps_transfer_invisible(self, tiny_model, rng):
        spec = InstanceSpec(model=tiny_model)
        trace = generate_trace(
            fixed_length_dataset(1024, 4), rate=30.0, num_requests=60, rng=rng
        )
        sim = Simulation()
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=2, num_decode=2, transfer_link=NVLINK
        )
        res = simulate_trace(system, trace, max_events=2_000_000)
        assert max(r.transfer_time for r in res.records) < 0.01


class TestPipelineBubbles:
    def test_uniform_batches_beat_alternating(self, tiny_model):
        """§3.3: non-uniform prompt lengths create pipeline bubbles; the
        same token volume in uniform batches finishes sooner."""
        spec = InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 4))
        makespan = {}
        for label, lens in (
            ("uniform", [512] * 16),
            ("alternating", [64, 960] * 8),
        ):
            sim = Simulation()
            done = []
            inst = PrefillInstance(
                sim, spec,
                on_prefill_done=lambda s: (
                    done.append(sim.now), inst.release_kv(s.request_id)
                ),
                batch_token_limit=1,  # force one request per batch
            )
            for i, length in enumerate(lens):
                inst.submit(
                    RequestState(
                        request=Request(
                            request_id=i, arrival_time=0.0,
                            input_len=length, output_len=2,
                        )
                    )
                )
            sim.run()
            makespan[label] = max(done)
        # Equal total tokens, but the alternating stream inherits the
        # slow batch's cadence (bubbles) and cannot finish faster.
        assert makespan["alternating"] >= makespan["uniform"] * 0.99


class TestChunkedPrefillTrade:
    def test_chunking_protects_tpot_at_ttft_cost(self, rng):
        """§2.2: SARATHI 'essentially trades TTFT for TPOT'."""
        model = ModelArchitecture("trade-2b", 24, 2560, 32, 10240)
        spec = InstanceSpec(model=model)
        # Long prompts arriving while many requests decode.
        trace = generate_trace(
            fixed_length_dataset(1536, 48), rate=3.0, num_requests=120, rng=rng
        )
        stats = {}
        for policy in ("prefill_priority", "chunked"):
            sim = Simulation()
            system = ColocatedSystem(sim, spec, policy=policy, chunk_size=256)
            res = simulate_trace(system, trace, max_events=3_000_000)
            assert res.unfinished == 0
            tpots = sorted(r.tpot for r in res.records)
            ttfts = sorted(r.ttft for r in res.records)
            stats[policy] = (
                ttfts[len(ttfts) // 2],
                tpots[int(len(tpots) * 0.9)],
            )
        ttft_pp, tpot_pp = stats["prefill_priority"]
        ttft_ck, tpot_ck = stats["chunked"]
        assert tpot_ck < tpot_pp          # TPOT protected
        assert ttft_ck > ttft_pp * 0.95   # TTFT pays (or at best ties)


class TestDecodePipelineParallelism:
    def test_pp_sustains_more_concurrent_work(self, tiny_model, rng):
        """§3.2: inter-op decode scales capacity; at a rate that swamps a
        pp=1 instance's KV, pp=2 holds attainment."""
        coeffs = coefficients_from_roofline(A100_80GB)
        del coeffs  # capacity, not latency, is under test
        specs = {
            pp: InstanceSpec(
                model=tiny_model, config=ParallelismConfig(1, pp), max_batch_size=512
            )
            for pp in (1, 2)
        }
        assert specs[2].kv_token_capacity() > 1.5 * specs[1].kv_token_capacity()


class TestTraceEdgeCases:
    def test_simultaneous_arrivals(self, tiny_spec):
        trace = Trace(
            requests=[Request(i, 1.0, 128, 4) for i in range(20)]
        )
        sim = Simulation()
        system = DisaggregatedSystem(sim, tiny_spec, tiny_spec)
        res = simulate_trace(system, trace)
        assert res.unfinished == 0

    def test_single_request_trace(self, tiny_spec):
        trace = Trace(requests=[Request(0, 0.0, 64, 8)])
        sim = Simulation()
        system = ColocatedSystem(sim, tiny_spec)
        res = simulate_trace(system, trace)
        assert res.completed == 1
