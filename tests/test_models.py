"""Tests for repro.models: architecture math, registry, memory budgets."""

import dataclasses

import pytest

from repro.hardware import A100_80GB
from repro.models import (
    ModelArchitecture,
    MemoryBudget,
    compute_memory_budget,
    fits_in_memory,
    get_model,
    list_models,
    max_kv_tokens,
    register_model,
)


class TestModelArchitecture:
    def test_head_size_consistency(self, opt13b):
        assert opt13b.head_size * opt13b.num_heads == opt13b.hidden_size

    def test_param_count_matches_published_size(self):
        # Registry entries should land within 10% of their nominal size.
        for name, expected_b in [
            ("opt-13b", 13e9),
            ("opt-66b", 66e9),
            ("opt-175b", 175e9),
            ("llama-7b", 7e9),
            ("llama-65b", 65e9),
        ]:
            model = get_model(name)
            assert model.num_params == pytest.approx(expected_b, rel=0.10), name

    def test_weight_bytes_fp16(self, opt13b):
        assert opt13b.weight_bytes == opt13b.num_params * 2

    def test_kv_bytes_per_token_matches_paper_example(self, opt66b):
        # §3.3: a 512-token request on OPT-66B carries ~1.13 GB of KV cache.
        total = opt66b.kv_bytes_per_token * 512
        assert 0.9e9 < total < 1.4e9

    def test_prefill_flops_scale_superlinearly(self, opt13b):
        # Quadratic attention: doubling tokens more than doubles FLOPs.
        f1 = opt13b.prefill_flops(1024)
        f2 = opt13b.prefill_flops(2048)
        assert f2 > 2 * f1

    def test_prefill_flops_zero_tokens(self, opt13b):
        assert opt13b.prefill_flops(0) == 0.0

    def test_prefill_flops_rejects_negative(self, opt13b):
        with pytest.raises(ValueError):
            opt13b.prefill_flops(-1)

    def test_decode_flops_linear_in_batch(self, opt13b):
        f1 = opt13b.decode_flops(8)
        f2 = opt13b.decode_flops(16)
        assert f2 == pytest.approx(2 * f1)

    def test_decode_flops_context_term(self, opt13b):
        without = opt13b.decode_flops(4)
        with_ctx = opt13b.decode_flops(4, context_lens=[100, 100, 100, 100])
        assert with_ctx > without

    def test_shard_divides_dimensions(self, opt66b):
        view = opt66b.shard(4)
        assert view.hidden_size == opt66b.hidden_size // 4
        assert view.num_heads == opt66b.num_heads // 4
        assert view.ffn_size == opt66b.ffn_size // 4
        assert view.num_layers == opt66b.num_layers
        assert view.head_size == opt66b.head_size

    def test_shard_identity(self, opt13b):
        assert opt13b.shard(1) is opt13b

    def test_shard_rejects_non_divisor(self, opt13b):
        # opt-13b has 40 heads; 16 does not divide it.
        with pytest.raises(ValueError):
            opt13b.shard(16)

    def test_double_shard_rejected(self, opt66b):
        with pytest.raises(ValueError):
            opt66b.shard(2).shard(2)

    def test_layers_per_stage_ceil(self, opt13b):
        # 40 layers over 3 stages -> slowest stage has 14.
        assert opt13b.layers_per_stage(3) == 14
        assert opt13b.layers_per_stage(1) == 40

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            ModelArchitecture("bad", 0, 128, 4, 512)
        with pytest.raises(ValueError):
            ModelArchitecture("bad", 2, 130, 4, 512)  # 130 % 4 != 0


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_model("OPT-13B").name == "opt-13b"

    def test_unknown_model_lists_known(self):
        with pytest.raises(KeyError, match="opt-13b"):
            get_model("gpt-99t")

    def test_list_models_sorted(self):
        names = list_models()
        assert names == sorted(names)
        assert "opt-175b" in names

    def test_register_and_overwrite_guard(self, tiny_model):
        register_model(tiny_model, overwrite=True)
        assert get_model("tiny-1b") == tiny_model
        with pytest.raises(ValueError):
            register_model(tiny_model)

    def test_register_rejects_sharded(self, opt66b):
        with pytest.raises(ValueError):
            register_model(opt66b.shard(2))


class TestMemory:
    def test_budget_partitions_capacity(self, opt13b):
        cap = A100_80GB.memory_bytes
        budget = compute_memory_budget(opt13b, cap)
        assert (
            budget.weight_bytes_per_gpu + budget.reserved_bytes + budget.kv_budget_bytes
            == cap
        )

    def test_parallelism_shrinks_weights_and_grows_kv(self, opt66b):
        cap = A100_80GB.memory_bytes
        b2 = compute_memory_budget(opt66b, cap, tp_degree=2, pp_degree=1)
        b4 = compute_memory_budget(opt66b, cap, tp_degree=2, pp_degree=2)
        assert b4.weight_bytes_per_gpu < b2.weight_bytes_per_gpu
        assert b4.max_kv_tokens > b2.max_kv_tokens

    def test_oversized_model_raises(self, opt66b):
        with pytest.raises(ValueError, match="does not fit"):
            compute_memory_budget(opt66b, A100_80GB.memory_bytes, 1, 1)

    def test_fits_in_memory_thresholds(self, opt66b):
        cap = A100_80GB.memory_bytes
        assert not fits_in_memory(opt66b, cap, 1, 1)  # 132 GB > 80 GB
        assert fits_in_memory(opt66b, cap, 2, 1)

    def test_175b_needs_at_least_six_gpus(self):
        m = get_model("opt-175b")
        cap = A100_80GB.memory_bytes
        assert not fits_in_memory(m, cap, 4, 1)
        assert fits_in_memory(m, cap, 8, 1)

    def test_max_kv_tokens_positive_when_feasible(self, opt13b):
        assert max_kv_tokens(opt13b, A100_80GB.memory_bytes) > 0

    def test_invalid_overhead_fraction(self, opt13b):
        with pytest.raises(ValueError):
            compute_memory_budget(opt13b, A100_80GB.memory_bytes, overhead_fraction=1.0)

    def test_max_kv_tokens_property(self):
        b = MemoryBudget(
            gpu_memory_bytes=100,
            weight_bytes_per_gpu=50,
            reserved_bytes=10,
            kv_budget_bytes=40,
            kv_bytes_per_token_per_gpu=7,
        )
        assert b.max_kv_tokens == 5
