"""Typestate protocol tests (repro.lint.typestate: TS001 / TS002).

Positive, negative, and suppression fixtures for both protocols, plus
the interprocedural cases (summaries across functions and modules) and
the path-sensitivity contract: an error is reported only when it holds
on *every* path, never "might happen on some branch".
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source, lint_sources

SIM_MODULE = "repro.simulator.fixture"


def run(source: str, module: str = SIM_MODULE, select=None):
    return lint_source(textwrap.dedent(source), path="fixture.py",
                       module=module, select=select)


def run_modules(select=None, **sources):
    dedented = {
        module.replace("__", "."): textwrap.dedent(text)
        for module, text in sources.items()
    }
    return lint_sources(dedented, select=select)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# TS001 — KV-block lifecycle
# ----------------------------------------------------------------------

class TestTS001Positive:
    def test_double_free(self):
        findings = run("""
            class Sim:
                def run(self, kv, rid):
                    kv.allocate(rid, 4)
                    kv.free(rid)
                    kv.free(rid)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]
        assert "double free" in findings[0].message

    def test_use_after_free(self):
        findings = run("""
            class Sim:
                def run(self, kv, rid):
                    kv.allocate(rid, 4)
                    kv.free(rid)
                    kv.append(rid, 1)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]
        assert "after free" in findings[0].message

    def test_double_allocate(self):
        findings = run("""
            class Sim:
                def run(self, kv, rid):
                    kv.allocate(rid, 4)
                    kv.allocate(rid, 4)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]
        assert "double allocate" in findings[0].message

    def test_free_of_locally_born_unallocated_key(self):
        findings = run("""
            class Sim:
                def run(self, kv):
                    rid = 7
                    kv.free(rid)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]
        assert "never allocated" in findings[0].message

    def test_leak_of_locally_born_key(self):
        findings = run("""
            class Sim:
                def run(self, kv):
                    rid = 7
                    kv.allocate(rid, 4)
                    kv.append(rid, 1)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]
        assert "leaked" in findings[0].message


class TestTS001Negative:
    def test_balanced_lifecycle(self):
        findings = run("""
            class Sim:
                def run(self, kv, rid):
                    kv.allocate(rid, 4)
                    kv.append(rid, 1)
                    kv.free(rid)
        """, select=["TS001"])
        assert findings == []

    def test_conditional_free_not_double_free(self):
        # The second free only *might* follow the first — a branch-local
        # free must not count as freed-on-every-path.
        findings = run("""
            class Sim:
                def run(self, kv, rid, early):
                    kv.allocate(rid, 4)
                    if early:
                        kv.free(rid)
                        return
                    kv.free(rid)
        """, select=["TS001"])
        assert findings == []

    def test_parameter_key_not_leak(self):
        # A key from outside may be freed later by the caller; only
        # locally-born keys can be proven leaked.
        findings = run("""
            class Sim:
                def run(self, kv, rid):
                    kv.allocate(rid, 4)
        """, select=["TS001"])
        assert findings == []

    def test_escaping_key_not_leak(self):
        findings = run("""
            class Sim:
                def run(self, kv):
                    rid = 7
                    kv.allocate(rid, 4)
                    self.finish_later(rid)
        """, select=["TS001"])
        assert findings == []

    def test_unhinted_receiver_ignored(self):
        findings = run("""
            class Sim:
                def run(self, queue, rid):
                    queue.free(rid)
                    queue.free(rid)
        """, select=["TS001"])
        assert findings == []

    def test_leak_scope_limited_to_simulator(self):
        findings = run("""
            class Planner:
                def run(self, kv):
                    rid = 7
                    kv.allocate(rid, 4)
        """, module="repro.core.fixture", select=["TS001"])
        assert findings == []


class TestTS001Interprocedural:
    def test_helper_free_counts_at_call_site(self):
        findings = run("""
            class Sim:
                def release(self, kv, rid):
                    kv.free(rid)

                def run(self, kv, rid):
                    kv.allocate(rid, 4)
                    self.release(kv, rid)
                    kv.free(rid)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]
        assert "double free" in findings[0].message

    def test_cross_module_helper_free(self):
        findings = run_modules(
            select=["TS001"],
            repro__simulator__a="""
                from repro.simulator.b import release

                class Sim:
                    def run(self, kv, rid):
                        kv.allocate(rid, 4)
                        release(kv, rid)
                        kv.free(rid)
            """,
            repro__simulator__b="""
                def release(kv, rid):
                    kv.free(rid)
            """,
        )
        assert rules_of(findings) == ["TS001"]
        assert "double free" in findings[0].message

    def test_conditional_helper_free_is_may_not_must(self):
        findings = run("""
            class Sim:
                def maybe_release(self, kv, rid, early):
                    if early:
                        kv.free(rid)

                def run(self, kv, rid, early):
                    kv.allocate(rid, 4)
                    self.maybe_release(kv, rid, early)
                    kv.free(rid)
        """, select=["TS001"])
        assert findings == []

    def test_protocol_class_method_seeds_summary(self):
        # The receiver is unhinted ("pool"), but its class is resolved
        # to KVBlockManager, whose methods seed the summary table.
        findings = run("""
            class KVBlockManager:
                def allocate(self, request_id, num_tokens):
                    pass

                def free(self, request_id):
                    pass

            class Sim:
                def __init__(self):
                    self.pool = KVBlockManager()

                def run(self, rid):
                    self.pool.allocate(rid, 4)
                    self.pool.free(rid)
                    self.pool.free(rid)
        """, select=["TS001"])
        assert rules_of(findings) == ["TS001"]


class TestTS001Suppression:
    def test_line_suppression(self):
        findings = run("""
            class Sim:
                def run(self, kv, rid):
                    kv.allocate(rid, 4)
                    kv.free(rid)
                    kv.free(rid)  # reprolint: disable=TS001 -- idempotent by contract
        """, select=["TS001"])
        assert findings == []


# ----------------------------------------------------------------------
# TS002 — transfer-handle protocol
# ----------------------------------------------------------------------

class TestTS002Positive:
    def test_double_submit(self):
        findings = run("""
            class Sim:
                def go(self, transfer, rid):
                    transfer.submit(rid)
                    transfer.submit(rid)
        """, select=["TS002"])
        assert rules_of(findings) == ["TS002"]
        assert "double submit" in findings[0].message

    def test_double_complete(self):
        findings = run("""
            class Sim:
                def go(self, transfer, rid):
                    transfer.submit(rid)
                    transfer.complete(rid)
                    transfer.complete(rid)
        """, select=["TS002"])
        assert rules_of(findings) == ["TS002"]
        assert "double complete" in findings[0].message

    def test_complete_of_locally_born_unsubmitted_handle(self):
        findings = run("""
            class Sim:
                def go(self, xfer):
                    rid = 3
                    xfer.complete(rid)
        """, select=["TS002"])
        assert rules_of(findings) == ["TS002"]
        assert "never submitted" in findings[0].message


class TestTS002Negative:
    def test_balanced_submit_complete(self):
        findings = run("""
            class Sim:
                def go(self, transfer, rid):
                    transfer.submit(rid)
                    transfer.complete(rid)
        """, select=["TS002"])
        assert findings == []

    def test_resubmit_after_complete(self):
        findings = run("""
            class Sim:
                def go(self, transfer, rid):
                    transfer.submit(rid)
                    transfer.complete(rid)
                    transfer.submit(rid)
                    transfer.complete(rid)
        """, select=["TS002"])
        assert findings == []

    def test_conditional_submit_not_double(self):
        findings = run("""
            class Sim:
                def go(self, transfer, rid, retry):
                    if retry:
                        transfer.submit(rid)
                        return
                    transfer.submit(rid)
        """, select=["TS002"])
        assert findings == []

    def test_unhinted_receiver_ignored(self):
        findings = run("""
            class Sim:
                def go(self, queue, rid):
                    queue.submit(rid)
                    queue.submit(rid)
        """, select=["TS002"])
        assert findings == []


class TestTS002Suppression:
    def test_line_suppression(self):
        findings = run("""
            class Sim:
                def go(self, transfer, rid):
                    transfer.submit(rid)
                    # reprolint: disable=TS002 -- second handle keyed differently at runtime
                    transfer.submit(rid)
        """, select=["TS002"])
        assert findings == []
