"""Tests for the fault-injection extension (§4.3 future work).

The paper warns that disaggregation introduces fault *propagation*: a
decode-instance failure strands requests whose KV caches live only
there, forcing prefill recomputation. These tests exercise the failure
and recovery paths of both instance kinds.
"""

import numpy as np
import pytest

from repro.serving import DisaggregatedSystem, simulate_trace
from repro.simulator import Simulation
from repro.workload import SHAREGPT, fixed_length_dataset, generate_trace


def build(sim, tiny_spec, num_prefill=2, num_decode=2):
    return DisaggregatedSystem(
        sim, tiny_spec, tiny_spec, num_prefill=num_prefill, num_decode=num_decode
    )


class TestPrefillFailure:
    def test_all_requests_still_complete(self, tiny_spec, rng):
        trace = generate_trace(SHAREGPT, rate=8.0, num_requests=120, rng=rng)
        sim = Simulation()
        system = build(sim, tiny_spec)
        for req in trace:
            sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
        sim.schedule(trace.duration / 2, lambda: system.fail_prefill("prefill-0"))
        sim.run()
        assert system.failures == 1
        assert len(system.prefill_instances) == 1
        assert len(system.records) == len(trace)

    def test_cannot_fail_last_instance(self, tiny_spec):
        sim = Simulation()
        system = build(sim, tiny_spec, num_prefill=1)
        with pytest.raises(RuntimeError, match="last prefill"):
            system.fail_prefill("prefill-0")

    def test_unknown_instance(self, tiny_spec):
        sim = Simulation()
        system = build(sim, tiny_spec)
        with pytest.raises(KeyError):
            system.fail_prefill("prefill-9")

    def test_failure_inflates_ttft_of_victims(self, tiny_spec):
        # A batch in flight at failure time must redo its prefill, so its
        # TTFT exceeds a clean run's.
        ds = fixed_length_dataset(1024, 4)
        trace = generate_trace(ds, rate=50.0, num_requests=30,
                               rng=np.random.default_rng(0))
        ttft = {}
        for inject in (False, True):
            sim = Simulation()
            system = build(sim, tiny_spec, num_prefill=2, num_decode=1)
            for req in trace:
                sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
            if inject:
                sim.schedule(0.05, lambda: system.fail_prefill("prefill-0"))
            sim.run()
            assert len(system.records) == len(trace)
            ttft[inject] = max(r.ttft for r in system.records)
        assert ttft[True] > ttft[False]


class TestDecodeFailure:
    def test_victims_recompute_and_complete(self, tiny_spec, rng):
        trace = generate_trace(SHAREGPT, rate=8.0, num_requests=120, rng=rng)
        sim = Simulation()
        system = build(sim, tiny_spec)
        for req in trace:
            sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
        sim.schedule(trace.duration / 2, lambda: system.fail_decode("decode-0"))
        sim.run()
        assert len(system.decode_instances) == 1
        assert len(system.records) == len(trace)
        # Token counts still exact despite recomputation.
        by_id = {r.request_id: r for r in trace}
        for rec in system.records:
            assert rec.output_len == by_id[rec.request_id].output_len

    def test_propagation_spikes_prefill_load(self, tiny_spec):
        # After a decode failure, victims re-enter the prefill pool: the
        # prefill instances run more batches than in a clean run.
        ds = fixed_length_dataset(256, 64)
        trace = generate_trace(ds, rate=30.0, num_requests=60,
                               rng=np.random.default_rng(1))
        batches = {}
        for inject in (False, True):
            sim = Simulation()
            system = build(sim, tiny_spec, num_prefill=1, num_decode=2)
            for req in trace:
                sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
            if inject:
                sim.schedule(1.0, lambda: system.fail_decode("decode-0"))
            sim.run()
            assert len(system.records) == len(trace)
            batches[inject] = sum(
                p.batches_executed for p in system.prefill_instances
            )
        assert batches[True] > batches[False]

    def test_cannot_fail_last_decode(self, tiny_spec):
        sim = Simulation()
        system = build(sim, tiny_spec, num_decode=1)
        with pytest.raises(RuntimeError, match="last"):
            system.fail_decode("decode-0")

    def test_tpot_degrades_for_interrupted_requests(self, tiny_spec):
        ds = fixed_length_dataset(256, 128)
        trace = generate_trace(ds, rate=20.0, num_requests=40,
                               rng=np.random.default_rng(2))
        tpot = {}
        for inject in (False, True):
            sim = Simulation()
            system = build(sim, tiny_spec, num_prefill=1, num_decode=2)
            for req in trace:
                sim.schedule_at(req.arrival_time, lambda r=req: system.submit(r))
            if inject:
                sim.schedule(1.5, lambda: system.fail_decode("decode-1"))
            sim.run()
            tpot[inject] = max(r.tpot for r in system.records)
        assert tpot[True] > tpot[False]


class TestSJFQueuePolicy:
    def test_sjf_favors_short_prompts(self, tiny_spec):
        from repro.simulator import PrefillInstance, RequestState
        from repro.workload import Request

        order = {}
        for policy in ("fcfs", "sjf"):
            sim = Simulation()
            done = []
            inst = PrefillInstance(
                sim, tiny_spec,
                on_prefill_done=lambda s: done.append(s.request_id),
                batch_token_limit=256,
                queue_policy=policy,
            )
            # One long convoy-leader, then several short requests.
            lens = [2000, 64, 64, 64]
            for i, length in enumerate(lens):
                inst.submit(
                    RequestState(
                        request=Request(
                            request_id=i, arrival_time=0.0,
                            input_len=length, output_len=2,
                        )
                    )
                )
            sim.run()
            order[policy] = list(done)
        assert order["fcfs"][0] == 0          # convoy leader goes first
        assert order["sjf"][0] != 0           # SJF dodges the convoy
        assert sorted(order["sjf"]) == [0, 1, 2, 3]

    def test_aging_prevents_starvation(self, tiny_spec):
        from repro.simulator import PrefillInstance, RequestState
        from repro.workload import Request

        sim = Simulation()
        done = []
        inst = PrefillInstance(
            sim, tiny_spec,
            on_prefill_done=lambda s: done.append(s.request_id),
            batch_token_limit=128,
            queue_policy="sjf",
            sjf_aging=2000.0,
        )
        # A long request plus a steady stream of short ones.
        inst.submit(RequestState(request=Request(0, 0.0, 1500, 2)))
        for i in range(1, 40):
            sim.schedule_at(
                0.01 * i,
                lambda i=i: inst.submit(
                    RequestState(request=Request(i, 0.01 * i, 64, 2))
                ),
            )
        sim.run()
        assert 0 in done  # the long request eventually runs

    def test_invalid_policy(self, tiny_spec):
        from repro.simulator import PrefillInstance

        with pytest.raises(ValueError):
            PrefillInstance(
                Simulation(), tiny_spec, on_prefill_done=lambda s: None,
                queue_policy="lifo",
            )
