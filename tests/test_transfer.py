"""Tests for the per-link-serialized KV transfer engine."""

import pytest

from repro.hardware import ETHERNET_25G, NVLINK, NetworkLink
from repro.simulator import Simulation, TransferEngine


class TestTransferEngine:
    def test_single_transfer_duration(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        done = []
        eng.submit(1, 1e9, NVLINK, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(NVLINK.time_for(1e9))]
        assert len(eng.records) == 1
        assert eng.records[0].duration == pytest.approx(NVLINK.time_for(1e9))

    def test_same_link_serializes(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        done = []
        eng.submit(1, 1e9, NVLINK, on_done=lambda: done.append((1, sim.now)))
        eng.submit(2, 1e9, NVLINK, on_done=lambda: done.append((2, sim.now)))
        sim.run()
        t = NVLINK.time_for(1e9)
        assert done[0] == (1, pytest.approx(t))
        assert done[1] == (2, pytest.approx(2 * t))

    def test_different_links_concurrent(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        link_a = NetworkLink("a", bandwidth=1e9, latency=0.0)
        link_b = NetworkLink("b", bandwidth=1e9, latency=0.0)
        done = []
        eng.submit(1, 1e9, link_a, on_done=lambda: done.append(sim.now))
        eng.submit(2, 1e9, link_b, on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_parallel_channels_divide_time(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        done = []
        eng.submit(1, 4e9, NVLINK, lambda: done.append(sim.now), num_parallel_channels=4)
        sim.run()
        assert done[0] == pytest.approx(NVLINK.time_for(1e9))

    def test_total_bytes_accounting(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        eng.submit(1, 3e6, NVLINK, lambda: None)
        eng.submit(2, 7e6, ETHERNET_25G, lambda: None)
        sim.run()
        assert eng.total_bytes == pytest.approx(10e6)

    def test_slow_link_queue_builds(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        for i in range(5):
            eng.submit(i, 3.125e9, ETHERNET_25G, lambda: None)  # ~1 s each
        assert eng.link_busy_until(ETHERNET_25G) == pytest.approx(5.0, rel=0.01)
        sim.run()
        assert len(eng.records) == 5

    def test_invalid_inputs(self):
        sim = Simulation()
        eng = TransferEngine(sim)
        with pytest.raises(ValueError):
            eng.submit(1, -1.0, NVLINK, lambda: None)
        with pytest.raises(ValueError):
            eng.submit(1, 1.0, NVLINK, lambda: None, num_parallel_channels=0)
