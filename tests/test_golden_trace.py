"""Golden-trace regression test: the tier-1 guard against simulator drift.

A fixed-seed disaggregated simulation's span timeline is serialized to
JSON-lines and compared **byte-for-byte** against a checked-in fixture.
Any change to event ordering, latency modeling, scheduling, dispatch, or
span emission shows up as a diff here — loudly, before it silently skews
every experiment built on the simulator.

When a behavior change is *intentional*, regenerate the fixture and
commit it alongside the change::

    PYTHONPATH=src python -m tests.test_golden_trace --regen

then eyeball ``git diff tests/golden/`` to confirm the drift is the one
you meant to make.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.models import ModelArchitecture
from repro.serving import DisaggregatedSystem, simulate_trace
from repro.simulator import InstanceSpec, Simulation, Tracer, to_jsonl
from repro.workload import generate_trace, get_dataset

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "disaggregated_seed0.jsonl"

#: Pinned scenario — keep in lockstep with the fixture. humaneval's
#: short outputs keep the per-token span count (and fixture size) small
#: while still exercising queueing, batching, transfer, and decode.
SEED = 0
NUM_REQUESTS = 12
RATE = 4.0
DATASET = "humaneval"

MODEL = ModelArchitecture(
    name="golden-1b",
    num_layers=16,
    hidden_size=2048,
    num_heads=16,
    ffn_size=8192,
)


def build_golden_spans(sanitizer=None):
    """Run the pinned scenario and return its span timeline.

    Pass a :class:`repro.simulator.SimSanitizer` to run the scenario
    under full runtime invariant checking (tests/test_sanitizer.py uses
    this to prove sanitized runs are byte-identical).
    """
    sim = Simulation() if sanitizer is None else sanitizer.simulation()
    tracer = Tracer()
    spec = InstanceSpec(model=MODEL)
    system = DisaggregatedSystem(
        sim, spec, spec, num_prefill=2, num_decode=2, tracer=tracer
    )
    if sanitizer is not None:
        sanitizer.watch_system(system)
    trace = generate_trace(
        get_dataset(DATASET),
        rate=RATE,
        num_requests=NUM_REQUESTS,
        rng=np.random.default_rng(SEED),
    )
    result = simulate_trace(system, trace)
    assert result.unfinished == 0, "golden scenario must run to completion"
    return tracer.spans


class TestGoldenTrace:
    def test_fixture_exists(self):
        assert GOLDEN_FILE.exists(), (
            f"missing golden fixture {GOLDEN_FILE}; regenerate with "
            "`PYTHONPATH=src python -m tests.test_golden_trace --regen`"
        )

    def test_trace_matches_fixture_byte_for_byte(self):
        actual = to_jsonl(build_golden_spans()).encode("utf-8")
        expected = GOLDEN_FILE.read_bytes()
        assert actual == expected, (
            "span timeline diverged from the golden fixture — simulator "
            "behavior drifted. If the change is intentional, regenerate "
            "with `PYTHONPATH=src python -m tests.test_golden_trace --regen` "
            "and commit the fixture diff."
        )

    def test_two_runs_identical(self):
        assert to_jsonl(build_golden_spans()) == to_jsonl(build_golden_spans())


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    spans = build_golden_spans()
    GOLDEN_FILE.write_bytes(to_jsonl(spans).encode("utf-8"))
    print(f"wrote {len(spans)} spans to {GOLDEN_FILE}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
        sys.exit(2)
