"""Unit tests for the lifecycle tracing layer and its exporters."""

import json

import pytest

from repro.analysis import (
    latency_breakdown,
    latency_breakdown_from_spans,
    request_breakdowns,
)
from repro.models import ModelArchitecture
from repro.serving import (
    ColocatedSystem,
    DecodeOnlySystem,
    DisaggregatedSystem,
    PrefillOnlySystem,
    simulate_trace,
)
from repro.simulator import (
    NULL_TRACER,
    InstanceSpec,
    Simulation,
    Span,
    SpanKind,
    Tracer,
    chrome_trace_events,
    spans_by_request,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.workload import Request, Trace

MODEL = ModelArchitecture("trace-test", 8, 1024, 8, 4096)


def small_trace(n=5, output_len=4):
    return Trace(
        requests=[
            Request(request_id=i, arrival_time=0.25 * i, input_len=64 + i,
                    output_len=output_len)
            for i in range(n)
        ]
    )


def run_disaggregated(trace, tracer=None, **kwargs):
    sim = Simulation()
    spec = InstanceSpec(model=MODEL)
    system = DisaggregatedSystem(sim, spec, spec, tracer=tracer, **kwargs)
    return simulate_trace(system, trace)


class TestSpan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown span kind"):
            Span(request_id=0, kind="nonsense", start=0.0, end=1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends"):
            Span(request_id=0, kind=SpanKind.PREFILL_EXEC, start=2.0, end=1.0)

    def test_duration_and_dict_roundtrip(self):
        span = Span(1, SpanKind.DECODE_STEP, 1.0, 1.5, "decode-0",
                    batch_size=3, token_index=2)
        assert span.duration == 0.5
        d = span.to_dict()
        assert d["kind"] == "decode_step"
        assert d["token_index"] == 2
        assert d["batch_size"] == 3


class TestTracer:
    def test_begin_end_records_interval(self):
        tracer = Tracer()
        tracer.begin(7, SpanKind.PREFILL_QUEUE, 1.0, "prefill-0")
        tracer.end(7, SpanKind.PREFILL_QUEUE, 3.0)
        (span,) = tracer.spans
        assert (span.start, span.end, span.instance) == (1.0, 3.0, "prefill-0")

    def test_end_without_begin_raises(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            tracer.end(1, SpanKind.PREFILL_QUEUE, 1.0)

    def test_rebegin_closes_dangling_span(self):
        tracer = Tracer()
        tracer.begin(1, SpanKind.PREFILL_QUEUE, 1.0, "prefill-0")
        tracer.begin(1, SpanKind.PREFILL_QUEUE, 4.0, "prefill-1")
        tracer.end(1, SpanKind.PREFILL_QUEUE, 6.0)
        first, second = tracer.spans[0], tracer.spans[1]
        assert (first.start, first.end) == (1.0, 4.0)
        assert (second.start, second.end) == (4.0, 6.0)
        assert not tracer.open_spans()

    def test_open_spans_reports_in_flight(self):
        tracer = Tracer()
        tracer.begin(3, SpanKind.DECODE_QUEUE, 2.0, "decode-0")
        assert tracer.open_spans() == [(3, SpanKind.DECODE_QUEUE, 2.0)]

    def test_spans_for_filters_by_request(self):
        tracer = Tracer()
        tracer.instant(1, SpanKind.ARRIVAL, 0.0)
        tracer.instant(2, SpanKind.ARRIVAL, 0.5)
        tracer.instant(1, SpanKind.COMPLETION, 2.0)
        assert [s.kind for s in tracer.spans_for(1)] == [
            SpanKind.ARRIVAL, SpanKind.COMPLETION
        ]

    def test_null_tracer_is_inert(self):
        NULL_TRACER.begin(1, SpanKind.PREFILL_QUEUE, 0.0)
        NULL_TRACER.end(1, SpanKind.PREFILL_QUEUE, 1.0)
        NULL_TRACER.span(1, SpanKind.DECODE_STEP, 0.0, 1.0)
        NULL_TRACER.instant(1, SpanKind.ARRIVAL, 0.0)
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.open_spans() == []


class TestExporters:
    def _spans(self):
        tracer = Tracer()
        tracer.instant(0, SpanKind.ARRIVAL, 0.0)
        tracer.span(0, SpanKind.PREFILL_EXEC, 0.0, 0.5, "prefill-0", batch_size=2)
        tracer.span(0, SpanKind.DECODE_STEP, 0.5, 0.5, "prefill-0", token_index=0)
        tracer.instant(0, SpanKind.COMPLETION, 0.5)
        return tracer.spans

    def test_jsonl_is_one_sorted_object_per_line(self):
        text = to_jsonl(self._spans())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            obj = json.loads(line)
            assert list(obj) == sorted(obj)

    def test_jsonl_empty(self):
        assert to_jsonl([]) == ""

    def test_chrome_trace_structure(self):
        doc = to_chrome_trace(self._spans())
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        assert "M" in phases       # process/thread metadata
        assert "X" in phases       # the prefill_exec interval
        assert "i" in phases       # arrival/completion instants
        exec_event = next(e for e in events if e["name"] == "prefill_exec")
        assert exec_event["dur"] == pytest.approx(0.5e6)
        assert exec_event["args"]["batch_size"] == 2
        step = next(e for e in events if e["name"] == "decode_step")
        assert step["ph"] == "i"   # zero-width first token renders as instant
        assert step["args"]["token_index"] == 0

    def test_writers_produce_identical_bytes(self, tmp_path):
        spans = self._spans()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(str(a), spans)
        write_jsonl(str(b), spans)
        assert a.read_bytes() == b.read_bytes()
        ca, cb = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(str(ca), spans)
        write_chrome_trace(str(cb), spans)
        assert ca.read_bytes() == cb.read_bytes()
        json.loads(ca.read_text())  # valid JSON document


class TestChromeExporterEdgeCases:
    """Satellite audit: zero-duration, out-of-order, and huge traces."""

    def test_zero_duration_interval_span_renders_as_instant(self):
        # A zero-width span of an *interval* kind (not just lifecycle
        # instants) must become a "i" event — Perfetto drops dur=0 "X"
        # events silently.
        span = Span(1, SpanKind.PREFILL_EXEC, 2.0, 2.0, instance="prefill-0")
        events = chrome_trace_events([span])
        rendered = next(e for e in events if e["name"] == "prefill_exec")
        assert rendered["ph"] == "i"
        assert rendered["s"] == "t"
        assert "dur" not in rendered

    def test_out_of_order_emission_preserved_and_complete(self):
        # The exporter must not assume spans arrive sorted by time or by
        # request id: late spans for early requests are the norm when
        # instances emit at completion time.
        spans = [
            Span(2, SpanKind.PREFILL_EXEC, 5.0, 6.0, instance="prefill-0"),
            Span(1, SpanKind.ARRIVAL, 0.0, 0.0),
            Span(2, SpanKind.ARRIVAL, 4.0, 4.0),
            Span(1, SpanKind.PREFILL_EXEC, 1.0, 2.0, instance="prefill-0"),
            Span(1, SpanKind.COMPLETION, 3.0, 3.0),
            Span(2, SpanKind.COMPLETION, 7.0, 7.0),
        ]
        events = chrome_trace_events(spans)
        data = [e for e in events if e["ph"] != "M"]
        # Emission order is preserved 1:1 (trace viewers sort by ts).
        assert [(e["tid"], e["name"]) for e in data] == [
            (span.request_id, span.kind) for span in spans
        ]
        # Exactly one thread_name metadata event per request, named at
        # first sighting even when request ids interleave.
        thread_meta = [e for e in events if e["name"] == "thread_name"]
        assert sorted(e["tid"] for e in thread_meta) == [1, 2]

    def test_timestamps_scale_to_microseconds(self):
        span = Span(1, SpanKind.DECODE_QUEUE, 1.5, 2.25, instance="decode-0")
        events = chrome_trace_events([span])
        rendered = next(e for e in events if e["name"] == "decode_queue")
        assert rendered["ts"] == pytest.approx(1.5e6)
        assert rendered["dur"] == pytest.approx(0.75e6)

    def test_over_64k_spans_roundtrip(self, tmp_path):
        # 64k is where naive uint16 track/id schemes overflow; the
        # exporter must stay linear and the document valid JSON.
        num_requests = 700
        spans_per_request = 96
        spans = []
        for rid in range(num_requests):
            base = rid * 0.001
            spans.append(Span(rid, SpanKind.ARRIVAL, base, base))
            for tok in range(spans_per_request - 2):
                t = base + 0.01 * (tok + 1)
                spans.append(
                    Span(rid, SpanKind.DECODE_STEP, t, t + 0.005,
                         instance="decode-0", token_index=tok)
                )
            end = base + 0.01 * spans_per_request
            spans.append(Span(rid, SpanKind.COMPLETION, end, end))
        assert len(spans) > 64 * 1024
        doc = to_chrome_trace(spans)
        # span events + process metadata + one thread metadata per request
        assert len(doc["traceEvents"]) == len(spans) + 1 + num_requests
        path = tmp_path / "big.json"
        write_chrome_trace(str(path), spans)
        parsed = json.loads(path.read_text())
        assert len(parsed["traceEvents"]) == len(doc["traceEvents"])
        tids = {e["tid"] for e in parsed["traceEvents"] if e["ph"] != "M"}
        assert tids == set(range(num_requests))


class TestSystemIntegration:
    def test_disaggregated_emits_full_lifecycle(self):
        tracer = Tracer()
        trace = small_trace()
        res = run_disaggregated(trace, tracer=tracer)
        assert res.completed == len(trace)
        assert res.spans == tracer.spans
        assert not tracer.open_spans()
        for rid, spans in spans_by_request(res.spans).items():
            kinds = [s.kind for s in spans]
            assert kinds.count(SpanKind.ARRIVAL) == 1
            assert kinds.count(SpanKind.COMPLETION) == 1
            assert kinds.count(SpanKind.PREFILL_EXEC) == 1
            assert kinds.count(SpanKind.KV_TRANSFER) == 1
            assert kinds.count(SpanKind.DECODE_STEP) == trace[rid].output_len

    def test_no_tracer_means_no_spans(self):
        res = run_disaggregated(small_trace())
        assert res.spans == []

    def test_colocated_has_no_transfer_spans(self):
        sim = Simulation()
        tracer = Tracer()
        system = ColocatedSystem(sim, InstanceSpec(model=MODEL), tracer=tracer)
        res = simulate_trace(system, small_trace())
        assert res.completed == 5
        assert all(s.kind != SpanKind.KV_TRANSFER for s in res.spans)
        assert all(s.kind != SpanKind.DECODE_QUEUE for s in res.spans)

    def test_phase_only_systems_trace(self):
        for cls in (PrefillOnlySystem, DecodeOnlySystem):
            sim = Simulation()
            tracer = Tracer()
            system = cls(sim, InstanceSpec(model=MODEL), tracer=tracer)
            res = simulate_trace(system, small_trace())
            assert res.completed == 5
            by_req = spans_by_request(res.spans)
            for rid, spans in by_req.items():
                kinds = [s.kind for s in spans]
                assert kinds.count(SpanKind.DECODE_STEP) == 4
                assert kinds.count(SpanKind.COMPLETION) == 1

    def test_single_token_request_skips_transfer_and_decode(self):
        tracer = Tracer()
        trace = Trace(requests=[Request(0, 0.0, 64, 1)])
        res = run_disaggregated(trace, tracer=tracer)
        assert res.completed == 1
        kinds = [s.kind for s in res.spans]
        assert SpanKind.KV_TRANSFER not in kinds
        assert SpanKind.DECODE_QUEUE not in kinds
        assert kinds.count(SpanKind.DECODE_STEP) == 1

    def test_spans_deterministic_across_runs(self):
        t1, t2 = Tracer(), Tracer()
        run_disaggregated(small_trace(), tracer=t1, num_prefill=2, num_decode=2)
        run_disaggregated(small_trace(), tracer=t2, num_prefill=2, num_decode=2)
        assert to_jsonl(t1.spans) == to_jsonl(t2.spans)


class TestSpanBreakdowns:
    def test_stage_sums_reconcile_with_records(self):
        tracer = Tracer()
        res = run_disaggregated(small_trace(8), tracer=tracer,
                                num_prefill=2, num_decode=2)
        by_id = {r.request_id: r for r in res.records}
        breakdowns = request_breakdowns(res.spans)
        assert len(breakdowns) == len(res.records)
        for b in breakdowns:
            rec = by_id[b.request_id]
            assert b.stage_sum == pytest.approx(rec.end_to_end_latency, abs=1e-9)
            assert b.end_to_end_latency == pytest.approx(rec.end_to_end_latency)
            for stage in ("prefill_queue", "prefill_exec", "transfer",
                          "decode_queue", "decode_exec"):
                assert getattr(b, stage) >= 0.0

    def test_aggregate_matches_record_breakdown_total(self):
        tracer = Tracer()
        res = run_disaggregated(small_trace(8), tracer=tracer)
        from_spans = latency_breakdown_from_spans(res.spans)
        from_records = latency_breakdown(res.records)
        assert from_spans.total == pytest.approx(from_records.total, rel=1e-9)
        assert from_spans.prefill_exec == pytest.approx(
            from_records.prefill_exec, rel=1e-9
        )

    def test_unfinished_requests_are_excluded(self):
        tracer = Tracer()
        sim = Simulation()
        spec = InstanceSpec(model=MODEL)
        system = DisaggregatedSystem(sim, spec, spec, tracer=tracer)
        res = simulate_trace(system, small_trace(6, output_len=32),
                             max_sim_time=0.05)
        assert res.unfinished > 0
        breakdowns = request_breakdowns(res.spans)
        assert len(breakdowns) == res.completed
