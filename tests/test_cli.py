"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    _finish_sanitize,
    build_parser,
    main,
)
from repro.simulator import SimSanitizer


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.model == "opt-13b"
        assert args.rate == 2.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "opt-13b" in out and "opt-175b" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--model", "opt-13b", "--input-len", "256"]) == 0
        out = capsys.readouterr().out
        assert "saturation length" in out
        assert "tp=2" in out

    def test_serve_small(self, capsys):
        code = main(
            [
                "serve", "--model", "opt-1.3b", "--rate", "4.0",
                "--requests", "30", "--ttft", "0.5", "--tpot", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "30/30 requests" in out
        assert "SLO attainment" in out

    def test_serve_unknown_model(self):
        with pytest.raises(KeyError):
            main(["serve", "--model", "gpt-5"])

    def test_trace_writes_chrome_and_jsonl(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace", "--model", "opt-1.3b", "--rate", "4.0",
                "--requests", "20", "--out", str(out),
                "--jsonl-out", str(jsonl),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "20/20 requests" in printed
        assert "max |span-sum - e2e|" in printed
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"prefill_exec", "kv_transfer", "decode_step"} <= names
        lines = jsonl.read_text().strip().split("\n")
        assert all(json.loads(line)["kind"] for line in lines)

    def test_trace_deterministic_outputs(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(
                [
                    "trace", "--model", "opt-1.3b", "--rate", "4.0",
                    "--requests", "15", "--seed", "3", "--out", str(path),
                ]
            ) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_metrics_prints_report_and_exports(self, capsys, tmp_path):
        prom = tmp_path / "m.prom"
        jsonp = tmp_path / "m.json"
        code = main(
            [
                "metrics", "--model", "opt-1.3b", "--rate", "4.0",
                "--requests", "25", "--window", "10", "--interval", "5",
                "--prom-out", str(prom), "--json-out", str(jsonp),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "windowed SLO attainment" in out
        assert "cumulative attainment" in out
        assert "per-phase utilization" in out
        text = prom.read_text()
        assert "# TYPE repro_slo_attainment_window gauge" in text
        assert "repro_requests_completed_total 25" in text
        doc = json.loads(jsonp.read_text())
        assert doc["repro_requests_completed_total"]["samples"][0]["value"] == 25

    def test_metrics_online_matches_offline(self, capsys):
        assert main(
            ["metrics", "--model", "opt-1.3b", "--rate", "4.0",
             "--requests", "20"]
        ) == 0
        out = capsys.readouterr().out
        # The cumulative line prints both the monitor's number and the
        # offline slo_attainment check; they must agree exactly.
        line = next(l for l in out.splitlines() if "cumulative attainment" in l)
        online = line.split("total=")[1].split("%")[0]
        offline = line.split("offline check: ")[1].split("%")[0]
        assert online == offline

    def test_metrics_export_deterministic(self, tmp_path):
        paths = [tmp_path / "a.prom", tmp_path / "b.prom"]
        for path in paths:
            assert main(
                ["metrics", "--model", "opt-1.3b", "--rate", "4.0",
                 "--requests", "15", "--seed", "3", "--prom-out", str(path)]
            ) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_metrics_colocated_mode(self, capsys):
        assert main(
            ["metrics", "--mode", "colocated", "--model", "opt-1.3b",
             "--rate", "4.0", "--requests", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "colocated=" in out

    def test_trace_colocated_mode(self, tmp_path):
        out = tmp_path / "coloc.json"
        assert main(
            [
                "trace", "--mode", "colocated", "--model", "opt-1.3b",
                "--rate", "4.0", "--requests", "10", "--out", str(out),
            ]
        ) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "kv_transfer" not in names


class TestProfileCommand:
    def test_profile_human_output(self, capsys):
        assert main(
            ["profile", "--model", "opt-1.3b", "--rate", "4.0",
             "--requests", "10", "--ttft", "4.0", "--tpot", "0.2"]
        ) == EXIT_OK
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "decode_exec" in out
        assert "goodput=" in out

    def test_profile_json_and_html_outputs(self, capsys, tmp_path):
        json_out = tmp_path / "profile.json"
        html_out = tmp_path / "profile.html"
        assert main(
            ["profile", "--model", "opt-1.3b", "--rate", "4.0",
             "--requests", "10", "--format", "json",
             "--json-out", str(json_out), "--html-out", str(html_out)]
        ) == EXIT_OK
        report = json.loads(json_out.read_text())
        assert report["schema"] == "repro-profile/1"
        assert capsys.readouterr().out.strip() == json_out.read_text().strip()
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_profile_deterministic_json(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(
                ["profile", "--model", "opt-1.3b", "--rate", "4.0",
                 "--requests", "10", "--seed", "5", "--json-out", str(path)]
            ) == EXIT_OK
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_profile_diff_roundtrip(self, capsys, tmp_path):
        reports = {}
        for mode in ("colocated", "disaggregated"):
            path = tmp_path / f"{mode}.json"
            assert main(
                ["profile", "--mode", mode, "--model", "opt-1.3b",
                 "--rate", "4.0", "--requests", "10",
                 "--json-out", str(path)]
            ) == EXIT_OK
            reports[mode] = path
        capsys.readouterr()
        assert main(
            ["profile", "--diff", str(reports["colocated"]),
             str(reports["disaggregated"])]
        ) == EXIT_OK
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "attributed" in out

    def test_profile_diff_missing_file_is_usage_error(self, tmp_path):
        missing = tmp_path / "nope.json"
        ok = tmp_path / "ok.json"
        assert main(
            ["profile", "--model", "opt-1.3b", "--rate", "4.0",
             "--requests", "5", "--json-out", str(ok)]
        ) == EXIT_OK
        assert main(
            ["profile", "--diff", str(missing), str(ok)]
        ) == EXIT_USAGE

    def test_profile_diff_rejects_non_profile_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something-else"}')
        assert main(
            ["profile", "--diff", str(bogus), str(bogus)]
        ) == EXIT_USAGE


class TestExitCodeSemantics:
    """Satellite: pinned exit-code contract (documented in --help)."""

    def test_constants(self):
        assert (EXIT_OK, EXIT_FINDINGS, EXIT_USAGE) == (0, 1, 2)

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "1 findings" in out
        assert "2 usage errors" in out

    def test_clean_sanitized_run_exits_zero(self, capsys):
        assert main(
            ["profile", "--model", "opt-1.3b", "--rate", "4.0",
             "--requests", "5", "--sanitize"]
        ) == EXIT_OK
        assert "0 violations" in capsys.readouterr().out

    def test_lenient_sanitizer_violation_exits_findings(self, capsys):
        """A lenient run completes, but violations still flip the exit code."""
        sanitizer = SimSanitizer(strict=False)
        sanitizer.violate("test_kind", "synthetic violation", time=1.0)
        assert _finish_sanitize(sanitizer) == EXIT_FINDINGS
        assert "test_kind" in capsys.readouterr().out

    def test_clean_sanitizer_contributes_ok(self, capsys):
        assert _finish_sanitize(SimSanitizer(strict=False)) == EXIT_OK
        assert _finish_sanitize(None) == EXIT_OK

    def test_lint_usage_error_without_paths(self, capsys):
        assert main(["lint"]) == EXIT_USAGE

    def test_lint_findings_exit_code(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(dirty)]) == EXIT_FINDINGS
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == EXIT_OK

    def test_lint_explain_deterministic(self, capsys):
        assert main(["lint", "--explain", "TS001"]) == EXIT_OK
        first = capsys.readouterr().out
        assert main(["lint", "--explain", "TS001"]) == EXIT_OK
        second = capsys.readouterr().out
        assert first == second
        assert first.startswith("TS001 — ")
        for section in ("Rationale:", "Example violation:", "Suppression:"):
            assert section in first

    def test_lint_explain_every_rule(self, capsys):
        from repro.lint import rule_names

        for rule in rule_names():
            assert main(["lint", "--explain", rule]) == EXIT_OK
            out = capsys.readouterr().out
            assert out.startswith(f"{rule} — ")

    def test_lint_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "NOPE42"]) == EXIT_USAGE

    def test_lint_sarif_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", "--format", "sarif", str(dirty)]) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "DET002" in rules and "TS001" in rules
        result = run["results"][0]
        assert result["ruleId"] == "DET002"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_lint_baseline_write_then_check(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", "--baseline", "write", "--baseline-file", str(baseline),
             str(dirty)]
        ) == EXIT_OK
        capsys.readouterr()
        # Known findings are ratcheted away...
        assert main(
            ["lint", "--baseline", "check", "--baseline-file", str(baseline),
             str(dirty)]
        ) == EXIT_OK
        capsys.readouterr()
        # ...but a new finding still fails the check.
        dirty.write_text(
            "import random\nx = random.random()\ny = random.randint(0, 3)\n"
        )
        assert main(
            ["lint", "--baseline", "check", "--baseline-file", str(baseline),
             str(dirty)]
        ) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "randint" in out and "random.random" not in out

    def test_lint_cache_dir_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("def f():\n    return 1\n")
        cache = tmp_path / "cache"
        assert main(["lint", "--cache-dir", str(cache), str(target)]) == EXIT_OK
        assert list(cache.glob("callgraph-*.json"))
        capsys.readouterr()
        assert main(["lint", "--cache-dir", str(cache), str(target)]) == EXIT_OK
