"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.model == "opt-13b"
        assert args.rate == 2.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "opt-13b" in out and "opt-175b" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--model", "opt-13b", "--input-len", "256"]) == 0
        out = capsys.readouterr().out
        assert "saturation length" in out
        assert "tp=2" in out

    def test_serve_small(self, capsys):
        code = main(
            [
                "serve", "--model", "opt-1.3b", "--rate", "4.0",
                "--requests", "30", "--ttft", "0.5", "--tpot", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "30/30 requests" in out
        assert "SLO attainment" in out

    def test_serve_unknown_model(self):
        with pytest.raises(KeyError):
            main(["serve", "--model", "gpt-5"])
