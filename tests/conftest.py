"""Shared fixtures: small models and cheap coefficients for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import A100_80GB
from repro.latency import ParallelismConfig, coefficients_from_roofline
from repro.models import ModelArchitecture, get_model
from repro.simulator import InstanceSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_model() -> ModelArchitecture:
    """A small architecture keeping simulations fast."""
    return ModelArchitecture(
        name="tiny-1b",
        num_layers=16,
        hidden_size=2048,
        num_heads=16,
        ffn_size=8192,
        vocab_size=32000,
        max_seq_len=2048,
    )


@pytest.fixture
def opt13b() -> ModelArchitecture:
    return get_model("opt-13b")


@pytest.fixture
def opt66b() -> ModelArchitecture:
    return get_model("opt-66b")


@pytest.fixture
def coeffs():
    return coefficients_from_roofline(A100_80GB)


@pytest.fixture
def tiny_spec(tiny_model) -> InstanceSpec:
    return InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 1))
