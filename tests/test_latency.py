"""Tests for the Appendix A latency model and its roofline extension."""

import pytest

from repro.hardware import A100_80GB, NVLINK
from repro.latency import (
    LatencyCoefficients,
    ParallelismConfig,
    ProfileSample,
    coefficients_from_roofline,
    compute_bound_batch_size,
    decode_step_latency,
    decode_throughput,
    decode_times,
    fit_coefficients,
    intra_op_speedup,
    kv_cache_bytes,
    kv_transfer_time,
    mixed_batch_latency,
    prefill_latency,
    prefill_throughput,
    prefill_times,
    required_bandwidth,
    saturation_length,
    tp_allreduce_time_per_layer,
)
from repro.latency.coefficients import (
    attn_term_decode,
    attn_term_prefill,
    gemm_term_decode,
    gemm_term_prefill,
)


class TestCoefficients:
    def test_roofline_values_positive(self, coeffs):
        for name in ("c1", "c2", "c3", "c4", "c5"):
            assert getattr(coeffs, name) > 0

    def test_effective_tp_bounds(self, coeffs):
        assert coeffs.effective_tp(1) == 1.0
        for tp in (2, 4, 8):
            assert 1.0 < coeffs.effective_tp(tp) < tp

    def test_invalid_coefficients(self):
        with pytest.raises(ValueError):
            LatencyCoefficients(c1=0.0, c2=1e-12, c3=0.0, c4=1e-12, c5=1e-12)
        with pytest.raises(ValueError):
            LatencyCoefficients(c1=1e-12, c2=1e-12, c3=-1.0, c4=1e-12, c5=1e-12)

    def test_fit_recovers_roofline_coefficients(self, opt13b, coeffs):
        # Generate noiseless samples from the model itself; the least-
        # squares fit must recover c1, c2, c4, c5 closely.
        prefill_samples = []
        for length in (64, 128, 256, 512, 1024, 2048):
            lat = prefill_latency(opt13b, coeffs, [length])
            prefill_samples.append(
                ProfileSample(
                    gemm_term=gemm_term_prefill(opt13b, length),
                    attn_term=attn_term_prefill(
                        opt13b, float(length * length), coeffs.attention_block_size
                    ),
                    num_layers=opt13b.num_layers,
                    latency=lat,
                )
            )
        decode_samples = []
        for batch in (1, 4, 16, 64):
            ctx = [256] * batch
            lat = decode_step_latency(opt13b, coeffs, ctx)
            decode_samples.append(
                ProfileSample(
                    gemm_term=gemm_term_decode(opt13b),
                    attn_term=attn_term_decode(opt13b, 256.0 * batch),
                    num_layers=opt13b.num_layers,
                    latency=lat,
                )
            )
        fitted = fit_coefficients(prefill_samples, decode_samples)
        # The roofline extension adds a memory floor the pure linear model
        # absorbs into c3/c4, so compare within a factor rather than
        # tightly.
        assert fitted.c1 == pytest.approx(coeffs.c1, rel=0.5)
        assert fitted.c5 == pytest.approx(coeffs.c5, rel=0.5)

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_coefficients([], [])


class TestPrefill:
    def test_zero_tokens_free(self, opt13b, coeffs):
        assert prefill_latency(opt13b, coeffs, []) == 0.0
        assert prefill_latency(opt13b, coeffs, [0]) == 0.0

    def test_monotonic_in_length(self, opt13b, coeffs):
        lats = [prefill_latency(opt13b, coeffs, [n]) for n in (64, 256, 512, 1024)]
        assert lats == sorted(lats)

    def test_512_tokens_13b_sub_second(self, opt13b, coeffs):
        # Figure 1's setting: a 512-token prefill on one A100 is on the
        # order of 100 ms.
        lat = prefill_latency(opt13b, coeffs, [512])
        assert 0.03 < lat < 0.5

    def test_batching_short_prompts_beats_serial(self, opt13b, coeffs):
        # Below saturation, one batch of 4x64 is cheaper than 4 batches.
        batched = prefill_latency(opt13b, coeffs, [64] * 4)
        serial = 4 * prefill_latency(opt13b, coeffs, [64])
        assert batched < serial

    def test_compute_bound_batching_no_benefit(self, opt13b, coeffs):
        # §3.1: past L_m, batching proportionally extends the batch.
        one = prefill_latency(opt13b, coeffs, [2048])
        two = prefill_latency(opt13b, coeffs, [2048, 2048])
        assert two == pytest.approx(2 * one, rel=0.15)

    def test_throughput_saturates(self, opt13b, coeffs):
        # Figure 3(a): throughput climbs with input length, then flattens.
        t64 = prefill_throughput(opt13b, coeffs, [64])
        t512 = prefill_throughput(opt13b, coeffs, [512])
        t2048 = prefill_throughput(opt13b, coeffs, [2048])
        assert t512 > 1.5 * t64
        assert abs(t2048 - t512) / t512 < 0.5

    def test_saturation_length_in_plausible_range(self, opt13b, coeffs):
        lm = saturation_length(opt13b, coeffs)
        assert 100 <= lm <= 4096

    def test_larger_model_saturates_earlier(self, opt13b, opt66b, coeffs):
        # §2.1: "the larger the model, the shorter sequence is needed".
        assert saturation_length(opt66b, coeffs) <= saturation_length(opt13b, coeffs)

    def test_tp_speeds_up(self, opt66b, coeffs):
        l1 = prefill_latency(opt66b, coeffs, [512], tp=1)
        l2 = prefill_latency(opt66b, coeffs, [512], tp=2)
        assert l2 < l1

    def test_negative_length_rejected(self, opt13b, coeffs):
        with pytest.raises(ValueError):
            prefill_latency(opt13b, coeffs, [-5])


class TestDecode:
    def test_empty_batch_free(self, opt13b, coeffs):
        assert decode_step_latency(opt13b, coeffs, []) == 0.0

    def test_flat_then_linear_in_batch(self, opt13b, coeffs):
        # §3.2: memory-bound at small batch (near-flat), approaching
        # compute-bound (linear) at large batch.
        l1 = decode_step_latency(opt13b, coeffs, [256])
        l8 = decode_step_latency(opt13b, coeffs, [256] * 8)
        l512 = decode_step_latency(opt13b, coeffs, [256] * 512)
        assert l8 < 1.5 * l1          # batching is nearly free early
        assert l512 > 4 * l8          # but not at huge batch

    def test_throughput_grows_with_batch(self, opt13b, coeffs):
        # Figure 3(b).
        t1 = decode_throughput(opt13b, coeffs, [256])
        t32 = decode_throughput(opt13b, coeffs, [256] * 32)
        assert t32 > 8 * t1

    def test_context_length_increases_step_time(self, opt13b, coeffs):
        short = decode_step_latency(opt13b, coeffs, [128] * 16)
        long = decode_step_latency(opt13b, coeffs, [1024] * 16)
        assert long > short

    def test_compute_bound_batch_size_device_ratio(self, opt13b, coeffs):
        b = compute_bound_batch_size(opt13b, coeffs)
        assert 10 < b < 1000


class TestParallel:
    def test_intra_op_speedup_bounds(self, opt66b, coeffs):
        # Eq. 3: 1 < K < tp.
        for tp in (2, 4, 8):
            k = intra_op_speedup(opt66b, coeffs, 512, tp)
            assert 1.0 < k < tp

    def test_inter_op_halves_stage_time(self, opt66b, coeffs):
        t1 = prefill_times(opt66b, ParallelismConfig(1, 1), coeffs, [512])
        t2 = prefill_times(opt66b, ParallelismConfig(1, 2), coeffs, [512])
        # D ~= Ds ~= 2 Dm (§3.1), modulo activation transfer and overhead.
        assert t2.stage_time == pytest.approx(t1.request_latency / 2, rel=0.15)
        assert t2.request_latency == pytest.approx(t1.request_latency, rel=0.15)

    def test_stage_never_exceeds_request_latency(self, opt66b, coeffs):
        for tp, pp in [(1, 1), (2, 2), (4, 1), (1, 4)]:
            t = prefill_times(opt66b, ParallelismConfig(tp, pp), coeffs, [300, 500])
            assert t.stage_time <= t.request_latency + 1e-12

    def test_decode_times_pp_improves_cadence(self, opt66b, coeffs):
        d1 = decode_times(opt66b, ParallelismConfig(1, 1), coeffs, [400] * 32)
        d2 = decode_times(opt66b, ParallelismConfig(1, 2), coeffs, [400] * 32)
        assert d2.stage_time < d1.stage_time

    def test_allreduce_zero_for_tp1(self, opt66b):
        assert tp_allreduce_time_per_layer(opt66b, 512, 1) == 0.0

    def test_allreduce_grows_with_tokens(self, opt66b):
        a = tp_allreduce_time_per_layer(opt66b, 128, 4, NVLINK)
        b = tp_allreduce_time_per_layer(opt66b, 1024, 4, NVLINK)
        assert b > a

    def test_invalid_config_rejected(self, opt13b, coeffs):
        # opt-13b has 40 heads; tp=16 does not divide it.
        with pytest.raises(ValueError):
            prefill_times(opt13b, ParallelismConfig(16, 1), coeffs, [128])

    def test_empty_batch(self, opt13b, coeffs):
        t = prefill_times(opt13b, ParallelismConfig(1, 1), coeffs, [])
        assert t.request_latency == 0.0


class TestMixed:
    def test_degenerates_to_pure_decode(self, opt13b, coeffs):
        pure = decode_step_latency(opt13b, coeffs, [300] * 8)
        mixed = mixed_batch_latency(opt13b, coeffs, [], [300] * 8)
        assert mixed == pytest.approx(pure + coeffs.iteration_overhead, rel=1e-6)

    def test_degenerates_to_pure_prefill(self, opt13b, coeffs):
        pure = prefill_latency(opt13b, coeffs, [512])
        mixed = mixed_batch_latency(opt13b, coeffs, [512], [])
        assert mixed == pytest.approx(pure + coeffs.iteration_overhead, rel=1e-6)

    def test_adding_prefill_slows_decode_batch(self, opt13b, coeffs):
        # Figure 2: one prefill request added to a decode batch markedly
        # increases the iteration time, and more so for longer prefills.
        base = mixed_batch_latency(opt13b, coeffs, [], [300] * 32)
        with_short = mixed_batch_latency(opt13b, coeffs, [128], [300] * 32)
        with_long = mixed_batch_latency(opt13b, coeffs, [1024], [300] * 32)
        assert base < with_short < with_long
        assert with_long > 1.5 * base

    def test_empty_everything(self, opt13b, coeffs):
        assert mixed_batch_latency(opt13b, coeffs, [], []) == 0.0


class TestComm:
    def test_kv_bytes_linear(self, opt66b):
        assert kv_cache_bytes(opt66b, 1024) == 2 * kv_cache_bytes(opt66b, 512)

    def test_paper_bandwidth_example(self, opt66b):
        # §3.3: OPT-66B, 512-token prompts, 10 req/s -> ~11.3 GB/s.
        bw = required_bandwidth(opt66b, 512, 10.0)
        assert 9e9 < bw < 14e9

    def test_transfer_time_channels(self, opt66b):
        t1 = kv_transfer_time(opt66b, 512, NVLINK, num_parallel_channels=1)
        t4 = kv_transfer_time(opt66b, 512, NVLINK, num_parallel_channels=4)
        assert t4 < t1

    def test_nvlink_transfer_under_10ms(self, opt66b):
        # §6.3: stage-colocated transfers over NVLink are negligible.
        assert kv_transfer_time(opt66b, 512, NVLINK) < 0.01
