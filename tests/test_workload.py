"""Tests for workload generation: distributions, arrivals, datasets, traces."""

import numpy as np
import pytest

from repro.workload import (
    HUMANEVAL,
    LONGBENCH,
    SHAREGPT,
    SLO,
    EmpiricalLength,
    FixedLength,
    LognormalLength,
    MixtureLength,
    Request,
    TABLE1_WORKLOADS,
    Trace,
    UniformLength,
    fit_lognormal,
    fit_trace,
    fixed_length_dataset,
    gamma_arrivals,
    generate_trace,
    get_dataset,
    get_workload,
    poisson_arrivals,
    uniform_arrivals,
)


class TestDistributions:
    def test_fixed(self, rng):
        d = FixedLength(42)
        assert (d.sample(rng, 10) == 42).all()
        assert d.mean() == 42.0

    def test_uniform_bounds(self, rng):
        d = UniformLength(5, 9)
        samples = d.sample(rng, 1000)
        assert samples.min() >= 5 and samples.max() <= 9
        assert d.mean() == 7.0

    def test_lognormal_median_and_clip(self, rng):
        d = LognormalLength(median=200, sigma=0.8, low=10, high=1000)
        samples = d.sample(rng, 5000)
        assert 10 <= samples.min() and samples.max() <= 1000
        assert np.median(samples) == pytest.approx(200, rel=0.15)

    def test_mixture_weights(self, rng):
        d = MixtureLength(
            components=(FixedLength(1), FixedLength(1000)), weights=(0.9, 0.1)
        )
        samples = d.sample(rng, 5000)
        frac_small = (samples == 1).mean()
        assert frac_small == pytest.approx(0.9, abs=0.03)
        assert d.mean() == pytest.approx(0.9 * 1 + 0.1 * 1000)

    def test_empirical_resamples_observations(self, rng):
        d = EmpiricalLength((3, 7, 11))
        samples = d.sample(rng, 1000)
        assert set(np.unique(samples)) <= {3, 7, 11}
        assert d.mean() == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLength(0)
        with pytest.raises(ValueError):
            UniformLength(5, 4)
        with pytest.raises(ValueError):
            LognormalLength(median=-1, sigma=0.5)
        with pytest.raises(ValueError):
            EmpiricalLength(())


class TestArrivals:
    def test_poisson_mean_rate(self, rng):
        times = poisson_arrivals(4.0, 4000, rng)
        assert len(times) == 4000
        assert (np.diff(times) >= 0).all()
        rate = len(times) / times[-1]
        assert rate == pytest.approx(4.0, rel=0.1)

    def test_gamma_cv1_like_poisson(self, rng):
        times = gamma_arrivals(4.0, 4000, cv=1.0, rng=rng)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_gamma_burstier_with_high_cv(self, rng):
        smooth = gamma_arrivals(4.0, 4000, cv=0.3, rng=np.random.default_rng(1))
        bursty = gamma_arrivals(4.0, 4000, cv=3.0, rng=np.random.default_rng(1))
        cv_s = np.diff(smooth).std() / np.diff(smooth).mean()
        cv_b = np.diff(bursty).std() / np.diff(bursty).mean()
        assert cv_b > 3 * cv_s

    def test_uniform_arrivals_deterministic(self):
        times = uniform_arrivals(2.0, 4)
        assert list(times) == [0.5, 1.0, 1.5, 2.0]

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10, rng)
        with pytest.raises(ValueError):
            gamma_arrivals(1.0, 10, cv=0.0, rng=rng)


class TestDatasets:
    def test_longbench_has_much_longer_inputs(self, rng):
        # Figure 7: LongBench input lengths dwarf ShareGPT and HumanEval.
        n = 2000
        sg, _ = SHAREGPT.sample_lengths(rng, n)
        he, _ = HUMANEVAL.sample_lengths(rng, n)
        lb, _ = LONGBENCH.sample_lengths(rng, n)
        assert lb.mean() > 4 * sg.mean()
        assert lb.mean() > 10 * he.mean()

    def test_humaneval_prompts_short(self, rng):
        he_in, he_out = HUMANEVAL.sample_lengths(rng, 2000)
        assert he_in.mean() < 300

    def test_get_dataset(self):
        assert get_dataset("ShareGPT") is SHAREGPT
        with pytest.raises(KeyError):
            get_dataset("c4")

    def test_fixed_length_dataset(self, rng):
        ds = fixed_length_dataset(512, 64)
        ins, outs = ds.sample_lengths(rng, 10)
        assert (ins == 512).all() and (outs == 64).all()

    def test_generate_trace_reproducible(self):
        t1 = generate_trace(SHAREGPT, 2.0, 50, np.random.default_rng(7))
        t2 = generate_trace(SHAREGPT, 2.0, 50, np.random.default_rng(7))
        assert [(r.arrival_time, r.input_len) for r in t1] == [
            (r.arrival_time, r.input_len) for r in t2
        ]

    def test_generate_trace_processes(self, rng):
        for process in ("poisson", "gamma", "uniform"):
            t = generate_trace(SHAREGPT, 2.0, 20, rng, arrival_process=process)
            assert len(t) == 20
        with pytest.raises(ValueError):
            generate_trace(SHAREGPT, 2.0, 20, rng, arrival_process="weibull")


class TestTrace:
    def test_sorts_on_construction(self):
        reqs = [
            Request(0, 5.0, 10, 2),
            Request(1, 1.0, 10, 2),
        ]
        t = Trace(requests=reqs)
        assert [r.request_id for r in t] == [1, 0]

    def test_stats(self, rng):
        t = generate_trace(SHAREGPT, 3.0, 500, rng)
        s = t.stats()
        assert s.num_requests == 500
        assert s.arrival_rate == pytest.approx(3.0, rel=0.2)
        assert s.p90_input_len > s.mean_input_len

    def test_scaled_to_rate(self, rng):
        t = generate_trace(SHAREGPT, 2.0, 300, rng)
        t2 = t.scaled_to_rate(6.0)
        assert t2.arrival_rate == pytest.approx(6.0, rel=1e-6)
        # Lengths unchanged.
        assert [r.input_len for r in t2] == [r.input_len for r in t]

    def test_slice_time(self):
        t = Trace(
            requests=[Request(i, float(i), 10, 2) for i in range(10)]
        )
        part = t.slice_time(3.0, 7.0)
        assert [r.request_id for r in part] == [3, 4, 5, 6]
        assert part[0].arrival_time == 0.0

    def test_empty_trace(self):
        t = Trace()
        assert len(t) == 0
        assert t.duration == 0.0
        assert t.arrival_rate == 0.0
        assert t.stats().num_requests == 0


class TestFitting:
    def test_fit_lognormal_recovers_parameters(self, rng):
        true = LognormalLength(median=300, sigma=0.6)
        samples = [int(x) for x in true.sample(rng, 8000)]
        fitted = fit_lognormal(samples)
        assert fitted.median == pytest.approx(300, rel=0.1)
        assert fitted.sigma == pytest.approx(0.6, rel=0.15)

    def test_fit_trace_empirical_roundtrip(self, rng):
        t = generate_trace(SHAREGPT, 2.0, 1000, rng)
        fitted = fit_trace(t, method="empirical")
        assert fitted.arrival_rate == pytest.approx(2.0, rel=0.2)
        resampled = fitted.resample(500, np.random.default_rng(3))
        orig_mean = np.mean([r.input_len for r in t])
        new_mean = np.mean([r.input_len for r in resampled])
        assert new_mean == pytest.approx(orig_mean, rel=0.15)

    def test_fit_trace_lognormal(self, rng):
        t = generate_trace(HUMANEVAL, 2.0, 1000, rng)
        fitted = fit_trace(t, method="lognormal")
        resampled = fitted.resample(200, rng)
        assert len(resampled) == 200

    def test_fit_needs_data(self):
        with pytest.raises(ValueError):
            fit_trace(Trace())
        with pytest.raises(ValueError):
            fit_lognormal([100])


class TestSLOs:
    def test_table1_rows(self):
        assert len(TABLE1_WORKLOADS) == 5
        chat13 = get_workload("chatbot", "opt-13b")
        assert chat13.slo == SLO(ttft=0.2, tpot=0.1)
        summ = get_workload("summarization", "opt-66b")
        assert summ.slo.ttft == 15.0 and summ.dataset_name == "longbench"

    def test_slo_scaled(self):
        slo = SLO(ttft=0.4, tpot=0.1).scaled(0.5)
        assert slo == SLO(ttft=0.2, tpot=0.05)
        with pytest.raises(ValueError):
            SLO(1.0, 1.0).scaled(0.0)

    def test_slo_is_met(self):
        slo = SLO(ttft=0.2, tpot=0.1)
        assert slo.is_met(0.2, 0.1)
        assert not slo.is_met(0.21, 0.1)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("chatbot", "opt-30b")


class TestPiecewiseArrivals:
    def test_segment_rates_respected(self, rng):
        from repro.workload import piecewise_rate_arrivals

        times = piecewise_rate_arrivals([(100.0, 2.0), (100.0, 10.0)], rng)
        first = ((times >= 0) & (times < 100)).sum()
        second = ((times >= 100) & (times < 200)).sum()
        assert first == pytest.approx(200, rel=0.25)
        assert second == pytest.approx(1000, rel=0.15)
        assert (np.diff(times) >= 0).all()

    def test_zero_rate_lull(self, rng):
        from repro.workload import piecewise_rate_arrivals

        times = piecewise_rate_arrivals([(10.0, 5.0), (10.0, 0.0), (10.0, 5.0)], rng)
        assert ((times >= 10) & (times < 20)).sum() == 0
        assert times.max() < 30

    def test_validation(self, rng):
        from repro.workload import piecewise_rate_arrivals

        with pytest.raises(ValueError):
            piecewise_rate_arrivals([], rng)
        with pytest.raises(ValueError):
            piecewise_rate_arrivals([(0.0, 1.0)], rng)
        with pytest.raises(ValueError):
            piecewise_rate_arrivals([(1.0, -1.0)], rng)
