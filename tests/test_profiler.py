"""Profiler hook tests: event collection, pending intervals, and purity.

The profiler must be a *pure observer*: wiring it into a serving system
may never change scheduling decisions, request records, or the span
timeline. These tests pin that property alongside the unit semantics of
the three event streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    ColocatedSystem,
    DisaggregatedSystem,
    simulate_trace,
)
from repro.simulator import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    Simulation,
    Tracer,
    to_jsonl,
)
from repro.workload import generate_trace, get_dataset


def _run(system_cls, spec, profiler=None, tracer=None, **kwargs):
    sim = Simulation()
    if system_cls is DisaggregatedSystem:
        system = DisaggregatedSystem(
            sim, spec, spec, num_prefill=1, num_decode=1,
            tracer=tracer, profiler=profiler, **kwargs,
        )
    else:
        system = ColocatedSystem(
            sim, spec, num_replicas=1, tracer=tracer, profiler=profiler,
            **kwargs,
        )
    trace = generate_trace(
        get_dataset("humaneval"), rate=4.0, num_requests=10,
        rng=np.random.default_rng(7),
    )
    return simulate_trace(system, trace)


class TestProfilerUnit:
    def test_record_exec_appends_plain_tuples(self):
        prof = Profiler()
        prof.record_exec("prefill-0", "prefill", 1.0, 2.0, 3, 512)
        prof.record_exec("decode-0", "decode", 2.0, 2.5, 4, 4)
        assert prof.exec_events == [
            ("prefill-0", "prefill", 1.0, 2.0, 3, 512),
            ("decode-0", "decode", 2.0, 2.5, 4, 4),
        ]
        assert len(prof) == 2

    def test_record_transfer(self):
        prof = Profiler()
        prof.record_transfer(42, 1.0, 1.25, 1.5)
        assert prof.transfer_events == [(42, 1.0, 1.25, 1.5)]

    def test_pending_open_close(self):
        prof = Profiler()
        prof.begin_pending("decode-0", 1.0)
        prof.begin_pending("decode-0", 2.0)  # idempotent while open
        prof.end_pending("decode-0", 3.0)
        assert prof.pending_events == [("decode-0", 1.0, 3.0)]

    def test_pending_zero_length_dropped(self):
        prof = Profiler()
        prof.begin_pending("decode-0", 1.0)
        prof.end_pending("decode-0", 1.0)
        assert prof.pending_events == []

    def test_end_without_begin_is_noop(self):
        prof = Profiler()
        prof.end_pending("decode-0", 5.0)
        assert prof.pending_events == []

    def test_note_pending_reconciles(self):
        prof = Profiler()
        prof.note_pending("decode-0", True, 1.0)
        prof.note_pending("decode-0", True, 2.0)   # still blocked: no-op
        prof.note_pending("decode-0", False, 3.0)
        prof.note_pending("decode-0", False, 4.0)  # already closed: no-op
        assert prof.pending_events == [("decode-0", 1.0, 3.0)]

    def test_finish_closes_open_intervals_sorted(self):
        prof = Profiler()
        prof.begin_pending("decode-1", 2.0)
        prof.begin_pending("decode-0", 1.0)
        prof.finish(5.0)
        assert prof.pending_events == [
            ("decode-0", 1.0, 5.0),
            ("decode-1", 2.0, 5.0),
        ]
        # Idempotent: a second finish appends nothing.
        prof.finish(9.0)
        assert len(prof.pending_events) == 2

    def test_instances_sorted_union(self):
        prof = Profiler()
        prof.record_exec("b", "decode", 0.0, 1.0, 1, 1)
        prof.begin_pending("a", 0.0)
        prof.finish(1.0)
        assert prof.instances() == ["a", "b"]


class TestNullProfiler:
    def test_disabled_and_inert(self):
        null = NullProfiler()
        assert null.enabled is False
        null.record_exec("x", "prefill", 0.0, 1.0, 1, 1)
        null.record_transfer(1, 0.0, 0.0, 1.0)
        null.begin_pending("x", 0.0)
        null.note_pending("x", True, 0.0)
        null.end_pending("x", 1.0)
        null.finish(2.0)
        assert null.exec_events == []
        assert null.transfer_events == []
        assert null.pending_events == []

    def test_shared_singleton(self):
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert NULL_PROFILER.enabled is False


class TestProfilerWiring:
    def test_disaggregated_collects_all_streams(self, tiny_spec):
        prof = Profiler()
        result = _run(DisaggregatedSystem, tiny_spec, profiler=prof)
        assert result.unfinished == 0
        phases = {e[1] for e in prof.exec_events}
        assert phases == {"prefill", "decode"}
        assert len(prof.transfer_events) == len(result.records)
        for _, submitted, start, end in prof.transfer_events:
            assert submitted <= start <= end
        for _, _, start, end, batch, tokens in prof.exec_events:
            assert end >= start
            assert batch >= 1
            assert tokens >= 0

    def test_colocated_collects_exec_events(self, tiny_spec):
        prof = Profiler()
        result = _run(ColocatedSystem, tiny_spec, profiler=prof)
        assert result.unfinished == 0
        assert len(prof.exec_events) > 0
        assert {e[1] for e in prof.exec_events} <= {"prefill", "decode", "mixed"}
        # No transfer engine in colocated mode.
        assert prof.transfer_events == []

    def test_pending_intervals_bounded_by_sim_time(self, tiny_spec):
        prof = Profiler()
        result = _run(DisaggregatedSystem, tiny_spec, profiler=prof)
        for _, start, end in prof.pending_events:
            assert 0.0 <= start < end <= result.sim_time
        assert not prof._open_pending, "simulate_trace must finish() the profiler"

    @pytest.mark.parametrize("system_cls", [DisaggregatedSystem, ColocatedSystem])
    def test_profiler_is_a_pure_observer(self, tiny_spec, system_cls):
        """Same seed with and without a profiler → identical outcomes."""
        tracer_off, tracer_on = Tracer(), Tracer()
        bare = _run(system_cls, tiny_spec, profiler=None, tracer=tracer_off)
        profiled = _run(system_cls, tiny_spec, profiler=Profiler(), tracer=tracer_on)
        assert to_jsonl(tracer_off.spans) == to_jsonl(tracer_on.spans)
        assert [(r.request_id, r.arrival_time, r.finish_time)
                for r in bare.records] == \
               [(r.request_id, r.arrival_time, r.finish_time)
                for r in profiled.records]
        assert bare.sim_time == profiled.sim_time

    def test_deterministic_event_streams(self, tiny_spec):
        a, b = Profiler(), Profiler()
        _run(DisaggregatedSystem, tiny_spec, profiler=a)
        _run(DisaggregatedSystem, tiny_spec, profiler=b)
        assert a.exec_events == b.exec_events
        assert a.transfer_events == b.transfer_events
        assert a.pending_events == b.pending_events
