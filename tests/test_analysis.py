"""Tests for SLO attainment, percentiles, breakdowns, and report tables."""

import math

import pytest

from repro.analysis import (
    cdf_points,
    format_series,
    format_table,
    latency_breakdown,
    latency_summary,
    slo_attainment,
    tpot_percentile,
    ttft_percentile,
)
from repro.simulator import RequestRecord
from repro.workload import SLO


def make_record(request_id, ttft, tpot, **kw):
    defaults = dict(
        arrival_time=0.0,
        input_len=100,
        output_len=10,
        finish_time=ttft + tpot * 9,
        prefill_queue_time=0.1 * ttft,
        prefill_exec_time=0.9 * ttft,
        transfer_time=0.0,
        decode_queue_time=0.0,
        decode_exec_time=tpot * 9,
    )
    defaults.update(kw)
    return RequestRecord(request_id=request_id, ttft=ttft, tpot=tpot, **defaults)


class TestSLOAttainment:
    def test_counts_each_category(self):
        slo = SLO(ttft=0.2, tpot=0.1)
        records = [
            make_record(0, 0.1, 0.05),   # meets both
            make_record(1, 0.3, 0.05),   # TTFT violated
            make_record(2, 0.1, 0.2),    # TPOT violated
            make_record(3, 0.3, 0.2),    # both violated
        ]
        rep = slo_attainment(records, slo)
        assert rep.total == 0.25
        assert rep.ttft_only == 0.5
        assert rep.tpot_only == 0.5

    def test_unfinished_count_as_violations(self):
        slo = SLO(ttft=1.0, tpot=1.0)
        records = [make_record(0, 0.1, 0.05)]
        rep = slo_attainment(records, slo, num_expected=4)
        assert rep.total == 0.25

    def test_num_expected_below_records_rejected(self):
        slo = SLO(ttft=1.0, tpot=1.0)
        with pytest.raises(ValueError):
            slo_attainment([make_record(0, 0.1, 0.05)] * 2, slo, num_expected=1)

    def test_empty(self):
        rep = slo_attainment([], SLO(1.0, 1.0))
        assert rep.total == 1.0 and rep.num_requests == 0

    def test_boundary_inclusive(self):
        slo = SLO(ttft=0.2, tpot=0.1)
        rep = slo_attainment([make_record(0, 0.2, 0.1)], slo)
        assert rep.total == 1.0


class TestPercentiles:
    def test_percentile_values(self):
        records = [make_record(i, ttft=0.01 * (i + 1), tpot=0.001 * (i + 1)) for i in range(100)]
        assert ttft_percentile(records, 50) == pytest.approx(0.505, rel=0.02)
        assert tpot_percentile(records, 90) == pytest.approx(0.0901, rel=0.02)

    def test_summary_keys(self):
        records = [make_record(i, 0.1, 0.02) for i in range(10)]
        s = latency_summary(records)
        for key in ("ttft_mean", "ttft_p90", "tpot_p99", "e2e_p50"):
            assert key in s
        assert s["ttft_mean"] == pytest.approx(0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ttft_percentile([])

    def test_cdf_points(self):
        xs, ys = cdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ys) == pytest.approx([1 / 3, 2 / 3, 1.0])
        with pytest.raises(ValueError):
            cdf_points([])


class TestBreakdown:
    def test_sums_and_fractions(self):
        records = [make_record(i, 0.2, 0.05) for i in range(4)]
        bd = latency_breakdown(records)
        assert bd.total == pytest.approx(
            sum(r.end_to_end_latency for r in records)
        )
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["decode_exec"] > fr["transfer"] == 0.0

    def test_empty_breakdown(self):
        bd = latency_breakdown([])
        assert bd.total == 0.0
        assert all(v == 0.0 for v in bd.fractions().values())


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in out and "2.250" in out

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        out = format_series("rate", [1, 2], {"sys": [0.5, 0.25]})
        assert "rate" in out and "sys" in out and "0.250" in out

    def test_format_series_short_column_nan(self):
        out = format_series("x", [1, 2], {"y": [0.5]})
        assert "nan" in out


class TestRecordValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_record(0, -0.1, 0.05)

    def test_nan_stage_rejected(self):
        with pytest.raises(ValueError):
            make_record(0, 0.1, 0.05, transfer_time=math.nan)


class TestFidelity:
    def _run(self, jitter, seed=3):
        import numpy as np

        from repro.models import ModelArchitecture
        from repro.serving import DisaggregatedSystem, simulate_trace
        from repro.simulator import InstanceSpec, Simulation
        from repro.workload import fixed_length_dataset, generate_trace

        model = ModelArchitecture("fid-1b", 16, 2048, 16, 8192)
        spec = InstanceSpec(model=model, jitter_sigma=jitter)
        trace = generate_trace(
            fixed_length_dataset(256, 16), rate=8.0, num_requests=100,
            rng=np.random.default_rng(seed),
        )
        sim = Simulation()
        res = simulate_trace(DisaggregatedSystem(sim, spec, spec), trace)
        return res.records

    def test_identical_runs_zero_error(self):
        from repro.analysis import compare_runs

        records = self._run(jitter=0.0)
        report = compare_runs(records, records, SLO(ttft=0.5, tpot=0.2))
        assert report.attainment_error == 0.0
        assert report.ttft_mean_rel_error == 0.0
        assert report.matched_requests == 100

    def test_jittered_run_small_error(self):
        from repro.analysis import compare_runs

        clean = self._run(jitter=0.0)
        noisy = self._run(jitter=0.05)
        report = compare_runs(noisy, clean, SLO(ttft=0.5, tpot=0.2))
        assert report.matched_requests == 100
        assert report.attainment_error < 0.1
        assert report.ttft_mean_rel_error < 0.25

    def test_disjoint_runs_rejected(self):
        from repro.analysis import compare_runs

        a = [make_record(1, 0.1, 0.01)]
        b = [make_record(2, 0.1, 0.01)]
        with pytest.raises(ValueError):
            compare_runs(a, b, SLO(1.0, 1.0))
