"""Tests for the telemetry recorder and its use on live instances."""

import math

import pytest

from repro.simulator import (
    DecodeInstance,
    RequestState,
    Simulation,
    TelemetryRecorder,
)
from repro.workload import Request


class TestGaugeSampling:
    def test_samples_on_cadence(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=1.0)
        clock = {"v": 0.0}
        rec.register("clock", lambda: clock["v"])

        def tick():
            clock["v"] += 1.0
            sim.schedule(1.0, tick)

        sim.schedule(0.5, tick)
        rec.start(until=5.0)
        sim.run(until=5.0)
        series = rec.series("clock")
        assert len(series) == 6  # t = 0..5
        assert series.times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert series.values[0] == 0.0
        assert series.values[-1] == 5.0

    def test_summary_statistics(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=1.0)
        values = iter([1.0, 5.0, 3.0, 100.0])
        rec.register("g", lambda: next(values))
        rec.start(until=3.0)
        sim.run(until=3.0)
        series = rec.series("g")
        assert series.max() == 100.0
        assert series.mean() == pytest.approx((1 + 5 + 3 + 100) / 4)

    def test_value_at_step_interpolation(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=2.0)
        values = iter([10.0, 20.0, 30.0])
        rec.register("g", lambda: next(values))
        rec.start(until=4.0)
        sim.run(until=4.0)
        series = rec.series("g")
        assert series.value_at(0.0) == 10.0
        assert series.value_at(1.9) == 10.0
        assert series.value_at(2.0) == 20.0
        with pytest.raises(ValueError):
            series.value_at(-1.0)

    def test_lifecycle_guards(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim)
        with pytest.raises(RuntimeError):
            rec.start(until=1.0)  # no gauges
        rec.register("g", lambda: 0.0)
        with pytest.raises(ValueError):
            rec.register("g", lambda: 1.0)
        rec.start(until=1.0)
        with pytest.raises(RuntimeError):
            rec.register("late", lambda: 0.0)
        with pytest.raises(RuntimeError):
            rec.start(until=2.0)
        with pytest.raises(KeyError):
            rec.series("missing")

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TelemetryRecorder(Simulation(), interval=0.0)

    def test_empty_series_summary_is_nan_safe(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=1.0)
        rec.register("g", lambda: 1.0)
        # Never started: the series exists but has no samples.
        series = rec.series("g")
        summary = series.summary()
        assert summary.count == 0
        for field in ("mean", "minimum", "maximum", "p50", "p90", "p99"):
            assert math.isnan(getattr(summary, field))
        assert math.isnan(series.mean())
        assert math.isnan(series.max())
        assert math.isnan(series.percentile(50))
        # value_at stays strict: "value at t" has no NaN-safe answer.
        with pytest.raises(ValueError):
            series.value_at(0.0)

    def test_summary_matches_samples(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=1.0)
        values = iter([2.0, 4.0, 6.0])
        rec.register("g", lambda: next(values))
        rec.start(until=2.0)
        sim.run(until=2.0)
        summary = rec.series("g").summary()
        assert summary.count == 3
        assert summary.mean == pytest.approx(4.0)
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0
        assert summary.p50 == pytest.approx(4.0)


class TestMaxEventsInteraction:
    """Recorder ticks are simulation events and consume max_events budgets.

    Documents the interaction ISSUE'd as satellite 3: every sample after
    the first (which runs inline in ``start()``) is one scheduled event,
    so ``run(max_events=N)`` can be exhausted by sampling alone.
    """

    def test_sampling_consumes_event_budget(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=1.0)
        rec.register("g", lambda: 0.0)
        rec.start(until=100.0)
        sim.run(max_events=5)
        # Only the budgeted samples ran: 1 inline + 5 scheduled.
        assert rec.samples_taken == 6
        assert sim.now == 5.0

    def test_until_bound_is_not_budget_limited(self):
        sim = Simulation()
        rec = TelemetryRecorder(sim, interval=1.0)
        rec.register("g", lambda: 0.0)
        rec.start(until=10.0)
        sim.run(until=10.0)
        assert rec.samples_taken == 11  # t = 0..10 inclusive

    def test_budget_shared_with_workload_events(self):
        sim = Simulation()
        fired = []
        rec = TelemetryRecorder(sim, interval=1.0)
        rec.register("g", lambda: float(len(fired)))
        for t in (0.5, 1.5, 2.5):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        rec.start(until=100.0)
        # 4 events total: samples at t=1,2 interleave with work at 0.5, 1.5.
        sim.run(max_events=4)
        assert fired == [0.5, 1.5]
        assert rec.samples_taken == 3  # inline t=0 plus t=1, t=2


class TestInstanceTelemetry:
    def test_decode_batch_size_dynamics(self, tiny_spec):
        sim = Simulation()
        inst = DecodeInstance(sim, tiny_spec, on_request_done=lambda s: None)
        rec = TelemetryRecorder(sim, interval=0.05)
        rec.register("batch", lambda: inst.active_batch_size)
        rec.register("kv_free", lambda: inst.kv_free_tokens())
        rec.start(until=3.0)
        # A burst of work arrives at t=1.
        for i in range(8):
            state = RequestState(
                request=Request(
                    request_id=i, arrival_time=1.0, input_len=64, output_len=500
                )
            )
            state.record_token(1.0)
            sim.schedule_at(1.0, lambda s=state: inst.submit(s))
        sim.run(until=3.0)
        batch = rec.series("batch")
        kv = rec.series("kv_free")
        assert batch.value_at(0.5) == 0.0
        assert batch.value_at(1.5) == 8.0
        assert kv.value_at(1.5) < kv.value_at(0.5)  # KV consumed by burst
