"""Tests for multi-server queueing approximations and the cost model."""

import pytest

from repro.core import CostModel, PhasePlan, Placement, compare_cost, cost_per_request
from repro.latency import ParallelismConfig
from repro.queueing import (
    erlang_c,
    md1_waiting_time,
    mdc_waiting_time,
    mmc_waiting_time,
    mm1_waiting_time,
    split_queue_waiting_time,
)


class TestMDC:
    def test_erlang_c_single_server_is_rho(self):
        # For c=1, P(wait) = rho.
        assert erlang_c(4.0, 0.1, 1) == pytest.approx(0.4)

    def test_mmc_c1_matches_mm1(self):
        assert mmc_waiting_time(4.0, 0.1, 1) == pytest.approx(
            mm1_waiting_time(4.0, 0.1)
        )

    def test_mdc_c1_matches_md1(self):
        assert mdc_waiting_time(4.0, 0.1, 1) == pytest.approx(
            md1_waiting_time(4.0, 0.1)
        )

    def test_more_servers_less_wait_at_same_load_per_server(self):
        # Same per-server utilization, pooled: wait drops with c.
        w1 = mdc_waiting_time(8.0, 0.1, 1)
        w2 = mdc_waiting_time(16.0, 0.1, 2)
        w4 = mdc_waiting_time(32.0, 0.1, 4)
        assert w1 > w2 > w4

    def test_pooling_beats_splitting(self):
        # §3.2's R -> R/N split model is pessimistic vs a pooled queue.
        rate, d, n = 30.0, 0.1, 4
        pooled = mdc_waiting_time(rate, d, n)
        split = split_queue_waiting_time(rate, d, n)
        assert pooled < split

    def test_split_matches_md1_at_reduced_rate(self):
        assert split_queue_waiting_time(8.0, 0.1, 4) == pytest.approx(
            md1_waiting_time(2.0, 0.1)
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            mmc_waiting_time(25.0, 0.1, 2)
        with pytest.raises(ValueError):
            mdc_waiting_time(1.0, 0.1, 0)


class TestCostModel:
    def test_cost_per_request_arithmetic(self):
        # 1 req/s/GPU at $3.6/hour -> $0.001 per request.
        model = CostModel(gpu_hourly_usd=3.6)
        assert cost_per_request(1.0, model) == pytest.approx(0.001)

    def test_higher_goodput_cheaper(self):
        assert cost_per_request(4.0) < cost_per_request(1.0)

    def test_utilization_headroom_raises_cost(self):
        full = cost_per_request(2.0, CostModel(utilization_target=1.0))
        padded = cost_per_request(2.0, CostModel(utilization_target=0.5))
        assert padded == pytest.approx(2 * full)

    def test_zero_goodput_rejected(self):
        with pytest.raises(ValueError):
            cost_per_request(0.0)

    def test_compare_cost_savings_factor(self):
        placement = Placement(
            prefill=PhasePlan(ParallelismConfig(2, 1), 1, 6.0),
            decode=PhasePlan(ParallelismConfig(1, 1), 1, 6.0),
        )  # 3 GPUs, 6 req/s -> 2 req/s/GPU
        out = compare_cost(placement, baseline_per_gpu_goodput=0.5)
        assert out["savings_factor"] == pytest.approx(4.0)
        assert out["placement_cost"] < out["baseline_cost"]

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            CostModel(gpu_hourly_usd=0.0)
        with pytest.raises(ValueError):
            CostModel(utilization_target=0.0)
