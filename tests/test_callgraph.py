"""Whole-program call-graph construction tests (repro.lint.callgraph).

Each test feeds in-memory fixture modules through ``build_from_sources``
and asserts on the resolved edges: aliased imports, method resolution
through ``self`` and typed attributes, decorated functions, first-order
callables crossing the ParallelEvaluator boundary, nested defs, cycles,
and the determinism / disk-cache contract the engine relies on.
"""

from __future__ import annotations

import textwrap

from repro.lint.callgraph import (
    MODULE_NODE,
    CallableArg,
    _MEMO,
    build_from_sources,
    build_project,
)


def graph(**kwargs):
    """Build a graph from ``{module_name: source}`` (dots via dict)."""
    sources = kwargs.pop("sources", {})
    sources.update(kwargs)
    return build_from_sources(
        {module: textwrap.dedent(source) for module, source in sources.items()}
    )


class TestDirectResolution:
    def test_module_level_function_call(self):
        g = graph(sources={
            "repro.a": """
                def helper():
                    pass

                def caller():
                    helper()
            """,
        })
        assert "repro.a.helper" in g.edges["repro.a.caller"]

    def test_module_level_code_attributes_to_pseudo_node(self):
        g = graph(sources={
            "repro.a": """
                def helper():
                    pass

                helper()
            """,
        })
        assert "repro.a.helper" in g.edges[f"repro.a.{MODULE_NODE}"]

    def test_class_constructor_resolves_to_init(self):
        g = graph(sources={
            "repro.a": """
                class Widget:
                    def __init__(self):
                        pass

                def make():
                    return Widget()
            """,
        })
        assert "repro.a.Widget.__init__" in g.edges["repro.a.make"]


class TestAliasedImports:
    def test_from_import_with_alias(self):
        g = graph(sources={
            "repro.util": """
                def helper():
                    pass
            """,
            "repro.main": """
                from repro.util import helper as h

                def caller():
                    h()
            """,
        })
        assert "repro.util.helper" in g.edges["repro.main.caller"]

    def test_module_import_with_alias(self):
        g = graph(sources={
            "repro.util": """
                def helper():
                    pass
            """,
            "repro.main": """
                import repro.util as ru

                def caller():
                    ru.helper()
            """,
        })
        assert "repro.util.helper" in g.edges["repro.main.caller"]

    def test_relative_import(self):
        g = graph(sources={
            "repro.pkg.util": """
                def helper():
                    pass
            """,
            "repro.pkg.main": """
                from .util import helper

                def caller():
                    helper()
            """,
        })
        assert "repro.pkg.util.helper" in g.edges["repro.pkg.main.caller"]


class TestMethodResolution:
    def test_self_method_in_same_class(self):
        g = graph(sources={
            "repro.a": """
                class Engine:
                    def outer(self):
                        self.inner()

                    def inner(self):
                        pass
            """,
        })
        assert "repro.a.Engine.inner" in g.edges["repro.a.Engine.outer"]

    def test_typed_attribute_resolves_cross_module(self):
        g = graph(sources={
            "repro.kvcache": """
                class KVBlockManager:
                    def allocate(self, request_id, num_tokens):
                        pass
            """,
            "repro.sim": """
                from repro.kvcache import KVBlockManager

                class Instance:
                    def __init__(self):
                        self._kv = KVBlockManager()

                    def admit(self, rid, tokens):
                        self._kv.allocate(rid, tokens)
            """,
        })
        assert (
            "repro.kvcache.KVBlockManager.allocate"
            in g.edges["repro.sim.Instance.admit"]
        )
        record = next(iter(g.calls_in("repro.sim.Instance.admit").values()))
        assert record.receiver_class == "repro.kvcache.KVBlockManager"
        assert record.bound

    def test_annotated_attribute_resolves(self):
        g = graph(sources={
            "repro.a": """
                class Pool:
                    def drain(self):
                        pass

                class Owner:
                    pool: Pool

                    def run(self):
                        self.pool.drain()
            """,
        })
        assert "repro.a.Pool.drain" in g.edges["repro.a.Owner.run"]

    def test_builtin_container_method_not_misresolved(self):
        # `pending.append(...)` is a list append; it must NOT resolve to
        # the only project method named `append` via unique-name fallback.
        g = graph(sources={
            "repro.a": """
                class KVBlockManager:
                    def append(self, request_id):
                        pass

                def pump(pending):
                    pending.append(1)
            """,
        })
        assert "repro.a.KVBlockManager.append" not in g.edges.get("repro.a.pump", ())

    def test_unique_project_method_fallback(self):
        # A project-unique, non-builtin method name resolves even when
        # the receiver's type is unknown.
        g = graph(sources={
            "repro.a": """
                class Prefill:
                    def release_kv(self, rid):
                        pass

                def finish(instance, rid):
                    instance.release_kv(rid)
            """,
        })
        assert "repro.a.Prefill.release_kv" in g.edges["repro.a.finish"]


class TestDecoratorsAndNesting:
    def test_decorator_edge_from_module_node(self):
        g = graph(sources={
            "repro.a": """
                def wrap(fn):
                    return fn

                @wrap
                def task():
                    pass
            """,
        })
        assert "repro.a.wrap" in g.edges[f"repro.a.{MODULE_NODE}"]

    def test_decorated_function_still_callable(self):
        g = graph(sources={
            "repro.a": """
                def wrap(fn):
                    return fn

                @wrap
                def task():
                    pass

                def caller():
                    task()
            """,
        })
        assert "repro.a.task" in g.edges["repro.a.caller"]

    def test_nested_def_called_from_parent(self):
        g = graph(sources={
            "repro.a": """
                class Instance:
                    def _kv_safe_steps(self, limit):
                        def extra(growth):
                            return growth
                        return extra(limit)
            """,
        })
        assert (
            "repro.a.Instance._kv_safe_steps.extra"
            in g.edges["repro.a.Instance._kv_safe_steps"]
        )


class TestCallableArguments:
    def test_callable_passed_to_evaluator(self):
        g = graph(sources={
            "repro.core.tasks": """
                def simulate_one():
                    pass

                def search(evaluator):
                    evaluator.run([simulate_one])
            """,
        })
        assert "repro.core.tasks.simulate_one" in g.edges["repro.core.tasks.search"]
        assert (
            CallableArg(
                caller="repro.core.tasks.search",
                sink="run",
                callee="repro.core.tasks.simulate_one",
            )
            in g.callable_args
        )

    def test_callback_keyword_argument(self):
        g = graph(sources={
            "repro.a": """
                def sample():
                    return 0

                def wire(registry):
                    registry.gauge("depth", "d", fn=sample)
            """,
        })
        assert any(
            arg.sink == "gauge" and arg.callee == "repro.a.sample"
            for arg in g.callable_args
        )


class TestReachability:
    def test_cycle_terminates_and_includes_both(self):
        g = graph(sources={
            "repro.a": """
                def ping():
                    pong()

                def pong():
                    ping()
            """,
        })
        reachable = g.reachable_from(["repro.a.ping"])
        assert {"repro.a.ping", "repro.a.pong"} <= reachable

    def test_cross_module_transitive_reachability(self):
        g = graph(sources={
            "repro.a": """
                from repro.b import middle

                def root():
                    middle()
            """,
            "repro.b": """
                from repro.c import leaf

                def middle():
                    leaf()
            """,
            "repro.c": """
                def leaf():
                    pass
            """,
        })
        assert "repro.c.leaf" in g.reachable_from(["repro.a.root"])

    def test_unknown_seeds_ignored(self):
        g = graph(sources={"repro.a": "def f():\n    pass\n"})
        assert g.reachable_from(["repro.zzz.missing"]) == frozenset()


class TestDeterminismAndCaching:
    SOURCES = {
        "repro.x": """
            def helper():
                pass

            def caller():
                helper()
        """,
        "repro.y": """
            from repro.x import helper

            def other():
                helper()
        """,
    }

    def test_two_builds_identical(self):
        first = graph(sources=dict(self.SOURCES))
        edges_first = dict(first.edges)
        callable_first = tuple(first.callable_args)
        _MEMO.clear()
        second = graph(sources=dict(self.SOURCES))
        assert second.edges == edges_first
        assert tuple(second.callable_args) == callable_first

    def test_in_memory_memo_reuses_graph(self):
        first = graph(sources=dict(self.SOURCES))
        second = graph(sources=dict(self.SOURCES))
        assert first is second

    def test_disk_cache_roundtrip(self, tmp_path):
        entries = [
            (module, f"<{module}>", textwrap.dedent(source))
            for module, source in sorted(self.SOURCES.items())
        ]
        _MEMO.clear()  # an in-memory hit would skip the disk write
        first = build_project(entries, cache_dir=tmp_path)
        cache_files = list(tmp_path.glob("callgraph-*.json"))
        assert len(cache_files) == 1
        edges = dict(first.edges)
        _MEMO.clear()  # force the second build to hit the disk cache
        second = build_project(entries, cache_dir=tmp_path)
        assert second.edges == edges
        assert second.call_records.keys() == first.call_records.keys()

    def test_source_change_invalidates_cache_key(self, tmp_path):
        entries = [("repro.x", "<repro.x>", "def f():\n    pass\n")]
        _MEMO.clear()
        build_project(entries, cache_dir=tmp_path)
        _MEMO.clear()
        changed = [("repro.x", "<repro.x>", "def g():\n    pass\n")]
        build_project(changed, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("callgraph-*.json"))) == 2
