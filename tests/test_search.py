"""Tests for the search-acceleration layer (:mod:`repro.core.search`).

Covers the three pillars the layer must uphold:

* **Determinism** — fingerprints are equal for equal inputs and stable
  across processes and hash seeds.
* **Parity** — serial and parallel searches return identical placements
  and identical deterministic statistics; pruning and early abort never
  change a goodput verdict.
* **Soundness** — cache entries are only reused where provably valid,
  SLO-infeasibility pruning only fires on provably-zero configurations,
  and truncated trials are reported distinctly.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    GLOBAL_TRIAL_CACHE,
    PlacementSearchStats,
    TrialCache,
    fingerprint,
    max_goodput,
    place_high_affinity,
    place_low_affinity,
    run_attainment_trial,
    simu_prefill,
)
from repro.core.search import (
    TrialEntry,
    phase_slo_infeasible,
    resolve_trial_cache,
    trial_context_fingerprint,
)
from repro.core.simulate import PHASE_TRIAL_MIN_DURATION, phase_trial_setup
from repro.hardware import Cluster, Node
from repro.latency import ParallelismConfig
from repro.models import get_model
from repro.simulator import InstanceSpec, Simulation
from repro.workload import SLO, get_dataset
from repro.workload.datasets import SyntheticDataset
from repro.workload.distributions import (
    EmpiricalLength,
    FixedLength,
    LognormalLength,
    MixtureLength,
    UniformLength,
)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def tiny_cluster() -> Cluster:
    return Cluster(nodes=[Node(index=0, num_gpus=2)])


@pytest.fixture
def fast_dataset() -> SyntheticDataset:
    return SyntheticDataset(
        name="fast",
        input_dist=UniformLength(low=16, high=64),
        output_dist=UniformLength(low=4, high=16),
    )


# ----------------------------------------------------------------------
# Fingerprints and hashability
# ----------------------------------------------------------------------

class TestFingerprint:
    def test_equal_specs_equal_fingerprints(self, tiny_model):
        a = InstanceSpec(model=tiny_model, config=ParallelismConfig(2, 1))
        b = InstanceSpec(model=tiny_model, config=ParallelismConfig(2, 1))
        assert a is not b
        assert fingerprint(a) == fingerprint(b)
        c = InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 2))
        assert fingerprint(a) != fingerprint(c)

    def test_slo_and_dataset_fingerprints(self):
        assert fingerprint(SLO(ttft=0.2, tpot=0.1)) == fingerprint(SLO(ttft=0.2, tpot=0.1))
        assert fingerprint(SLO(ttft=0.2, tpot=0.1)) != fingerprint(SLO(ttft=0.2, tpot=0.2))
        assert fingerprint(get_dataset("sharegpt")) == fingerprint(get_dataset("sharegpt"))
        assert fingerprint(get_dataset("sharegpt")) != fingerprint(get_dataset("humaneval"))

    def test_specs_are_hashable(self, tiny_model):
        a = InstanceSpec(model=tiny_model, config=ParallelismConfig(2, 1))
        b = InstanceSpec(model=tiny_model, config=ParallelismConfig(2, 1))
        assert hash(a) == hash(b) and a == b
        assert hash(SLO(ttft=0.2, tpot=0.1)) == hash(SLO(ttft=0.2, tpot=0.1))
        assert hash(get_dataset("sharegpt")) == hash(get_dataset("sharegpt"))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            fingerprint(object())
        with pytest.raises(TypeError):
            fingerprint(lambda: None)  # lambdas have no stable identity

    def test_trial_context_covers_phase_setup(self, tiny_spec):
        slo = SLO(ttft=0.25, tpot=0.1)
        ds = get_dataset("sharegpt")
        fps = set()
        for kind in ("prefill", "decode"):
            factory, trial_slo = phase_trial_setup(kind, tiny_spec, slo)
            fps.add(
                trial_context_fingerprint(
                    factory, ds, trial_slo, 100, 0, PHASE_TRIAL_MIN_DURATION
                )
            )
        assert len(fps) == 2  # prefill and decode contexts never collide

    def test_cross_process_stability(self, tmp_path):
        """The same objects fingerprint identically in fresh interpreters
        regardless of PYTHONHASHSEED — the property the shared trial
        cache depends on."""
        code = (
            "from repro.core.search import fingerprint\n"
            "from repro.core.simulate import phase_trial_setup\n"
            "from repro.workload.slos import SLO\n"
            "from repro.workload import get_dataset\n"
            "from repro.models import get_model\n"
            "from repro.simulator.instance import InstanceSpec\n"
            "from repro.latency.parallel import ParallelismConfig\n"
            "spec = InstanceSpec(model=get_model('opt-13b'),"
            " config=ParallelismConfig(2, 1))\n"
            "factory, slo = phase_trial_setup('prefill', spec, SLO(ttft=0.25, tpot=0.1))\n"
            "print(fingerprint((factory, get_dataset('sharegpt'), slo, 300, 0, 45.0)))\n"
        )
        digests = set()
        for hash_seed in ("1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = SRC_DIR
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1


# ----------------------------------------------------------------------
# Length-distribution lower bounds (pruning support)
# ----------------------------------------------------------------------

class TestMinLength:
    def test_known_bounds(self):
        assert FixedLength(7).min_length() == 7
        assert UniformLength(low=3, high=9).min_length() == 3
        assert LognormalLength(median=100, sigma=0.5, low=4).min_length() == 4
        assert EmpiricalLength(observations=(5, 2, 9)).min_length() == 2
        mix = MixtureLength(
            components=(FixedLength(8), UniformLength(low=3, high=5)),
            weights=(0.5, 0.5),
        )
        assert mix.min_length() == 3

    def test_unknown_bound_propagates(self):
        class Opaque(FixedLength):
            def min_length(self):
                return None

        mix = MixtureLength(
            components=(Opaque(8), FixedLength(3)), weights=(0.5, 0.5)
        )
        assert mix.min_length() is None


# ----------------------------------------------------------------------
# Trial cache semantics
# ----------------------------------------------------------------------

class TestTrialCache:
    def test_exact_entry_serves_everything(self):
        entry = TrialEntry(attainment=0.8, exact=True, abort_target=None, truncated=False)
        assert entry.usable_for(None)
        assert entry.usable_for(0.5)
        assert entry.usable_for(0.99)

    def test_inexact_entry_gated_by_target(self):
        # Aborted at target 0.9: attainment is an upper bound < 0.9.
        entry = TrialEntry(attainment=0.6, exact=False, abort_target=0.9, truncated=False)
        assert entry.usable_for(0.9)    # same verdict: below 0.9
        assert entry.usable_for(0.95)   # below 0.9 => below 0.95 too
        assert not entry.usable_for(0.5)   # bound says nothing about 0.5
        assert not entry.usable_for(None)  # exact value required

    def test_merge_prefers_exact(self):
        cache = TrialCache()
        inexact = TrialEntry(attainment=0.6, exact=False, abort_target=0.9, truncated=False)
        exact = TrialEntry(attainment=0.7, exact=True, abort_target=None, truncated=False)
        cache.merge("ctx", {1.0: inexact})
        cache.merge("ctx", {1.0: exact})
        assert cache.snapshot("ctx")[1.0] is exact
        cache.merge("ctx", {1.0: inexact})  # exact never downgraded
        assert cache.snapshot("ctx")[1.0] is exact
        assert cache.num_contexts == 1 and cache.num_entries == 1

    def test_snapshot_is_a_copy(self):
        cache = TrialCache()
        entry = TrialEntry(attainment=0.7, exact=True, abort_target=None, truncated=False)
        cache.merge("ctx", {1.0: entry})
        snap = cache.snapshot("ctx")
        snap[2.0] = entry
        assert 2.0 not in cache.snapshot("ctx")

    def test_resolve(self):
        assert resolve_trial_cache(None) is GLOBAL_TRIAL_CACHE
        assert resolve_trial_cache(False) is not GLOBAL_TRIAL_CACHE
        mine = TrialCache()
        assert resolve_trial_cache(mine) is mine


# ----------------------------------------------------------------------
# Simulation.stop and trial truncation
# ----------------------------------------------------------------------

class TestStopAndTruncation:
    def test_stop_halts_between_events(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 2]
        assert sim.stopped
        assert len(sim) == 1  # event at t=3 still queued, never run
        sim.run()  # stopped simulations stay stopped
        assert fired == [1, 2]

    def test_truncation_warns_and_flags(self, tiny_spec, fast_dataset):
        factory, trial_slo = phase_trial_setup(
            "prefill", tiny_spec, SLO(ttft=0.5, tpot=0.5)
        )
        with pytest.warns(RuntimeWarning, match="event ceiling"):
            outcome = run_attainment_trial(
                factory, fast_dataset, 4.0, trial_slo,
                num_requests=50, seed=0, max_events=20,
            )
        assert outcome.truncated and not outcome.aborted

    def test_max_goodput_counts_truncated_trials(self, fast_dataset):
        def stub_runner(rate, abort_target):
            from repro.core.goodput import TrialOutcome

            return TrialOutcome(attainment=0.5, truncated=True)

        result = max_goodput(
            lambda sim: None, fast_dataset, SLO(ttft=0.1, tpot=0.1),
            attainment_target=0.9, trial_runner=stub_runner,
        )
        assert result.goodput == 0.0
        assert result.trials == 1 and result.truncated_trials == 1


# ----------------------------------------------------------------------
# Early abort / pruning never change a verdict
# ----------------------------------------------------------------------

class TestVerdictPreservation:
    def test_early_abort_preserves_goodput(self, tiny_model, fast_dataset):
        """Property check on randomized small configurations: the goodput
        search returns bit-identical results with early abort on and off
        (aborts may only happen on probes whose value is discarded)."""
        rng = np.random.default_rng(42)
        datasets = [fast_dataset, get_dataset("humaneval")]
        for _ in range(6):
            tp = int(rng.choice([1, 2]))
            pp = int(rng.choice([1, 2]))
            kind = str(rng.choice(["prefill", "decode"]))
            slo = SLO(
                ttft=float(rng.uniform(0.02, 0.4)),
                tpot=float(rng.uniform(0.01, 0.1)),
            )
            dataset = datasets[int(rng.integers(len(datasets)))]
            target = float(rng.choice([0.5, 0.9]))
            spec = InstanceSpec(model=tiny_model, config=ParallelismConfig(tp, pp))
            factory, trial_slo = phase_trial_setup(kind, spec, slo)
            results = [
                max_goodput(
                    factory, dataset, trial_slo,
                    attainment_target=target, num_requests=40, seed=1,
                    min_duration=10.0, early_abort=flag,
                )
                for flag in (True, False)
            ]
            assert results[0].goodput == results[1].goodput
            assert results[0].attainment_at_goodput == results[1].attainment_at_goodput
            assert results[0].trials == results[1].trials

    def test_prune_preserves_placement(self, tiny_model, tiny_cluster, fast_dataset):
        slo = SLO(ttft=0.3, tpot=0.1)
        placements = [
            place_high_affinity(
                tiny_model, tiny_cluster, fast_dataset, slo,
                num_requests=30, trial_cache=False, prune=flag,
            )
            for flag in (True, False)
        ]
        assert placements[0] == placements[1]

    def test_infeasible_prune_is_sound(self, tiny_model, fast_dataset):
        spec = InstanceSpec(model=tiny_model, config=ParallelismConfig(1, 1))
        hopeless = SLO(ttft=1e-9, tpot=1.0)
        assert phase_slo_infeasible("prefill", spec, fast_dataset, hopeless)
        # The prune's claim: the full search would return exactly zero.
        result = simu_prefill(
            spec, fast_dataset, hopeless, num_requests=30, early_abort=False
        )
        assert result.goodput == 0.0
        # A clearly attainable SLO must never be pruned.
        assert not phase_slo_infeasible(
            "prefill", spec, fast_dataset, SLO(ttft=10.0, tpot=1.0)
        )

    def test_jittered_specs_never_pruned(self, tiny_model, fast_dataset):
        spec = InstanceSpec(
            model=tiny_model, config=ParallelismConfig(1, 1), jitter_sigma=0.2
        )
        assert not phase_slo_infeasible(
            "prefill", spec, fast_dataset, SLO(ttft=1e-9, tpot=1.0)
        )


# ----------------------------------------------------------------------
# Serial <-> parallel parity
# ----------------------------------------------------------------------

class TestSerialParallelParity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_high_affinity(self, tiny_model, tiny_cluster, fast_dataset, seed):
        slo = SLO(ttft=0.3, tpot=0.1)
        outcomes = {}
        for workers in (1, 2):
            stats = PlacementSearchStats()
            placement = place_high_affinity(
                tiny_model, tiny_cluster, fast_dataset, slo,
                num_requests=30, seed=seed, stats=stats,
                workers=workers, trial_cache=TrialCache(),
            )
            outcomes[workers] = (placement, stats.comparable())
        assert outcomes[1][0] == outcomes[2][0]
        assert outcomes[1][1] == outcomes[2][1]

    @pytest.mark.parametrize("seed", [0, 7])
    def test_low_affinity(self, tiny_model, tiny_cluster, fast_dataset, seed):
        slo = SLO(ttft=0.3, tpot=0.1)
        outcomes = {}
        for workers in (1, 2):
            stats = PlacementSearchStats()
            placement = place_low_affinity(
                tiny_model, tiny_cluster, fast_dataset, slo,
                num_requests=30, seed=seed, joint_sim_candidates=2,
                stats=stats, workers=workers, trial_cache=TrialCache(),
            )
            outcomes[workers] = (placement, stats.comparable())
        assert outcomes[1][0] == outcomes[2][0]
        assert outcomes[1][1] == outcomes[2][1]

    def test_warm_cache_replays_identically(self, tiny_model, tiny_cluster, fast_dataset):
        slo = SLO(ttft=0.3, tpot=0.1)
        cache = TrialCache()
        first_stats = PlacementSearchStats()
        first = place_high_affinity(
            tiny_model, tiny_cluster, fast_dataset, slo,
            num_requests=30, stats=first_stats, trial_cache=cache,
        )
        warm_stats = PlacementSearchStats()
        warm = place_high_affinity(
            tiny_model, tiny_cluster, fast_dataset, slo,
            num_requests=30, stats=warm_stats, trial_cache=cache,
        )
        assert first == warm
        assert warm_stats.cache_misses == 0
        assert warm_stats.cache_hits == first_stats.simulation_trials
        # Probe counting is cache-independent: a replayed search reports
        # the same trial count as a simulated one.
        assert warm_stats.simulation_trials == first_stats.simulation_trials


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------

class TestStats:
    def test_hit_rate(self):
        stats = PlacementSearchStats(cache_hits=3, cache_misses=1)
        assert stats.cache_hit_rate == 0.75
        assert PlacementSearchStats().cache_hit_rate == 0.0

    def test_wall_time_and_workers_recorded(self, tiny_model, tiny_cluster, fast_dataset):
        stats = PlacementSearchStats()
        place_high_affinity(
            tiny_model, tiny_cluster, fast_dataset, SLO(ttft=0.3, tpot=0.1),
            num_requests=30, stats=stats, trial_cache=False, workers=1,
        )
        assert stats.wall_time_s > 0.0
        assert stats.workers == 1
        assert stats.simulation_trials > 0
        assert stats.cache_misses == stats.simulation_trials
